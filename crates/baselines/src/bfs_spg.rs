//! Ground-truth shortest path graphs via two full breadth-first searches.
//!
//! For a query `SPG(u, v)` with `d = d_G(u, v)`, an edge `{a, b}` lies on a
//! shortest path between `u` and `v` iff
//! `d_G(u, a) + 1 + d_G(b, v) = d` or `d_G(u, b) + 1 + d_G(a, v) = d`
//! (a direct consequence of Definition 2.2). Two full BFSs therefore give
//! the exact answer in `O(|V| + |E|)` time per query — too slow for the
//! online setting the paper targets, but the perfect oracle for testing and
//! for the "straightforward solution" the introduction compares against.

use qbs_graph::traversal::{bfs_distances, bfs_distances_into};
use qbs_graph::workspace::DistanceField;
use qbs_graph::{Distance, Graph, PathGraph, VertexId, INFINITE_DISTANCE};

use crate::SpgEngine;

/// Reusable, epoch-stamped scratch state for the double-BFS oracle: two
/// distance fields, the shared BFS queue and the answer-edge accumulator.
#[derive(Debug, Default)]
pub struct BfsWorkspace {
    from_source: DistanceField,
    from_target: DistanceField,
    queue: Vec<VertexId>,
    edges: Vec<(VertexId, VertexId)>,
}

impl BfsWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The exact BFS-based oracle.
///
/// Holds only a reference-counted copy of the graph; no precomputation.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    graph: Graph,
}

impl GroundTruth {
    /// Creates an oracle over a graph.
    pub fn new(graph: Graph) -> Self {
        GroundTruth { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Computes the shortest-path-graph answer for `(source, target)`.
    pub fn shortest_path_graph(&self, source: VertexId, target: VertexId) -> PathGraph {
        compute(&self.graph, source, target)
    }

    /// Computes the answer reusing the buffers of `ws`.
    pub fn query_with(
        &self,
        ws: &mut BfsWorkspace,
        source: VertexId,
        target: VertexId,
    ) -> PathGraph {
        compute_with(ws, &self.graph, source, target)
    }

    /// Distance between two vertices (convenience wrapper used by tests).
    pub fn distance(&self, source: VertexId, target: VertexId) -> Distance {
        if source == target {
            return 0;
        }
        bfs_distances(&self.graph, source)[target as usize]
    }
}

impl SpgEngine for GroundTruth {
    fn query(&self, source: VertexId, target: VertexId) -> PathGraph {
        self.shortest_path_graph(source, target)
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<PathGraph> {
        let mut ws = BfsWorkspace::new();
        pairs
            .iter()
            .map(|&(u, v)| self.query_with(&mut ws, u, v))
            .collect()
    }

    fn name(&self) -> &'static str {
        "BFS (ground truth)"
    }
}

/// Computes the exact shortest path graph between `source` and `target` on
/// `graph` using two full BFSs (throwaway workspace).
pub fn compute(graph: &Graph, source: VertexId, target: VertexId) -> PathGraph {
    compute_with(&mut BfsWorkspace::new(), graph, source, target)
}

/// Computes the exact shortest path graph reusing the buffers of `ws`.
///
/// The two BFSs run into epoch-stamped [`DistanceField`]s
/// ([`bfs_distances_into`]), so repeated oracle queries — the dominant cost
/// of every differential test — perform no `O(|V|)` allocations.
pub fn compute_with(
    ws: &mut BfsWorkspace,
    graph: &Graph,
    source: VertexId,
    target: VertexId,
) -> PathGraph {
    let n = graph.num_vertices();
    if source as usize >= n || target as usize >= n {
        return PathGraph::unreachable(source, target);
    }
    if source == target {
        return PathGraph::trivial(source);
    }
    bfs_distances_into(graph, source, &mut ws.from_source, &mut ws.queue);
    let total = ws.from_source.get(target);
    if total == INFINITE_DISTANCE {
        return PathGraph::unreachable(source, target);
    }
    bfs_distances_into(graph, target, &mut ws.from_target, &mut ws.queue);

    ws.edges.clear();
    for (a, b) in graph.edges() {
        let da = ws.from_source.get(a);
        let db = ws.from_source.get(b);
        let ta = ws.from_target.get(a);
        let tb = ws.from_target.get(b);
        if da == INFINITE_DISTANCE || db == INFINITE_DISTANCE {
            continue;
        }
        let forward = da.saturating_add(1).saturating_add(tb) == total;
        let backward = db.saturating_add(1).saturating_add(ta) == total;
        if forward || backward {
            ws.edges.push((a, b));
        }
    }
    PathGraph::from_edges(source, target, total, ws.edges.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::fixtures::{
        figure1b_graph, figure3_graph, figure3_spg_3_7_edges, figure4_graph, figure4_spg_6_11_edges,
    };
    use qbs_graph::GraphBuilder;

    #[test]
    fn reproduces_figure3_example() {
        let g = figure3_graph();
        let spg = compute(&g, 3, 7);
        assert_eq!(spg.distance(), 4);
        let expected = PathGraph::from_edges(3, 7, 4, figure3_spg_3_7_edges());
        assert_eq!(spg, expected);
        assert_eq!(spg.vertices(), vec![1, 2, 3, 4, 5, 7]);
    }

    #[test]
    fn reproduces_figure6f_answer() {
        let g = figure4_graph();
        let spg = compute(&g, 6, 11);
        assert_eq!(spg.distance(), 5);
        let expected = PathGraph::from_edges(6, 11, 5, figure4_spg_6_11_edges());
        assert_eq!(spg, expected);
    }

    #[test]
    fn symmetric_in_query_order() {
        let g = figure4_graph();
        let a = compute(&g, 6, 11);
        let b = compute(&g, 11, 6);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.distance(), b.distance());
    }

    #[test]
    fn figure1b_contains_all_three_paths() {
        let g = figure1b_graph();
        let spg = compute(&g, 0, 7);
        assert_eq!(spg.distance(), 3);
        assert_eq!(spg.num_edges(), 9);
        assert_eq!(spg.num_vertices(), 8);
    }

    #[test]
    fn adjacent_vertices_yield_single_edge() {
        let g = figure3_graph();
        let spg = compute(&g, 1, 2);
        assert_eq!(spg.distance(), 1);
        assert_eq!(spg.edges(), &[(1, 2)]);
    }

    #[test]
    fn same_vertex_is_trivial() {
        let g = figure3_graph();
        let spg = compute(&g, 5, 5);
        assert_eq!(spg.distance(), 0);
        assert_eq!(spg.num_edges(), 0);
    }

    #[test]
    fn unreachable_pair_is_empty() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)]);
        b.reserve_vertices(4);
        let g = b.build();
        let spg = compute(&g, 0, 3);
        assert!(!spg.is_reachable());
        assert_eq!(spg.num_edges(), 0);
    }

    #[test]
    fn out_of_range_vertices_are_unreachable() {
        let g = figure3_graph();
        assert!(!compute(&g, 1, 99).is_reachable());
        assert!(!compute(&g, 99, 1).is_reachable());
    }

    #[test]
    fn every_answer_edge_lies_on_a_shortest_path() {
        // Structural invariant on a graph with many equal-length paths.
        let g = qbs_graph::GraphBuilder::from_edges([
            (0u32, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (0, 7),
            (7, 8),
            (8, 6),
        ])
        .build();
        let spg = compute(&g, 0, 6);
        let du = bfs_distances(&g, 0);
        let dv = bfs_distances(&g, 6);
        for &(a, b) in spg.edges() {
            let on_path = du[a as usize] + 1 + dv[b as usize] == spg.distance()
                || du[b as usize] + 1 + dv[a as usize] == spg.distance();
            assert!(on_path, "edge ({a},{b}) not on a shortest path");
        }
    }

    #[test]
    fn engine_trait_exposes_name_and_zero_index_size() {
        let g = figure3_graph();
        let oracle = GroundTruth::new(g);
        assert_eq!(oracle.name(), "BFS (ground truth)");
        assert_eq!(oracle.index_size_bytes(), 0);
        assert_eq!(oracle.distance(3, 7), 4);
        assert_eq!(oracle.query(3, 7).distance(), 4);
    }
}
