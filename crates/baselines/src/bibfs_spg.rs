//! Bi-BFS: the search-based baseline of §6.1.
//!
//! The query is answered online with no precomputation: an alternating
//! bidirectional BFS discovers the distance `d_G(u, v)` and the two
//! distance fields around `u` and `v`, and a *reverse search* from the
//! meeting vertices reconstructs every edge lying on a shortest path. This
//! is the method labelled **Bi-BFS** in Table 2 of the paper.

use qbs_graph::bibfs::SearchEffort;
use qbs_graph::view::NeighborAccess;
use qbs_graph::{Distance, Graph, PathGraph, VertexId, INFINITE_DISTANCE};

use crate::SpgEngine;

/// The bidirectional-search baseline.
#[derive(Clone, Debug)]
pub struct BiBfs {
    graph: Graph,
}

/// A query answer together with the work counters used by the §6.5
/// "edges traversed" comparison.
#[derive(Clone, Debug)]
pub struct BiBfsAnswer {
    /// The shortest path graph.
    pub spg: PathGraph,
    /// Search-effort counters.
    pub effort: SearchEffort,
}

impl BiBfs {
    /// Creates the baseline over a graph.
    pub fn new(graph: Graph) -> Self {
        BiBfs { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Answers `SPG(source, target)` and reports search effort.
    pub fn query_with_effort(&self, source: VertexId, target: VertexId) -> BiBfsAnswer {
        compute(&self.graph, source, target)
    }
}

impl SpgEngine for BiBfs {
    fn query(&self, source: VertexId, target: VertexId) -> PathGraph {
        compute(&self.graph, source, target).spg
    }

    fn name(&self) -> &'static str {
        "Bi-BFS"
    }
}

/// State of one side of the bidirectional search.
struct Side {
    dist: Vec<Distance>,
    frontier: Vec<VertexId>,
    level: Distance,
    frontier_degree_sum: usize,
}

impl Side {
    fn new(n: usize, source: VertexId, degree: usize) -> Self {
        let mut dist = vec![INFINITE_DISTANCE; n];
        dist[source as usize] = 0;
        Side { dist, frontier: vec![source], level: 0, frontier_degree_sum: degree }
    }

    fn expand<G: NeighborAccess>(&mut self, graph: &G, effort: &mut SearchEffort) {
        let mut next = Vec::new();
        let mut degree_sum = 0usize;
        for &u in &self.frontier {
            effort.vertices_settled += 1;
            graph.for_each_neighbor(u, |v| {
                effort.edges_traversed += 1;
                if self.dist[v as usize] == INFINITE_DISTANCE {
                    self.dist[v as usize] = self.level + 1;
                    degree_sum += graph.view_degree(v);
                    next.push(v);
                }
            });
        }
        self.level += 1;
        self.frontier = next;
        self.frontier_degree_sum = degree_sum;
    }
}

/// Computes the shortest path graph between `source` and `target` on any
/// adjacency view with an alternating bidirectional BFS plus reverse search.
///
/// The function is generic so that `qbs-core` can reuse the identical
/// machinery on the sparsified graph `G⁻` inside its guided search.
pub fn compute_on_view<G: NeighborAccess>(
    graph: &G,
    source: VertexId,
    target: VertexId,
    bound: Distance,
) -> BiBfsAnswer {
    let n = graph.vertex_count();
    let mut effort = SearchEffort::default();
    if !graph.contains_vertex(source) || !graph.contains_vertex(target) {
        return BiBfsAnswer { spg: PathGraph::unreachable(source, target), effort };
    }
    if source == target {
        return BiBfsAnswer { spg: PathGraph::trivial(source), effort };
    }

    let mut fwd = Side::new(n, source, graph.view_degree(source));
    let mut bwd = Side::new(n, target, graph.view_degree(target));
    let mut meeting_distance = INFINITE_DISTANCE;

    // Alternating level expansion until the frontiers provably met (or the
    // bound / exhaustion proves disconnection within the bound).
    loop {
        if meeting_distance != INFINITE_DISTANCE {
            break;
        }
        if fwd.frontier.is_empty() || bwd.frontier.is_empty() {
            return BiBfsAnswer { spg: PathGraph::unreachable(source, target), effort };
        }
        if fwd.level + bwd.level >= bound {
            return BiBfsAnswer { spg: PathGraph::unreachable(source, target), effort };
        }

        let expand_forward = fwd.frontier_degree_sum <= bwd.frontier_degree_sum;
        if expand_forward {
            effort.forward_levels += 1;
            fwd.expand(graph, &mut effort);
        } else {
            effort.backward_levels += 1;
            bwd.expand(graph, &mut effort);
        }
        let (just, other) = if expand_forward { (&fwd, &bwd) } else { (&bwd, &fwd) };
        for &w in &just.frontier {
            let od = other.dist[w as usize];
            if od != INFINITE_DISTANCE {
                let total = just.level + od;
                if total < meeting_distance {
                    meeting_distance = total;
                }
            }
        }
    }

    let spg = reconstruct(graph, source, target, meeting_distance, &fwd.dist, &bwd.dist);
    BiBfsAnswer { spg, effort }
}

/// Computes the shortest path graph on a full graph (unbounded search).
pub fn compute(graph: &Graph, source: VertexId, target: VertexId) -> BiBfsAnswer {
    compute_on_view(graph, source, target, INFINITE_DISTANCE)
}

/// Reverse search: given the (partial) distance fields around `source` and
/// `target` and the true distance, walk back from every meeting vertex and
/// collect each edge lying on a shortest path.
///
/// `dist_from_source[w]` / `dist_from_target[w]` must be exact BFS distances
/// wherever they are finite, and every vertex `w` with
/// `dist_from_source[w] + dist_from_target[w] == distance` for *some*
/// shortest path must be finite in both fields — which is exactly the state
/// the alternating search above terminates in.
pub fn reconstruct<G: NeighborAccess>(
    graph: &G,
    source: VertexId,
    target: VertexId,
    distance: Distance,
    dist_from_source: &[Distance],
    dist_from_target: &[Distance],
) -> PathGraph {
    let n = graph.vertex_count();
    // Meeting vertices: settled from both sides with a tight distance sum.
    let mut meeting: Vec<VertexId> = Vec::new();
    for w in 0..n as VertexId {
        let ds = dist_from_source[w as usize];
        let dt = dist_from_target[w as usize];
        if ds != INFINITE_DISTANCE && dt != INFINITE_DISTANCE && ds + dt == distance {
            meeting.push(w);
        }
    }

    let mut edges = Vec::new();
    // Walk toward the source following strictly decreasing source-distance.
    let mut visited = vec![false; n];
    let mut stack: Vec<VertexId> = meeting.clone();
    for &w in &meeting {
        visited[w as usize] = true;
    }
    while let Some(x) = stack.pop() {
        let dx = dist_from_source[x as usize];
        if dx == 0 {
            continue;
        }
        graph.for_each_neighbor(x, |p| {
            if dist_from_source[p as usize] != INFINITE_DISTANCE
                && dist_from_source[p as usize] + 1 == dx
            {
                edges.push((p, x));
                if !visited[p as usize] {
                    visited[p as usize] = true;
                    stack.push(p);
                }
            }
        });
    }
    // Walk toward the target following strictly decreasing target-distance.
    let mut visited = vec![false; n];
    let mut stack: Vec<VertexId> = meeting.clone();
    for &w in &meeting {
        visited[w as usize] = true;
    }
    while let Some(x) = stack.pop() {
        let dx = dist_from_target[x as usize];
        if dx == 0 {
            continue;
        }
        graph.for_each_neighbor(x, |p| {
            if dist_from_target[p as usize] != INFINITE_DISTANCE
                && dist_from_target[p as usize] + 1 == dx
            {
                edges.push((x, p));
                if !visited[p as usize] {
                    visited[p as usize] = true;
                    stack.push(p);
                }
            }
        });
    }
    PathGraph::from_edges(source, target, distance, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_spg;
    use qbs_graph::fixtures::{figure1b_graph, figure3_graph, figure4_graph};
    use qbs_graph::view::{FilteredGraph, VertexFilter};
    use qbs_graph::GraphBuilder;

    fn assert_matches_ground_truth(graph: &Graph, pairs: &[(VertexId, VertexId)]) {
        for &(u, v) in pairs {
            let expected = bfs_spg::compute(graph, u, v);
            let got = compute(graph, u, v).spg;
            assert_eq!(got, expected, "query ({u},{v})");
        }
    }

    #[test]
    fn matches_ground_truth_on_paper_figures() {
        let g3 = figure3_graph();
        assert_matches_ground_truth(&g3, &[(3, 7), (1, 7), (4, 6), (1, 2), (6, 7)]);
        let g4 = figure4_graph();
        assert_matches_ground_truth(
            &g4,
            &[(6, 11), (4, 10), (5, 9), (13, 8), (1, 11), (14, 12), (6, 6)],
        );
        let g1 = figure1b_graph();
        assert_matches_ground_truth(&g1, &[(0, 7), (1, 5), (2, 4)]);
    }

    #[test]
    fn exhaustive_pairs_on_figure4() {
        let g = figure4_graph();
        for u in 1..15u32 {
            for v in 1..15u32 {
                let expected = bfs_spg::compute(&g, u, v);
                let got = compute(&g, u, v).spg;
                assert_eq!(got, expected, "query ({u},{v})");
            }
        }
    }

    #[test]
    fn unreachable_and_out_of_view_pairs() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)].into_iter());
        b.reserve_vertices(4);
        let g = b.build();
        assert!(!compute(&g, 0, 3).spg.is_reachable());

        let g4 = figure4_graph();
        let removed = VertexFilter::from_vertices(g4.num_vertices(), [1u32, 2, 3].into_iter());
        let view = FilteredGraph::new(&g4, &removed);
        let ans = compute_on_view(&view, 6, 4, INFINITE_DISTANCE);
        assert!(!ans.spg.is_reachable());
        let ans = compute_on_view(&view, 1, 6, INFINITE_DISTANCE);
        assert!(!ans.spg.is_reachable());
    }

    #[test]
    fn bounded_search_respects_bound() {
        let g = figure4_graph();
        // d(6, 11) = 5, so a bound of 4 must report unreachable.
        let ans = compute_on_view(&g, 6, 11, 4);
        assert!(!ans.spg.is_reachable());
        let ans = compute_on_view(&g, 6, 11, 5);
        assert_eq!(ans.spg.distance(), 5);
    }

    #[test]
    fn sparsified_view_answer_matches_example_4_8() {
        let g = figure4_graph();
        let removed = VertexFilter::from_vertices(g.num_vertices(), [1u32, 2, 3].into_iter());
        let view = FilteredGraph::new(&g, &removed);
        let ans = compute_on_view(&view, 6, 11, INFINITE_DISTANCE);
        // G⁻ contains exactly the path 6-7-8-9-10-11 (Figure 6(c)/(e)).
        assert_eq!(ans.spg.distance(), 5);
        assert_eq!(
            ans.spg.edges(),
            &[(6, 7), (7, 8), (8, 9), (9, 10), (10, 11)]
        );
    }

    #[test]
    fn effort_counters_track_work() {
        let g = figure4_graph();
        let ans = compute(&g, 6, 11);
        assert!(ans.effort.edges_traversed > 0);
        assert!(ans.effort.vertices_settled > 0);
    }

    #[test]
    fn engine_trait_name() {
        let engine = BiBfs::new(figure3_graph());
        assert_eq!(engine.name(), "Bi-BFS");
        assert_eq!(engine.query(3, 7).distance(), 4);
        assert_eq!(engine.query_with_effort(3, 7).spg.distance(), 4);
        assert_eq!(engine.graph().num_vertices(), 8);
    }
}
