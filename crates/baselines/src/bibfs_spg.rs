//! Bi-BFS: the search-based baseline of §6.1.
//!
//! The query is answered online with no precomputation: an alternating
//! bidirectional BFS discovers the distance `d_G(u, v)` and the two
//! distance fields around `u` and `v`, and a *reverse search* from the
//! meeting vertices reconstructs every edge lying on a shortest path. This
//! is the method labelled **Bi-BFS** in Table 2 of the paper.
//!
//! Like the QbS guided search, the baseline runs on a reusable
//! [`BiBfsWorkspace`] whose per-vertex state is epoch-stamped
//! ([`qbs_graph::workspace`]): repeated queries perform no `O(|V|)`
//! allocations or clears, so paper comparisons against the workspace-based
//! QbS query path stay apples-to-apples.

use qbs_graph::bibfs::SearchEffort;
use qbs_graph::view::NeighborAccess;
use qbs_graph::workspace::{DistanceField, VisitedSet};
use qbs_graph::{Distance, Graph, PathGraph, VertexId, INFINITE_DISTANCE};

use crate::SpgEngine;

/// The bidirectional-search baseline.
#[derive(Clone, Debug)]
pub struct BiBfs {
    graph: Graph,
}

/// A query answer together with the work counters used by the §6.5
/// "edges traversed" comparison.
#[derive(Clone, Debug)]
pub struct BiBfsAnswer {
    /// The shortest path graph.
    pub spg: PathGraph,
    /// Search-effort counters.
    pub effort: SearchEffort,
}

/// Reusable, epoch-stamped scratch state for Bi-BFS queries (the baseline's
/// analogue of `qbs_core::QueryWorkspace`).
#[derive(Debug, Default)]
pub struct BiBfsWorkspace {
    fwd_dist: DistanceField,
    bwd_dist: DistanceField,
    fwd_frontier: Vec<VertexId>,
    bwd_frontier: Vec<VertexId>,
    /// All vertices settled from the source / target side, in discovery
    /// order — lets the reverse search find the meeting vertices by
    /// scanning the smaller settled set instead of all `|V|` slots.
    fwd_settled: Vec<VertexId>,
    bwd_settled: Vec<VertexId>,
    /// Next-frontier scratch, swapped with the active frontier per level.
    scratch: Vec<VertexId>,
    visited: VisitedSet,
    stack: Vec<VertexId>,
    meeting: Vec<VertexId>,
    edges: Vec<(VertexId, VertexId)>,
    queries_served: u64,
}

impl BiBfsWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries answered through this workspace.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }
}

impl BiBfs {
    /// Creates the baseline over a graph.
    pub fn new(graph: Graph) -> Self {
        BiBfs { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Answers `SPG(source, target)` and reports search effort (throwaway
    /// workspace).
    pub fn query_with_effort(&self, source: VertexId, target: VertexId) -> BiBfsAnswer {
        compute(&self.graph, source, target)
    }

    /// Answers `SPG(source, target)` reusing the buffers of `ws`.
    pub fn query_with(
        &self,
        ws: &mut BiBfsWorkspace,
        source: VertexId,
        target: VertexId,
    ) -> BiBfsAnswer {
        compute_on_view_with(ws, &self.graph, source, target, INFINITE_DISTANCE)
    }
}

impl SpgEngine for BiBfs {
    fn query(&self, source: VertexId, target: VertexId) -> PathGraph {
        compute(&self.graph, source, target).spg
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<PathGraph> {
        let mut ws = BiBfsWorkspace::new();
        pairs
            .iter()
            .map(|&(u, v)| self.query_with(&mut ws, u, v).spg)
            .collect()
    }

    fn name(&self) -> &'static str {
        "Bi-BFS"
    }
}

/// One side of the bidirectional search, borrowing its storage from the
/// workspace.
struct Side<'ws> {
    dist: &'ws mut DistanceField,
    frontier: &'ws mut Vec<VertexId>,
    settled: &'ws mut Vec<VertexId>,
    level: Distance,
    frontier_degree_sum: usize,
}

impl<'ws> Side<'ws> {
    fn begin(
        dist: &'ws mut DistanceField,
        frontier: &'ws mut Vec<VertexId>,
        settled: &'ws mut Vec<VertexId>,
        n: usize,
        source: VertexId,
        degree: usize,
    ) -> Self {
        dist.reset(n);
        dist.set(source, 0);
        frontier.clear();
        frontier.push(source);
        settled.clear();
        settled.push(source);
        Side {
            dist,
            frontier,
            settled,
            level: 0,
            frontier_degree_sum: degree,
        }
    }

    fn expand<G: NeighborAccess>(
        &mut self,
        graph: &G,
        scratch: &mut Vec<VertexId>,
        effort: &mut SearchEffort,
    ) {
        scratch.clear();
        let next_depth = self.level + 1;
        let mut degree_sum = 0usize;
        let Side {
            dist,
            frontier,
            settled,
            ..
        } = self;
        for &u in frontier.iter() {
            effort.vertices_settled += 1;
            graph.for_each_neighbor(u, |v| {
                effort.edges_traversed += 1;
                if !dist.is_set(v) {
                    dist.set(v, next_depth);
                    degree_sum += graph.view_degree(v);
                    scratch.push(v);
                    settled.push(v);
                }
            });
        }
        self.level = next_depth;
        std::mem::swap(self.frontier, scratch);
        self.frontier_degree_sum = degree_sum;
    }
}

/// Computes the shortest path graph between `source` and `target` on any
/// adjacency view with an alternating bidirectional BFS plus reverse
/// search, reusing the buffers of `ws`.
///
/// The function is generic so that callers can run the identical machinery
/// on a sparsified view as well as on a full graph.
pub fn compute_on_view_with<G: NeighborAccess>(
    ws: &mut BiBfsWorkspace,
    graph: &G,
    source: VertexId,
    target: VertexId,
    bound: Distance,
) -> BiBfsAnswer {
    let n = graph.vertex_count();
    ws.queries_served += 1;
    let mut effort = SearchEffort::default();
    if !graph.contains_vertex(source) || !graph.contains_vertex(target) {
        return BiBfsAnswer {
            spg: PathGraph::unreachable(source, target),
            effort,
        };
    }
    if source == target {
        return BiBfsAnswer {
            spg: PathGraph::trivial(source),
            effort,
        };
    }

    let BiBfsWorkspace {
        fwd_dist,
        bwd_dist,
        fwd_frontier,
        bwd_frontier,
        fwd_settled,
        bwd_settled,
        scratch,
        visited,
        stack,
        meeting,
        edges,
        ..
    } = ws;
    let mut fwd = Side::begin(
        fwd_dist,
        fwd_frontier,
        fwd_settled,
        n,
        source,
        graph.view_degree(source),
    );
    let mut bwd = Side::begin(
        bwd_dist,
        bwd_frontier,
        bwd_settled,
        n,
        target,
        graph.view_degree(target),
    );
    let mut meeting_distance = INFINITE_DISTANCE;

    // Alternating level expansion until the frontiers provably met (or the
    // bound / exhaustion proves disconnection within the bound).
    loop {
        if meeting_distance != INFINITE_DISTANCE {
            break;
        }
        if fwd.frontier.is_empty() || bwd.frontier.is_empty() {
            return BiBfsAnswer {
                spg: PathGraph::unreachable(source, target),
                effort,
            };
        }
        if fwd.level + bwd.level >= bound {
            return BiBfsAnswer {
                spg: PathGraph::unreachable(source, target),
                effort,
            };
        }

        let expand_forward = fwd.frontier_degree_sum <= bwd.frontier_degree_sum;
        if expand_forward {
            effort.forward_levels += 1;
            fwd.expand(graph, scratch, &mut effort);
        } else {
            effort.backward_levels += 1;
            bwd.expand(graph, scratch, &mut effort);
        }
        let (just, other) = if expand_forward {
            (&fwd, &bwd)
        } else {
            (&bwd, &fwd)
        };
        for &w in just.frontier.iter() {
            let od = other.dist.get(w);
            if od != INFINITE_DISTANCE {
                let total = just.level + od;
                if total < meeting_distance {
                    meeting_distance = total;
                }
            }
        }
    }

    // ---- Reverse search over the reusable buffers. ----
    // Meeting vertices: settled from both sides with a tight distance sum,
    // found by scanning the smaller settled set.
    meeting.clear();
    let (scan, other) = if fwd.settled.len() <= bwd.settled.len() {
        (&fwd, &bwd)
    } else {
        (&bwd, &fwd)
    };
    for &w in scan.settled.iter() {
        let ds = scan.dist.get(w);
        let dt = other.dist.get(w);
        if ds != INFINITE_DISTANCE && dt != INFINITE_DISTANCE && ds + dt == meeting_distance {
            meeting.push(w);
        }
    }

    edges.clear();
    // Walk toward the source following strictly decreasing source-distance,
    // then toward the target following target-distance.
    for forward in [true, false] {
        let dist = if forward { &*fwd.dist } else { &*bwd.dist };
        visited.reset(n);
        stack.clear();
        for &w in meeting.iter() {
            visited.insert(w);
            stack.push(w);
        }
        while let Some(x) = stack.pop() {
            let dx = dist.get(x);
            if dx == 0 {
                continue;
            }
            graph.for_each_neighbor(x, |p| {
                if dist.is_set(p) && dist.get(p) + 1 == dx {
                    if forward {
                        edges.push((p, x));
                    } else {
                        edges.push((x, p));
                    }
                    if visited.insert(p) {
                        stack.push(p);
                    }
                }
            });
        }
    }
    let spg = PathGraph::from_edges(source, target, meeting_distance, edges.iter().copied());
    BiBfsAnswer { spg, effort }
}

/// Computes the shortest path graph on any adjacency view with a throwaway
/// workspace (see [`compute_on_view_with`] for the reusable-buffer form).
pub fn compute_on_view<G: NeighborAccess>(
    graph: &G,
    source: VertexId,
    target: VertexId,
    bound: Distance,
) -> BiBfsAnswer {
    compute_on_view_with(&mut BiBfsWorkspace::new(), graph, source, target, bound)
}

/// Computes the shortest path graph on a full graph (unbounded search).
pub fn compute(graph: &Graph, source: VertexId, target: VertexId) -> BiBfsAnswer {
    compute_on_view(graph, source, target, INFINITE_DISTANCE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_spg;
    use qbs_graph::fixtures::{figure1b_graph, figure3_graph, figure4_graph};
    use qbs_graph::view::{FilteredGraph, VertexFilter};
    use qbs_graph::GraphBuilder;

    fn assert_matches_ground_truth(graph: &Graph, pairs: &[(VertexId, VertexId)]) {
        let mut ws = BiBfsWorkspace::new();
        for &(u, v) in pairs {
            let expected = bfs_spg::compute(graph, u, v);
            let got = compute(graph, u, v).spg;
            assert_eq!(got, expected, "query ({u},{v})");
            // The reusable-workspace path must agree exactly.
            let reused = compute_on_view_with(&mut ws, graph, u, v, INFINITE_DISTANCE).spg;
            assert_eq!(reused, expected, "workspace query ({u},{v})");
        }
    }

    #[test]
    fn matches_ground_truth_on_paper_figures() {
        let g3 = figure3_graph();
        assert_matches_ground_truth(&g3, &[(3, 7), (1, 7), (4, 6), (1, 2), (6, 7)]);
        let g4 = figure4_graph();
        assert_matches_ground_truth(
            &g4,
            &[(6, 11), (4, 10), (5, 9), (13, 8), (1, 11), (14, 12), (6, 6)],
        );
        let g1 = figure1b_graph();
        assert_matches_ground_truth(&g1, &[(0, 7), (1, 5), (2, 4)]);
    }

    #[test]
    fn exhaustive_pairs_on_figure4() {
        let g = figure4_graph();
        for u in 1..15u32 {
            for v in 1..15u32 {
                let expected = bfs_spg::compute(&g, u, v);
                let got = compute(&g, u, v).spg;
                assert_eq!(got, expected, "query ({u},{v})");
            }
        }
    }

    #[test]
    fn workspace_reuse_across_exhaustive_pairs() {
        let g = figure4_graph();
        let mut ws = BiBfsWorkspace::new();
        for u in 1..15u32 {
            for v in 1..15u32 {
                let expected = bfs_spg::compute(&g, u, v);
                let got = compute_on_view_with(&mut ws, &g, u, v, INFINITE_DISTANCE).spg;
                assert_eq!(got, expected, "query ({u},{v})");
            }
        }
        assert_eq!(ws.queries_served(), 14 * 14);
    }

    #[test]
    fn unreachable_and_out_of_view_pairs() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)]);
        b.reserve_vertices(4);
        let g = b.build();
        assert!(!compute(&g, 0, 3).spg.is_reachable());

        let g4 = figure4_graph();
        let removed = VertexFilter::from_vertices(g4.num_vertices(), [1u32, 2, 3]);
        let view = FilteredGraph::new(&g4, &removed);
        let ans = compute_on_view(&view, 6, 4, INFINITE_DISTANCE);
        assert!(!ans.spg.is_reachable());
        let ans = compute_on_view(&view, 1, 6, INFINITE_DISTANCE);
        assert!(!ans.spg.is_reachable());
    }

    #[test]
    fn bounded_search_respects_bound() {
        let g = figure4_graph();
        // d(6, 11) = 5, so a bound of 4 must report unreachable.
        let ans = compute_on_view(&g, 6, 11, 4);
        assert!(!ans.spg.is_reachable());
        let ans = compute_on_view(&g, 6, 11, 5);
        assert_eq!(ans.spg.distance(), 5);
    }

    #[test]
    fn sparsified_view_answer_matches_example_4_8() {
        let g = figure4_graph();
        let removed = VertexFilter::from_vertices(g.num_vertices(), [1u32, 2, 3]);
        let view = FilteredGraph::new(&g, &removed);
        let ans = compute_on_view(&view, 6, 11, INFINITE_DISTANCE);
        // G⁻ contains exactly the path 6-7-8-9-10-11 (Figure 6(c)/(e)).
        assert_eq!(ans.spg.distance(), 5);
        assert_eq!(
            ans.spg.edges(),
            &[(6, 7), (7, 8), (8, 9), (9, 10), (10, 11)]
        );
    }

    #[test]
    fn effort_counters_track_work() {
        let g = figure4_graph();
        let ans = compute(&g, 6, 11);
        assert!(ans.effort.edges_traversed > 0);
        assert!(ans.effort.vertices_settled > 0);
    }

    #[test]
    fn engine_trait_name_and_batch() {
        let engine = BiBfs::new(figure3_graph());
        assert_eq!(engine.name(), "Bi-BFS");
        assert_eq!(engine.query(3, 7).distance(), 4);
        assert_eq!(engine.query_with_effort(3, 7).spg.distance(), 4);
        assert_eq!(engine.graph().num_vertices(), 8);
        let batch = engine.query_batch(&[(3, 7), (1, 2)]);
        assert_eq!(batch[0], engine.query(3, 7));
        assert_eq!(batch[1], engine.query(1, 2));
    }
}
