//! Weighted single-source shortest paths (Dijkstra) and weighted shortest
//! path graphs.
//!
//! The paper restricts itself to unweighted graphs and names weighted road
//! networks as future work (§8). This module provides the weighted
//! reference implementation used to (a) cross-check the unweighted
//! algorithms under unit edge weights and (b) serve as the substrate for
//! that future-work extension. Edge weights are supplied by a callback so
//! the CSR graph itself stays unweighted and compact.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use qbs_graph::{Graph, PathGraph, VertexId};

/// Weighted distance type (u64 with `u64::MAX` as "unreachable").
pub type Weight = u64;

/// Sentinel for unreachable vertices.
pub const INFINITE_WEIGHT: Weight = u64::MAX;

/// Computes weighted distances from `source` to every vertex.
///
/// `weight` is called once per directed arc `(u, v)` and must return a
/// strictly positive weight.
pub fn single_source<F>(graph: &Graph, source: VertexId, mut weight: F) -> Vec<Weight>
where
    F: FnMut(VertexId, VertexId) -> Weight,
{
    let n = graph.num_vertices();
    let mut dist = vec![INFINITE_WEIGHT; n];
    if n == 0 || source as usize >= n {
        return dist;
    }
    dist[source as usize] = 0;
    let mut heap: BinaryHeap<Reverse<(Weight, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for &v in graph.neighbors(u) {
            let w = weight(u, v);
            debug_assert!(w > 0, "edge weights must be positive");
            let candidate = d.saturating_add(w);
            if candidate < dist[v as usize] {
                dist[v as usize] = candidate;
                heap.push(Reverse((candidate, v)));
            }
        }
    }
    dist
}

/// Computes the weighted shortest path graph between `source` and `target`:
/// the union of all minimum-weight paths.
pub fn shortest_path_graph<F>(
    graph: &Graph,
    source: VertexId,
    target: VertexId,
    mut weight: F,
) -> PathGraph
where
    F: FnMut(VertexId, VertexId) -> Weight + Copy,
{
    let n = graph.num_vertices();
    if source as usize >= n || target as usize >= n {
        return PathGraph::unreachable(source, target);
    }
    if source == target {
        return PathGraph::trivial(source);
    }
    let from_source = single_source(graph, source, weight);
    let total = from_source[target as usize];
    if total == INFINITE_WEIGHT {
        return PathGraph::unreachable(source, target);
    }
    let from_target = single_source(graph, target, weight);

    let mut edges = Vec::new();
    for (a, b) in graph.edges() {
        let (da, db) = (from_source[a as usize], from_source[b as usize]);
        let (ta, tb) = (from_target[a as usize], from_target[b as usize]);
        if da == INFINITE_WEIGHT || db == INFINITE_WEIGHT {
            continue;
        }
        let w_ab = weight(a, b);
        let w_ba = weight(b, a);
        if da.saturating_add(w_ab).saturating_add(tb) == total
            || db.saturating_add(w_ba).saturating_add(ta) == total
        {
            edges.push((a, b));
        }
    }
    // Hop distance is not meaningful for weighted answers; report the hop
    // count of the unweighted metric only when weights are unit. Here we
    // store the weighted total truncated into the Distance type domain.
    let hop_distance = total.min(u64::from(u32::MAX - 1)) as u32;
    PathGraph::from_edges(source, target, hop_distance, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_spg;
    use qbs_graph::fixtures::{figure3_graph, figure4_graph};
    use qbs_graph::traversal::bfs_distances;
    use qbs_graph::{GraphBuilder, INFINITE_DISTANCE};

    #[test]
    fn unit_weights_match_bfs_distances() {
        for g in [figure3_graph(), figure4_graph()] {
            for s in g.vertices() {
                let bfs = bfs_distances(&g, s);
                let dij = single_source(&g, s, |_, _| 1);
                for v in g.vertices() {
                    if bfs[v as usize] == INFINITE_DISTANCE {
                        assert_eq!(dij[v as usize], INFINITE_WEIGHT);
                    } else {
                        assert_eq!(dij[v as usize], bfs[v as usize] as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn unit_weight_spg_matches_ground_truth() {
        let g = figure4_graph();
        for (u, v) in [(6u32, 11u32), (4, 10), (5, 9)] {
            let expected = bfs_spg::compute(&g, u, v);
            let got = shortest_path_graph(&g, u, v, |_, _| 1);
            assert_eq!(got.edges(), expected.edges(), "query ({u},{v})");
        }
    }

    #[test]
    fn weights_can_reroute_shortest_paths() {
        // Square 0-1-3 / 0-2-3: make the 0-1 edge expensive so only the
        // 0-2-3 route remains shortest.
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 3), (0, 2), (2, 3)]).build();
        let weight = |a: VertexId, b: VertexId| {
            if (a.min(b), a.max(b)) == (0, 1) {
                10
            } else {
                1
            }
        };
        let spg = shortest_path_graph(&g, 0, 3, weight);
        assert_eq!(spg.edges(), &[(0, 2), (2, 3)]);

        // With unit weights both routes are shortest.
        let spg = shortest_path_graph(&g, 0, 3, |_, _| 1);
        assert_eq!(spg.num_edges(), 4);
    }

    #[test]
    fn unreachable_and_degenerate_cases() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)]);
        b.reserve_vertices(4);
        let g = b.build();
        assert!(!shortest_path_graph(&g, 0, 3, |_, _| 1).is_reachable());
        assert_eq!(shortest_path_graph(&g, 1, 1, |_, _| 1).distance(), 0);
        assert!(!shortest_path_graph(&g, 0, 9, |_, _| 1).is_reachable());
        assert!(single_source(&GraphBuilder::new().build(), 0, |_, _| 1).is_empty());
    }
}
