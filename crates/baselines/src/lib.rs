//! # qbs-baselines
//!
//! Baseline algorithms for the shortest-path-graph problem, implemented
//! exactly as described (or referenced) in the paper so the experiment
//! harness can compare Query-by-Sketch against them:
//!
//! * [`bfs_spg`] — the ground truth: two full BFSs per query ("a
//!   straightforward solution ... performing a breadth-first search", §1).
//!   Every other algorithm in the workspace is differential-tested against
//!   it.
//! * [`bibfs_spg`] — the search-based baseline **Bi-BFS** of §6.1, a
//!   bidirectional BFS followed by a reverse reconstruction of all shortest
//!   paths.
//! * [`ppl`] — **Pruned Path Labelling** (PPL, §3.2): PLL-style pruned BFSs
//!   that retain labels on distance ties so the labelling is a 2-hop *path*
//!   cover, answered by the recursive common-landmark decomposition.
//! * [`parent_ppl`] — **ParentPPL** (§3.2): PPL plus per-label parent sets,
//!   trading memory for faster path reconstruction.
//! * [`dijkstra`] — a weighted single-source reference used to sanity-check
//!   the unweighted algorithms on unit weights (and as a starting point for
//!   the paper's "extend to road networks" future work).
//!
//! All query answers are returned as [`qbs_graph::PathGraph`] values so they
//! can be compared structurally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs_spg;
pub mod bibfs_spg;
pub mod dijkstra;
pub mod parent_ppl;
pub mod ppl;

pub use bfs_spg::GroundTruth;
pub use bibfs_spg::BiBfs;
pub use parent_ppl::ParentPpl;
pub use ppl::Ppl;

/// A per-query failure of the checked [`SpgEngine`] batch API: the
/// requested endpoint does not exist in the engine's graph.
///
/// Mirrors the per-request error semantics of `qbs_core`'s typed request
/// pipeline (`QueryOutcome::Error`): one bad pair in a batch yields one
/// `Err` slot, never a panic or an aborted batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpgQueryError {
    /// The offending vertex.
    pub vertex: qbs_graph::VertexId,
    /// Number of vertices of the engine's graph.
    pub num_vertices: usize,
}

impl std::fmt::Display for SpgQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vertex {} out of range for graph with {} vertices",
            self.vertex, self.num_vertices
        )
    }
}

impl std::error::Error for SpgQueryError {}

/// A shortest-path-graph query engine: anything that can answer
/// `SPG(u, v)` queries over a fixed graph.
///
/// Implemented by every baseline and by `qbs_core::QbsIndex`, so the
/// experiment harness and the differential tests can treat all methods
/// uniformly.
pub trait SpgEngine {
    /// Answers the query `SPG(source, target)`.
    ///
    /// May panic on out-of-range endpoints, exactly like slice indexing;
    /// serving callers should prefer [`SpgEngine::try_query`] /
    /// [`SpgEngine::try_query_batch`].
    fn query(
        &self,
        source: qbs_graph::VertexId,
        target: qbs_graph::VertexId,
    ) -> qbs_graph::PathGraph;

    /// Number of vertices of the engine's graph — the valid endpoint range
    /// of [`SpgEngine::try_query`].
    fn num_vertices(&self) -> usize;

    /// Answers `SPG(source, target)` with endpoint validation: an
    /// out-of-range endpoint is an `Err`, never a panic.
    fn try_query(
        &self,
        source: qbs_graph::VertexId,
        target: qbs_graph::VertexId,
    ) -> Result<qbs_graph::PathGraph, SpgQueryError> {
        let n = self.num_vertices();
        for v in [source, target] {
            if v as usize >= n {
                return Err(SpgQueryError {
                    vertex: v,
                    num_vertices: n,
                });
            }
        }
        Ok(self.query(source, target))
    }

    /// Answers a batch of queries, in input order.
    ///
    /// The default implementation loops over [`SpgEngine::query`]; engines
    /// with reusable workspaces (Bi-BFS, the ground-truth oracle, QbS via
    /// its `QueryEngine`) override it to amortise their per-query scratch
    /// state — the batch API the experiment harness and the CLI drive.
    fn query_batch(
        &self,
        pairs: &[(qbs_graph::VertexId, qbs_graph::VertexId)],
    ) -> Vec<qbs_graph::PathGraph> {
        pairs.iter().map(|&(u, v)| self.query(u, v)).collect()
    }

    /// Answers a batch with **per-request** results: an out-of-range pair
    /// yields an `Err` slot and every other pair is answered normally —
    /// the partial-failure semantics of `qbs_core::QueryEngine::submit`,
    /// available uniformly across baselines for the differential harness.
    fn try_query_batch(
        &self,
        pairs: &[(qbs_graph::VertexId, qbs_graph::VertexId)],
    ) -> Vec<Result<qbs_graph::PathGraph, SpgQueryError>> {
        pairs.iter().map(|&(u, v)| self.try_query(u, v)).collect()
    }

    /// A short human-readable name for reports ("QbS", "PPL", "Bi-BFS", …).
    fn name(&self) -> &'static str;

    /// Bytes of precomputed index state (0 for search-only methods);
    /// reported in Table 3.
    fn index_size_bytes(&self) -> usize {
        0
    }
}
