//! ParentPPL: Pruned Path Labelling with parent sets (§3.2).
//!
//! ParentPPL extends every PPL label entry `(r, δ_vr)` with the set of
//! *parent* vertices of `v` — the neighbours of `v` that are one hop closer
//! to the landmark `r` — following the extension of PLL that Akiba et al.
//! describe for path queries. Because the shortest-path-graph problem needs
//! *all* shortest paths, all parents are stored rather than one, which is
//! exactly why the paper reports that ParentPPL's space blows up to
//! `O(|V||E|)` and fails to build on larger graphs (Table 2/3).
//!
//! Parent sets are derived from the exact label distances after the PPL
//! construction (`w` is a parent of `v` towards `r` iff `d(w, r) = d(v, r) - 1`,
//! evaluated through the 2-hop distance cover), so reconstruction by
//! parent-following is exact even though the underlying BFSs are pruned.
//! When a sub-query reaches a vertex whose label no longer carries the
//! relevant landmark (possible under pruning), the query falls back to the
//! PPL decomposition for that sub-pair, keeping answers exact.

use std::collections::HashSet;

use qbs_graph::{Distance, Graph, PathGraph, VertexId, INFINITE_DISTANCE};

use crate::ppl::{BuildAborted, BuildLimits, Ppl};
use crate::SpgEngine;

/// A label entry extended with the parent set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParentEntry {
    /// The landmark.
    pub landmark: VertexId,
    /// Exact distance to the landmark.
    pub distance: Distance,
    /// Every neighbour of the labelled vertex lying one hop closer to the
    /// landmark.
    pub parents: Vec<VertexId>,
}

/// A ParentPPL index.
#[derive(Clone, Debug)]
pub struct ParentPpl {
    ppl: Ppl,
    /// `entries[v]` sorted by landmark id, mirroring the PPL label of `v`.
    entries: Vec<Vec<ParentEntry>>,
}

impl ParentPpl {
    /// Builds the index with unconstrained resources.
    pub fn build(graph: Graph) -> Self {
        Self::build_with_limits(graph, BuildLimits::default())
            .expect("unlimited build cannot abort")
    }

    /// Builds the index, aborting if the limits are exceeded. The limit on
    /// label entries also applies to the total number of stored parents
    /// (the dominating memory cost of ParentPPL).
    pub fn build_with_limits(graph: Graph, limits: BuildLimits) -> Result<Self, BuildAborted> {
        let started = std::time::Instant::now();
        let ppl = Ppl::build_with_limits(graph, limits)?;
        let graph = ppl.graph();
        let n = graph.num_vertices();
        let mut entries: Vec<Vec<ParentEntry>> = Vec::with_capacity(n);
        let mut total_parents = 0usize;

        for v in graph.vertices() {
            let mut per_vertex = Vec::with_capacity(ppl.label(v).len());
            for &(landmark, distance) in ppl.label(v) {
                let mut parents = Vec::new();
                if distance > 0 {
                    for &w in graph.neighbors(v) {
                        if ppl.distance(w, landmark) + 1 == distance {
                            parents.push(w);
                        }
                    }
                }
                total_parents += parents.len();
                if total_parents > limits.max_label_entries {
                    return Err(BuildAborted::TooManyLabels);
                }
                per_vertex.push(ParentEntry {
                    landmark,
                    distance,
                    parents,
                });
            }
            entries.push(per_vertex);
            if started.elapsed() > limits.max_duration {
                return Err(BuildAborted::TimedOut);
            }
        }
        Ok(ParentPpl { ppl, entries })
    }

    /// The underlying PPL index (labels without parents).
    pub fn ppl(&self) -> &Ppl {
        &self.ppl
    }

    /// The extended label of a vertex.
    pub fn entries(&self, v: VertexId) -> &[ParentEntry] {
        &self.entries[v as usize]
    }

    /// Exact distance between two vertices via the label intersection.
    pub fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        self.ppl.distance(u, v)
    }

    /// Total number of stored parent pointers.
    pub fn total_parent_pointers(&self) -> usize {
        self.entries
            .iter()
            .map(|l| l.iter().map(|e| e.parents.len()).sum::<usize>())
            .sum()
    }

    /// Labelling size in bytes: the PPL labelling plus 32 bits per stored
    /// parent (§6.1 accounting).
    pub fn labelling_size_bytes(&self) -> usize {
        self.ppl.labelling_size_bytes() + self.total_parent_pointers() * 4
    }

    /// Answers `SPG(source, target)`.
    pub fn shortest_path_graph(&self, source: VertexId, target: VertexId) -> PathGraph {
        let n = self.ppl.graph().num_vertices();
        if source as usize >= n || target as usize >= n {
            return PathGraph::unreachable(source, target);
        }
        if source == target {
            return PathGraph::trivial(source);
        }
        let total = self.distance(source, target);
        if total == INFINITE_DISTANCE {
            return PathGraph::unreachable(source, target);
        }
        let mut edges = Vec::new();
        let mut solved = HashSet::new();
        self.solve_pair(source, target, total, &mut edges, &mut solved);
        PathGraph::from_edges(source, target, total, edges)
    }

    /// Decomposes `SPG(u, v)` like PPL, but resolves vertex-to-landmark
    /// sub-pairs by parent-following when the parent information is present.
    fn solve_pair(
        &self,
        u: VertexId,
        v: VertexId,
        dist: Distance,
        edges: &mut Vec<(VertexId, VertexId)>,
        solved: &mut HashSet<(VertexId, VertexId)>,
    ) {
        if dist == 0 || u == v {
            return;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !solved.insert(key) {
            return;
        }
        if dist == 1 {
            edges.push((u, v));
            return;
        }
        // If one endpoint is a landmark recorded in the other's label with
        // the optimal distance, walk the parent pointers directly.
        if self.walk_parents(u, v, dist, edges, solved)
            || self.walk_parents(v, u, dist, edges, solved)
        {
            return;
        }
        // Otherwise decompose through interior common landmarks, as in PPL.
        let (du_label, dv_label) = (self.entries(u), self.entries(v));
        for eu in du_label {
            if eu.landmark == u || eu.landmark == v {
                continue;
            }
            if let Some(ev) = dv_label.iter().find(|e| e.landmark == eu.landmark) {
                if eu.distance + ev.distance == dist {
                    self.solve_pair(u, eu.landmark, eu.distance, edges, solved);
                    self.solve_pair(v, eu.landmark, ev.distance, edges, solved);
                }
            }
        }
    }

    /// If `landmark` appears in `L(x)` at exactly `dist`, reconstructs all
    /// shortest paths from `x` to `landmark` by following parent pointers
    /// and returns `true`; returns `false` when the label entry is absent
    /// (the caller then falls back to the decomposition).
    fn walk_parents(
        &self,
        x: VertexId,
        landmark: VertexId,
        dist: Distance,
        edges: &mut Vec<(VertexId, VertexId)>,
        solved: &mut HashSet<(VertexId, VertexId)>,
    ) -> bool {
        let Some(entry) = self.entries(x).iter().find(|e| e.landmark == landmark) else {
            return false;
        };
        if entry.distance != dist {
            return false;
        }
        for &p in &entry.parents {
            edges.push((x, p));
            if p != landmark {
                self.solve_pair(p, landmark, dist - 1, edges, solved);
            }
        }
        true
    }
}

impl SpgEngine for ParentPpl {
    fn query(&self, source: VertexId, target: VertexId) -> PathGraph {
        self.shortest_path_graph(source, target)
    }

    fn num_vertices(&self) -> usize {
        self.ppl.graph().num_vertices()
    }

    fn name(&self) -> &'static str {
        "ParentPPL"
    }

    fn index_size_bytes(&self) -> usize {
        self.labelling_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_spg;
    use qbs_graph::fixtures::{figure1b_graph, figure3_graph, figure4_graph};
    use qbs_graph::GraphBuilder;

    fn assert_matches_ground_truth(graph: &Graph) {
        let index = ParentPpl::build(graph.clone());
        for u in graph.vertices() {
            for v in graph.vertices() {
                let expected = bfs_spg::compute(graph, u, v);
                let got = index.shortest_path_graph(u, v);
                assert_eq!(got, expected, "query ({u},{v})");
            }
        }
    }

    #[test]
    fn all_pairs_match_ground_truth_on_paper_figures() {
        assert_matches_ground_truth(&figure3_graph());
        assert_matches_ground_truth(&figure4_graph());
        assert_matches_ground_truth(&figure1b_graph());
    }

    #[test]
    fn parent_sets_point_one_hop_closer_to_the_landmark() {
        let g = figure4_graph();
        let index = ParentPpl::build(g.clone());
        for v in g.vertices() {
            for entry in index.entries(v) {
                for &p in &entry.parents {
                    assert!(g.has_edge(v, p), "parent {p} of {v} is not a neighbour");
                    assert_eq!(
                        index.distance(p, entry.landmark) + 1,
                        entry.distance,
                        "parent {p} of {v} towards {}",
                        entry.landmark
                    );
                }
            }
        }
    }

    #[test]
    fn uses_more_space_than_plain_ppl() {
        let g = figure4_graph();
        let index = ParentPpl::build(g.clone());
        assert!(index.labelling_size_bytes() > index.ppl().labelling_size_bytes());
        assert!(index.total_parent_pointers() > 0);
    }

    #[test]
    fn build_limits_propagate() {
        let g = figure4_graph();
        let err = ParentPpl::build_with_limits(
            g,
            BuildLimits {
                max_label_entries: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, BuildAborted::TooManyLabels);
    }

    #[test]
    fn trivial_and_unreachable_queries() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)]);
        b.reserve_vertices(4);
        let index = ParentPpl::build(b.build());
        assert_eq!(index.shortest_path_graph(1, 1).distance(), 0);
        assert!(!index.shortest_path_graph(0, 2).is_reachable());
        assert!(!index.shortest_path_graph(0, 42).is_reachable());
    }

    #[test]
    fn engine_trait_reports_name_and_size() {
        let index = ParentPpl::build(figure3_graph());
        assert_eq!(index.name(), "ParentPPL");
        assert!(index.index_size_bytes() > 0);
        assert_eq!(index.query(3, 7).distance(), 4);
    }
}
