//! Pruned Path Labelling (PPL), §3.2 of the paper.
//!
//! PPL adapts Pruned Landmark Labelling (Akiba et al., SIGMOD 2013) to the
//! shortest-path-graph problem: one BFS per vertex in descending-degree
//! order, keeping the label `(r, d_G(r, u))` in `L(u)` whenever **some
//! shortest path between `r` and `u` has no interior vertex ranked above
//! `r`**. Unlike PLL, a label cannot be dropped merely because an earlier
//! landmark *ties* the distance — that is exactly the relaxation the paper
//! introduces (Algorithm 1, lines 9-10) so the labelling remains a 2-hop
//! *path* cover (Definition 3.2): for every shortest path of length ≥ 2 its
//! highest-ranked interior vertex appears in both endpoint labels, which is
//! what makes the recursive query below exact. Construction costs
//! `O(|V||E|)` time, matching the complexity the paper states for PPL.
//!
//! Queries are answered by the recursive common-landmark decomposition of
//! §3.2: find the landmarks that lie strictly inside shortest paths, then
//! recurse on the two sub-pairs. As the paper discusses (Example 3.4), this
//! revisits labels and edges repeatedly, which is precisely the inefficiency
//! QbS is designed to remove — the implementation keeps a per-query memo of
//! solved sub-pairs so that the asymptotic behaviour matches the paper's
//! description without pathological exponential blow-ups.

use std::collections::HashSet;

use qbs_graph::{Distance, Graph, PathGraph, VertexId, INFINITE_DISTANCE};

use crate::SpgEngine;

/// One label entry: a landmark and the exact distance to it.
pub type LabelEntry = (VertexId, Distance);

/// Resource limits for label construction, used by the experiment harness
/// to emulate the paper's DNF (> 24 h) and OOE (out of memory) outcomes at
/// laptop scale.
#[derive(Clone, Copy, Debug)]
pub struct BuildLimits {
    /// Maximum total number of label entries before aborting.
    pub max_label_entries: usize,
    /// Maximum wall-clock construction time before aborting.
    pub max_duration: std::time::Duration,
}

impl Default for BuildLimits {
    fn default() -> Self {
        BuildLimits {
            max_label_entries: usize::MAX,
            max_duration: std::time::Duration::from_secs(u64::MAX / 4),
        }
    }
}

/// Why a limited build gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildAborted {
    /// The label count exceeded [`BuildLimits::max_label_entries`]
    /// (the paper's "OOE", out of memory).
    TooManyLabels,
    /// Construction exceeded [`BuildLimits::max_duration`]
    /// (the paper's "DNF", did not finish).
    TimedOut,
}

impl std::fmt::Display for BuildAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildAborted::TooManyLabels => write!(f, "label size limit exceeded (OOE)"),
            BuildAborted::TimedOut => write!(f, "construction time limit exceeded (DNF)"),
        }
    }
}

impl std::error::Error for BuildAborted {}

/// A Pruned Path Labelling index.
#[derive(Clone, Debug)]
pub struct Ppl {
    graph: Graph,
    /// `labels[v]` sorted by landmark id.
    labels: Vec<Vec<LabelEntry>>,
    /// Vertices in the landmark order used during construction.
    order: Vec<VertexId>,
}

impl Ppl {
    /// Builds the index with unconstrained resources.
    pub fn build(graph: Graph) -> Self {
        Self::build_with_limits(graph, BuildLimits::default())
            .expect("unlimited build cannot abort")
    }

    /// Builds the index, aborting if the limits are exceeded.
    pub fn build_with_limits(graph: Graph, limits: BuildLimits) -> Result<Self, BuildAborted> {
        let n = graph.num_vertices();
        let order = graph.top_k_by_degree(n);
        // rank_of[v] = position of v in the landmark order (0 = highest).
        let mut rank_of = vec![usize::MAX; n];
        for (k, &v) in order.iter().enumerate() {
            rank_of[v as usize] = k;
        }

        let mut labels: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        let mut total_entries = 0usize;
        let started = std::time::Instant::now();

        // Scratch reused across BFSs.
        let mut depth: Vec<Distance> = vec![INFINITE_DISTANCE; n];
        // `covered[u]`: some shortest root-u path has no interior vertex
        // ranked above the root — the label-keeping rule.
        let mut covered: Vec<bool> = vec![false; n];
        let mut queue: Vec<VertexId> = Vec::with_capacity(n);

        for (k, &root) in order.iter().enumerate() {
            if started.elapsed() > limits.max_duration {
                return Err(BuildAborted::TimedOut);
            }

            queue.clear();
            queue.push(root);
            depth[root as usize] = 0;
            covered[root as usize] = true;
            labels[root as usize].push((root, 0));
            total_entries += 1;
            let mut head = 0;

            while head < queue.len() {
                let u = queue[head];
                head += 1;
                let du = depth[u as usize];
                if u != root {
                    // The path-cover DP: a parent on a shortest path from the
                    // root can extend its path to u iff it is the root itself
                    // or an interior vertex ranked below the root.
                    let mut ok = false;
                    for &w in graph.neighbors(u) {
                        if depth[w as usize] != INFINITE_DISTANCE
                            && depth[w as usize] + 1 == du
                            && covered[w as usize]
                            && (w == root || rank_of[w as usize] > k)
                        {
                            ok = true;
                            break;
                        }
                    }
                    covered[u as usize] = ok;
                    if ok {
                        labels[u as usize].push((root, du));
                        total_entries += 1;
                        if total_entries > limits.max_label_entries {
                            return Err(BuildAborted::TooManyLabels);
                        }
                    }
                }
                for &v in graph.neighbors(u) {
                    if depth[v as usize] == INFINITE_DISTANCE {
                        depth[v as usize] = du + 1;
                        queue.push(v);
                    }
                }
            }

            // Reset scratch along the visited region only.
            for &v in &queue {
                depth[v as usize] = INFINITE_DISTANCE;
                covered[v as usize] = false;
            }
        }

        // Sort each label by landmark id so intersections can merge-scan.
        for l in &mut labels {
            l.sort_unstable_by_key(|&(r, _)| r);
        }
        Ok(Ppl {
            graph,
            labels,
            order,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The label of a vertex (sorted by landmark id).
    pub fn label(&self, v: VertexId) -> &[LabelEntry] {
        &self.labels[v as usize]
    }

    /// The landmark order used during construction (descending degree).
    pub fn landmark_order(&self) -> &[VertexId] {
        &self.order
    }

    /// Total number of label entries, `size(L) = Σ_v |L(v)|`.
    pub fn total_label_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Labelling size in bytes using the paper's accounting (§6.1): 32 bits
    /// per landmark id plus 8 bits per distance.
    pub fn labelling_size_bytes(&self) -> usize {
        self.total_label_entries() * 5
    }

    /// Label-based distance between two vertices (2-hop distance cover
    /// lookup). Exact for any pair because every vertex is eventually used
    /// as a landmark.
    pub fn distance(&self, u: VertexId, v: VertexId) -> Distance {
        if u == v {
            return 0;
        }
        intersect_min(&self.labels[u as usize], &self.labels[v as usize]).0
    }

    /// Answers `SPG(source, target)` with the recursive common-landmark
    /// decomposition of §3.2.
    pub fn shortest_path_graph(&self, source: VertexId, target: VertexId) -> PathGraph {
        let n = self.graph.num_vertices();
        if source as usize >= n || target as usize >= n {
            return PathGraph::unreachable(source, target);
        }
        if source == target {
            return PathGraph::trivial(source);
        }
        let total = self.distance(source, target);
        if total == INFINITE_DISTANCE {
            return PathGraph::unreachable(source, target);
        }
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        let mut solved: HashSet<(VertexId, VertexId)> = HashSet::new();
        self.solve_pair(source, target, total, &mut edges, &mut solved);
        PathGraph::from_edges(source, target, total, edges)
    }

    /// Recursive decomposition: adds every edge of `SPG(u, v)` to `edges`.
    fn solve_pair(
        &self,
        u: VertexId,
        v: VertexId,
        dist: Distance,
        edges: &mut Vec<(VertexId, VertexId)>,
        solved: &mut HashSet<(VertexId, VertexId)>,
    ) {
        if dist == 0 || u == v {
            return;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !solved.insert(key) {
            return; // already expanded — the paper's "redundant searches"
        }
        if dist == 1 {
            edges.push((u, v));
            return;
        }
        // Interior landmarks on shortest paths: common entries minimising
        // δ_ur + δ_vr, excluding the endpoints themselves.
        let minimizers =
            intersect_minimizers(&self.labels[u as usize], &self.labels[v as usize], dist);
        for (r, dur, dvr) in minimizers {
            if r == u || r == v {
                continue;
            }
            self.solve_pair(u, r, dur, edges, solved);
            self.solve_pair(v, r, dvr, edges, solved);
        }
    }
}

impl SpgEngine for Ppl {
    fn query(&self, source: VertexId, target: VertexId) -> PathGraph {
        self.shortest_path_graph(source, target)
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn name(&self) -> &'static str {
        "PPL"
    }

    fn index_size_bytes(&self) -> usize {
        self.labelling_size_bytes()
    }
}

/// Minimum `δ_ur + δ_vr` over the common landmarks of two sorted labels,
/// together with the landmark achieving it (smallest id on ties).
fn intersect_min(a: &[LabelEntry], b: &[LabelEntry]) -> (Distance, Option<VertexId>) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = INFINITE_DISTANCE;
    let mut arg = None;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a[i].1 + b[j].1;
                if d < best {
                    best = d;
                    arg = Some(a[i].0);
                }
                i += 1;
                j += 1;
            }
        }
    }
    (best, arg)
}

/// All common landmarks achieving the given optimal distance, with their
/// per-side distances.
fn intersect_minimizers(
    a: &[LabelEntry],
    b: &[LabelEntry],
    optimal: Distance,
) -> Vec<(VertexId, Distance, Distance)> {
    let (mut i, mut j) = (0usize, 0usize);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i].1 + b[j].1 == optimal {
                    out.push((a[i].0, a[i].1, b[j].1));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_spg;
    use qbs_graph::fixtures::{figure3_graph, figure4_graph};
    use qbs_graph::GraphBuilder;

    fn assert_matches_ground_truth(graph: &Graph) {
        let ppl = Ppl::build(graph.clone());
        for u in graph.vertices() {
            for v in graph.vertices() {
                let expected = bfs_spg::compute(graph, u, v);
                let got = ppl.shortest_path_graph(u, v);
                assert_eq!(got, expected, "query ({u},{v})");
            }
        }
    }

    #[test]
    fn distances_are_exact_on_figure3() {
        let g = figure3_graph();
        let ppl = Ppl::build(g.clone());
        for u in g.vertices() {
            let bfs = qbs_graph::traversal::bfs_distances(&g, u);
            for v in g.vertices() {
                assert_eq!(ppl.distance(u, v), bfs[v as usize], "d({u},{v})");
            }
        }
    }

    #[test]
    fn all_pairs_match_ground_truth_on_paper_figures() {
        assert_matches_ground_truth(&figure3_graph());
        assert_matches_ground_truth(&figure4_graph());
    }

    #[test]
    fn example_3_4_finds_the_full_answer() {
        // §3 Example 3.4: SPG(3, 7) must include vertices 2, 4 and 5 that a
        // plain 2-hop distance cover misses.
        let g = figure3_graph();
        let ppl = Ppl::build(g);
        let spg = ppl.shortest_path_graph(3, 7);
        for v in [1u32, 2, 4, 5] {
            assert!(spg.contains_vertex(v), "missing vertex {v}");
        }
        assert_eq!(spg.distance(), 4);
    }

    #[test]
    fn pruning_reduces_label_count_versus_naive() {
        let g = figure4_graph();
        let ppl = Ppl::build(g.clone());
        let naive = g.num_vertices() * g.num_vertices();
        assert!(ppl.total_label_entries() < naive);
        assert!(ppl.total_label_entries() > 0);
        assert_eq!(ppl.labelling_size_bytes(), ppl.total_label_entries() * 5);
    }

    #[test]
    fn landmark_order_is_by_descending_degree() {
        let g = figure4_graph();
        let ppl = Ppl::build(g.clone());
        let order = ppl.landmark_order();
        assert_eq!(order.len(), g.num_vertices());
        for w in order.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    #[test]
    fn disconnected_and_trivial_queries() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)]);
        b.reserve_vertices(4);
        let g = b.build();
        let ppl = Ppl::build(g);
        assert!(!ppl.shortest_path_graph(0, 3).is_reachable());
        assert_eq!(ppl.shortest_path_graph(2, 2).distance(), 0);
        assert_eq!(ppl.distance(0, 3), INFINITE_DISTANCE);
        assert!(!ppl.shortest_path_graph(0, 99).is_reachable());
    }

    #[test]
    fn build_limits_abort_when_exceeded() {
        let g = figure4_graph();
        let err = Ppl::build_with_limits(
            g.clone(),
            BuildLimits {
                max_label_entries: 3,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, BuildAborted::TooManyLabels);
        assert!(err.to_string().contains("OOE"));

        let err = Ppl::build_with_limits(
            g,
            BuildLimits {
                max_duration: std::time::Duration::ZERO,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, BuildAborted::TimedOut);
        assert!(err.to_string().contains("DNF"));
    }

    #[test]
    fn engine_trait_reports_name_and_size() {
        let ppl = Ppl::build(figure3_graph());
        assert_eq!(ppl.name(), "PPL");
        assert!(ppl.index_size_bytes() > 0);
        assert_eq!(ppl.query(3, 7), ppl.shortest_path_graph(3, 7));
        assert!(!ppl.label(7).is_empty());
        assert_eq!(ppl.graph().num_vertices(), 8);
    }
}
