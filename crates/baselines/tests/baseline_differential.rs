//! Differential tests of every baseline against the ground-truth oracle on
//! generated graphs, plus the 2-hop path-cover property of PPL labels
//! (Definition 3.2) checked directly.

use qbs_baselines::{BiBfs, GroundTruth, ParentPpl, Ppl, SpgEngine};
use qbs_gen::prelude::*;
use qbs_gen::structured;
use qbs_graph::traversal::bfs_distances;
use qbs_graph::Graph;

fn check_engines(graph: &Graph, queries: usize, seed: u64, tag: &str) {
    let truth = GroundTruth::new(graph.clone());
    let bibfs = BiBfs::new(graph.clone());
    let ppl = Ppl::build(graph.clone());
    let parent = ParentPpl::build(graph.clone());
    let workload = QueryWorkload::sample(graph, queries, seed);
    for &(u, v) in workload.pairs() {
        let expected = truth.query(u, v);
        assert_eq!(bibfs.query(u, v), expected, "{tag}: Bi-BFS ({u},{v})");
        assert_eq!(ppl.query(u, v), expected, "{tag}: PPL ({u},{v})");
        assert_eq!(parent.query(u, v), expected, "{tag}: ParentPPL ({u},{v})");
    }
}

#[test]
fn baselines_are_exact_on_scale_free_graphs() {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 400,
        edges_per_vertex: 3,
        seed: 13,
    });
    check_engines(&graph, 40, 1, "barabasi-albert");
}

#[test]
fn baselines_are_exact_on_power_law_and_community_graphs() {
    let power = power_law::generate(&PowerLawConfig {
        vertices: 350,
        edges: 1200,
        exponent: 2.2,
        seed: 4,
    });
    check_engines(&power, 30, 2, "power-law");

    let community = community::generate(&PlantedPartitionConfig {
        communities: 6,
        community_size: 60,
        intra_degree: 6.0,
        inter_degree: 1.0,
        seed: 8,
    });
    check_engines(&community, 30, 3, "planted-partition");
}

#[test]
fn baselines_are_exact_on_structured_graphs() {
    for (tag, graph) in [
        ("grid", structured::grid(10, 8)),
        ("hypercube", structured::hypercube(6)),
        ("barbell", structured::barbell(10, 4)),
        ("cycle", structured::cycle(41)),
    ] {
        check_engines(&graph, 25, 7, tag);
    }
}

/// Definition 3.2 checked directly: for every pair of vertices and every
/// shortest path of length ≥ 2 between them, some interior vertex appears in
/// both labels with exact distances. (Checked via the equivalent distance
/// condition over interior vertices: an interior vertex `w` on a shortest
/// path with `(w, δ_uw) ∈ L(u)` and `(w, δ_vw) ∈ L(v)` summing to `d(u,v)`.)
#[test]
fn ppl_labels_form_a_two_hop_path_cover_on_a_random_graph() {
    let graph = erdos_renyi::generate(&ErdosRenyiConfig {
        vertices: 120,
        edges: 300,
        seed: 6,
    });
    let ppl = Ppl::build(graph.clone());

    // Precompute all BFS distances (120 sources is cheap).
    let all_dist: Vec<Vec<u32>> = graph.vertices().map(|s| bfs_distances(&graph, s)).collect();

    let label_distance = |x: u32, r: u32| -> Option<u32> {
        ppl.label(x).iter().find(|&&(l, _)| l == r).map(|&(_, d)| d)
    };

    for u in graph.vertices() {
        for v in graph.vertices() {
            let d = all_dist[u as usize][v as usize];
            if u == v || d < 2 || d == qbs_graph::INFINITE_DISTANCE {
                continue;
            }
            // Every shortest path must be witnessed: check per *edge* on the
            // shortest-path DAG that some interior landmark covers a path
            // through that edge. A sufficient and easily checkable condition
            // for the recursive query's completeness is that for every
            // vertex w interior to some shortest u-v path there is a
            // minimiser landmark r (interior, in both labels) with
            // d(u,r) + d(r,v) = d — we check the global existence here.
            let has_interior_minimiser = graph.vertices().any(|r| {
                let dur = all_dist[u as usize][r as usize];
                let dvr = all_dist[v as usize][r as usize];
                r != u
                    && r != v
                    && dur != qbs_graph::INFINITE_DISTANCE
                    && dvr != qbs_graph::INFINITE_DISTANCE
                    && dur + dvr == d
                    && label_distance(u, r) == Some(dur)
                    && label_distance(v, r) == Some(dvr)
            });
            assert!(
                has_interior_minimiser,
                "pair ({u},{v}) at distance {d} has no covered interior landmark"
            );
        }
    }
}

/// The labelling sizes follow the paper's ordering: PPL labels are much
/// larger than the graph-independent QbS budget would be, and ParentPPL is
/// strictly larger than PPL.
#[test]
fn labelling_size_ordering() {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 500,
        edges_per_vertex: 3,
        seed: 3,
    });
    let ppl = Ppl::build(graph.clone());
    let parent = ParentPpl::build(graph.clone());
    assert!(ppl.total_label_entries() >= graph.num_vertices());
    assert!(parent.labelling_size_bytes() > ppl.labelling_size_bytes());
    // The per-vertex label is far smaller than |V| on hub-dominated graphs —
    // the whole point of pruning.
    let avg_label = ppl.total_label_entries() as f64 / graph.num_vertices() as f64;
    assert!(
        avg_label < graph.num_vertices() as f64 / 4.0,
        "avg label {avg_label}"
    );
}

/// The checked batch API isolates per-request failures uniformly across
/// every baseline: a poisoned pair mid-batch yields one `Err` slot while
/// the surrounding pairs are answered exactly as before.
#[test]
fn try_query_batch_isolates_poisoned_pairs() {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 200,
        edges_per_vertex: 3,
        seed: 99,
    });
    let n = graph.num_vertices() as u32;
    let truth = GroundTruth::new(graph.clone());
    let engines: Vec<Box<dyn SpgEngine>> = vec![
        Box::new(GroundTruth::new(graph.clone())),
        Box::new(BiBfs::new(graph.clone())),
        Box::new(Ppl::build(graph.clone())),
        Box::new(ParentPpl::build(graph.clone())),
    ];
    let batch = [(0u32, 5u32), (3, n), (7, 9), (n + 4, 1), (2, 8)];
    for engine in &engines {
        assert_eq!(engine.num_vertices(), graph.num_vertices());
        let outcomes = engine.try_query_batch(&batch);
        assert_eq!(outcomes.len(), batch.len());
        for (slot, (&(u, v), outcome)) in batch.iter().zip(&outcomes).enumerate() {
            if u >= n || v >= n {
                let err = outcome.as_ref().expect_err("poisoned slot fails");
                assert_eq!(err.num_vertices, graph.num_vertices());
                assert_eq!(err.vertex, if u >= n { u } else { v });
                assert!(err.to_string().contains("out of range"));
            } else {
                let answer = outcome.as_ref().unwrap_or_else(|e| {
                    panic!("{}: slot {slot} unexpectedly failed: {e}", engine.name())
                });
                assert_eq!(answer, &truth.query(u, v), "{}: ({u},{v})", engine.name());
            }
        }
    }
}
