//! Ablation: how much the sketch-guided search and the landmark selection
//! strategy contribute to query performance.
//!
//! * `guided` — the full QbS pipeline (sketch + guided search).
//! * `unguided` — Bi-BFS on the full graph (no labelling, no sketch): the
//!   §6.5 counterfactual.
//! * `random_landmarks` — QbS with uniformly random landmarks instead of the
//!   highest-degree ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_baselines::{BiBfs, SpgEngine};
use qbs_core::{LandmarkStrategy, QbsConfig, QbsIndex};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_gen::QueryWorkload;

fn bench_ablation(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let graph = catalog.get(DatasetId::Baidu).unwrap().generate(Scale::Tiny);
    let workload = QueryWorkload::sample_connected(&graph, 64, 99);
    let pairs = workload.pairs().to_vec();

    let guided = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(20));
    let random = QbsIndex::build(
        graph.clone(),
        QbsConfig {
            landmarks: LandmarkStrategy::Random { count: 20, seed: 1 },
            ..QbsConfig::default()
        },
    );
    let bibfs = BiBfs::new(graph);

    let mut group = c.benchmark_group("ablation_guided_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200));

    group.bench_with_input(BenchmarkId::new("guided", "BA"), &pairs, |b, pairs| {
        b.iter(|| {
            for &(u, v) in pairs {
                criterion::black_box(guided.query(u, v).expect("in range"));
            }
        });
    });
    group.bench_with_input(
        BenchmarkId::new("random_landmarks", "BA"),
        &pairs,
        |b, pairs| {
            b.iter(|| {
                for &(u, v) in pairs {
                    criterion::black_box(random.query(u, v).expect("in range"));
                }
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("unguided_bibfs", "BA"),
        &pairs,
        |b, pairs| {
            b.iter(|| {
                for &(u, v) in pairs {
                    criterion::black_box(bibfs.query(u, v));
                }
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
