//! Batch execution planner benchmark: batched distance throughput with
//! the planner on vs off, on uniform and Zipf-skewed 256-query batches
//! over the acceptance-regime graph (120k vertices), across all three
//! backends (owned, mmap view, compact).
//!
//! The planner's measurement contract:
//!
//! * **skew pays** — on the Zipf batch (exponent 1.5: hot sources repeat,
//!   whole pairs duplicate) the planner must clear **≥1.5×** the
//!   planner-off throughput on every backend;
//! * **outcomes are bit-identical** — planner on/off and all three
//!   backends agree slot for slot, asserted on every measured batch;
//! * **uniform traffic is not pessimised** — the uniform sweep is
//!   printed so the no-redundancy regime is tracked per PR (coalescing
//!   finds nothing; the planner must stay within noise of the fan-out).
//!
//! `QBS_BENCH_NO_ASSERT=1` downgrades the ratio assertion to a warning
//! for heavily-shared machines where wall-clock ratios are untrustworthy.
//!
//! Run with `cargo bench --bench batch_planner`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use qbs_core::serialize::{self, MapMode};
use qbs_core::store::IndexStore;
use qbs_core::{CompactStore, QbsConfig, QbsIndex, QueryEngine, QueryRequest};
use qbs_gen::prelude::*;

/// Vertex count of the benchmark graph (the acceptance regime: ≥ 100k).
const VERTICES: usize = 120_000;
const LANDMARKS: usize = 20;
/// Requests per batch — a realistic serving batch.
const BATCH: usize = 256;
/// Batches per measured round.
const ROUNDS: usize = 12;
const THREADS: usize = 4;
/// Zipf exponent of the skewed workload: the hot-key serving regime the
/// planner targets — the head rank absorbs ≈51% of draws, so a
/// 256-query batch repeats sources (and whole pairs) many times over.
const ZIPF_EXPONENT: f64 = 1.75;

/// Best-of-3 requests/sec for one engine over the batch set.
fn measure<S: IndexStore>(engine: &QueryEngine<'_, S>, batches: &[Vec<QueryRequest>]) -> f64 {
    for batch in batches {
        engine.submit(batch); // warm the workspace pool and page cache
    }
    let total = (ROUNDS * batches.len() * BATCH) as f64;
    let mut best = f64::MIN;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            for batch in batches {
                criterion::black_box(engine.submit(batch));
            }
        }
        best = best.max(total / t0.elapsed().as_secs_f64());
    }
    best
}

fn distance_batches(pairs: &[(u32, u32)]) -> Vec<Vec<QueryRequest>> {
    pairs
        .chunks(BATCH)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&(u, v)| QueryRequest::distance(u, v))
                .collect()
        })
        .collect()
}

struct BackendRow {
    name: &'static str,
    uniform_off: f64,
    uniform_on: f64,
    zipf_off: f64,
    zipf_on: f64,
}

fn run_backend<S: IndexStore>(
    name: &'static str,
    store: &S,
    uniform: &[Vec<QueryRequest>],
    zipf: &[Vec<QueryRequest>],
    reference: &[Vec<qbs_core::QueryOutcome>],
) -> BackendRow {
    let planned = QueryEngine::with_threads(store, THREADS).expect("engine");
    let vanilla = QueryEngine::with_threads(store, THREADS)
        .expect("engine")
        .with_planner(false);

    // Bit-identity first: planner on/off and the owned reference agree on
    // every measured Zipf batch, slot for slot.
    for (batch, expected) in zipf.iter().zip(reference) {
        let on = planned.submit(batch);
        assert_eq!(&on, expected, "{name}: planner-on diverged from reference");
        assert_eq!(on, vanilla.submit(batch), "{name}: planner on/off diverged");
    }

    BackendRow {
        name,
        uniform_off: measure(&vanilla, uniform),
        uniform_on: measure(&planned, uniform),
        zipf_off: measure(&vanilla, zipf),
        zipf_on: measure(&planned, zipf),
    }
}

fn bench_batch_planner(c: &mut Criterion) {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: VERTICES,
        edges_per_vertex: 4,
        seed: 2021,
    });
    let uniform = distance_batches(QueryWorkload::sample(&graph, BATCH * 4, 77).pairs());
    let zipf =
        distance_batches(QueryWorkload::sample_zipf(&graph, BATCH * 4, 77, ZIPF_EXPONENT).pairs());
    let owned = QbsIndex::build(graph, QbsConfig::with_landmark_count(LANDMARKS));

    // Owned reference outcomes for the cross-backend bit-identity check.
    let reference: Vec<_> = {
        let engine = QueryEngine::with_threads(&owned, THREADS).expect("engine");
        zipf.iter().map(|batch| engine.submit(batch)).collect()
    };

    let dir = std::env::temp_dir().join(format!("qbs_bench_batch_planner_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("index.qbs2");
    serialize::save_to_file(&owned, &path).expect("save");
    let view = serialize::open_store_from_file(&path, MapMode::Mmap).expect("map");
    let compact = CompactStore::new(owned.as_compact_view().expect("compact view"));

    let rows = [
        run_backend("owned", &owned, &uniform, &zipf, &reference),
        run_backend("view", &view, &uniform, &zipf, &reference),
        run_backend("compact", &compact, &uniform, &zipf, &reference),
    ];

    println!(
        "batch planner over a {VERTICES}-vertex graph ({BATCH}-request distance batches, \
         {THREADS} workers, Zipf exponent {ZIPF_EXPONENT}):"
    );
    for row in &rows {
        println!(
            "\x20 {:<8} uniform {:>9.0} -> {:>9.0} req/s ({:.2}x)   \
             zipf {:>9.0} -> {:>9.0} req/s ({:.2}x)",
            row.name,
            row.uniform_off,
            row.uniform_on,
            row.uniform_on / row.uniform_off.max(f64::MIN_POSITIVE),
            row.zipf_off,
            row.zipf_on,
            row.zipf_on / row.zipf_off.max(f64::MIN_POSITIVE),
        );
    }

    // The acceptance tripwire: ≥1.5× on the skewed batch, every backend.
    for row in &rows {
        let ratio = row.zipf_on / row.zipf_off.max(f64::MIN_POSITIVE);
        if ratio < 1.5 {
            let msg = format!(
                "planner must clear 1.5x on the Zipf batch over the {} backend \
                 ({:.0} vs {:.0} req/s = {ratio:.2}x)",
                row.name, row.zipf_off, row.zipf_on
            );
            if std::env::var_os("QBS_BENCH_NO_ASSERT").is_some() {
                eprintln!("warning (QBS_BENCH_NO_ASSERT set): {msg}");
            } else {
                panic!("{msg}");
            }
        }
    }

    // Criterion group: one Zipf batch through the planner vs the fan-out.
    let planned = QueryEngine::with_threads(&owned, THREADS).expect("engine");
    let vanilla = QueryEngine::with_threads(&owned, THREADS)
        .expect("engine")
        .with_planner(false);
    let mut group = c.benchmark_group("batch_planner");
    group.bench_function("zipf_256_planner_on", |b| {
        b.iter(|| criterion::black_box(planned.submit(&zipf[0])))
    });
    group.bench_function("zipf_256_planner_off", |b| {
        b.iter(|| criterion::black_box(vanilla.submit(&zipf[0])))
    });
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_batch_planner);
criterion_main!(benches);
