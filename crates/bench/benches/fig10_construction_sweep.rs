//! Figure 10: labelling construction time versus the number of landmarks,
//! for both the sequential (QbS) and parallel (QbS-P) builders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_core::{labelling, parallel};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};

fn bench_construction_sweep(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let graph = catalog
        .get(DatasetId::Skitter)
        .unwrap()
        .generate(Scale::Tiny);
    let mut group = c.benchmark_group("fig10_construction_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200));

    for count in [10usize, 40, 100] {
        let landmarks = graph.top_k_by_degree(count);
        group.bench_with_input(
            BenchmarkId::new("sequential", count),
            &landmarks,
            |b, landmarks| {
                b.iter(|| criterion::black_box(labelling::build_sequential(&graph, landmarks)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", count),
            &landmarks,
            |b, landmarks| {
                b.iter(|| criterion::black_box(parallel::build_parallel(&graph, landmarks)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction_sweep);
criterion_main!(benches);
