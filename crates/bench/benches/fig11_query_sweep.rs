//! Figure 11: average query time versus the number of landmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_core::{QbsConfig, QbsIndex};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_gen::QueryWorkload;

fn bench_query_sweep(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let graph = catalog
        .get(DatasetId::WikiTalk)
        .unwrap()
        .generate(Scale::Tiny);
    let workload = QueryWorkload::sample_connected(&graph, 64, 2021);
    let pairs = workload.pairs().to_vec();
    let mut group = c.benchmark_group("fig11_query_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200));

    for landmarks in [20usize, 60, 100] {
        let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(landmarks));
        group.bench_with_input(
            BenchmarkId::new("query_batch", landmarks),
            &index,
            |b, index| {
                b.iter(|| {
                    for &(u, v) in &pairs {
                        criterion::black_box(index.query(u, v).expect("in range"));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_sweep);
criterion_main!(benches);
