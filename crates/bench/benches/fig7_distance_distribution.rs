//! Figure 7: building the distance distribution of a sampled query workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_gen::QueryWorkload;

fn bench_distance_distribution(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let mut group = c.benchmark_group("fig7_distance_distribution");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1000))
        .warm_up_time(Duration::from_millis(200));

    for id in [DatasetId::Douban, DatasetId::Friendster] {
        let graph = catalog.get(id).unwrap().generate(Scale::Tiny);
        let workload = QueryWorkload::sample_connected(&graph, 256, 7);
        group.bench_with_input(
            BenchmarkId::new("histogram", id.abbrev()),
            &(graph, workload),
            |b, (graph, workload)| {
                b.iter(|| criterion::black_box(workload.distance_histogram(graph)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distance_distribution);
criterion_main!(benches);
