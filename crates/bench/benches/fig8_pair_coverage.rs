//! Figure 8: pair-coverage classification cost at different landmark counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_core::coverage::classify_workload;
use qbs_core::{QbsConfig, QbsIndex};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_gen::QueryWorkload;

fn bench_pair_coverage(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let graph = catalog
        .get(DatasetId::Youtube)
        .unwrap()
        .generate(Scale::Tiny);
    let workload = QueryWorkload::sample_connected(&graph, 128, 2021);
    let mut group = c.benchmark_group("fig8_pair_coverage");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1000))
        .warm_up_time(Duration::from_millis(200));

    for landmarks in [20usize, 60, 100] {
        let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(landmarks));
        group.bench_with_input(
            BenchmarkId::new("classify", landmarks),
            &index,
            |b, index| {
                b.iter(|| criterion::black_box(classify_workload(index, workload.pairs())));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pair_coverage);
criterion_main!(benches);
