//! Figure 9: labelling size growth with the number of landmarks (the bench
//! measures build + accounting cost per |R|; the sizes themselves come from
//! `experiments fig9`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_core::{QbsConfig, QbsIndex};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};

fn bench_labelling_size_sweep(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let graph = catalog.get(DatasetId::Dblp).unwrap().generate(Scale::Tiny);
    let mut group = c.benchmark_group("fig9_labelling_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1000))
        .warm_up_time(Duration::from_millis(200));

    for landmarks in [20usize, 60, 100] {
        group.bench_with_input(BenchmarkId::new("build", landmarks), &landmarks, |b, &r| {
            b.iter(|| {
                let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(r));
                let stats = index.stats();
                criterion::black_box(stats.labelling_paper_bytes + stats.delta_bytes)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_labelling_size_sweep);
criterion_main!(benches);
