//! Index load-time benchmarks: the serving-restart path.
//!
//! A production QbS deployment builds its index once and reloads it on
//! every restart, shard spawn or worker scale-out, so load time is a
//! serving cost. This bench compares, on a ≥100k-vertex generated graph:
//!
//! * `load/v1_json` — the v1 path: JSON parse + full heap reconstruction;
//! * `load/v2_binary` — the v2 path: buffer copy + section validation +
//!   bulk materialisation (`IndexView::parse` + `QbsIndex::from_view`);
//! * `load/v2_view_only` — parsing/validating the zero-copy view (plus
//!   one buffer clone, isolated by `load/buffer_clone`);
//! * `load/v3_binary` — the compact path: varint decode + full heap
//!   materialisation (`CompactView::parse` + `QbsIndex::from_compact_view`);
//! * `load/v3_view_only` — parsing/validating the compact zero-copy view
//!   (same buffer-clone caveat);
//! * `build/from_scratch` — rebuilding the labelling, for scale.
//!
//! The PR acceptance bar is v2 ≥ 10× faster than v1 on this workload.
//!
//! Run with `cargo bench --bench index_load`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use qbs_core::format::{CompactView, IndexView, ViewBuf};
use qbs_core::{serialize, QbsConfig, QbsIndex};
use qbs_gen::prelude::*;

/// Vertex count of the benchmark graph (the acceptance regime: ≥ 100k).
const VERTICES: usize = 120_000;
const LANDMARKS: usize = 20;

fn bench_index_load(c: &mut Criterion) {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: VERTICES,
        edges_per_vertex: 4,
        seed: 2021,
    });
    let config = QbsConfig::with_landmark_count(LANDMARKS);
    let index = QbsIndex::build(graph.clone(), config.clone());
    let v1 = serialize::to_bytes(&index).expect("v1 serialise");
    let v2 = serialize::to_bytes_v2(&index).expect("v2 serialise");
    let v3 = serialize::to_bytes_v3(&index).expect("v3 serialise");
    println!(
        "index over {VERTICES} vertices / {} edges: v1 json = {} bytes, v2 binary = {} bytes, \
         v3 compact = {} bytes ({:.1}% saved vs v2)",
        graph.num_edges(),
        v1.len(),
        v2.len(),
        v3.len(),
        100.0 * (1.0 - v3.len() as f64 / v2.len() as f64)
    );

    let mut group = c.benchmark_group("index_load");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("load/v1_json", |b| {
        b.iter(|| serialize::from_bytes(criterion::black_box(&v1)).expect("v1 load"));
    });
    group.bench_function("load/v2_binary", |b| {
        b.iter(|| serialize::from_bytes_v2(criterion::black_box(&v2)).expect("v2 load"));
    });
    // `IndexView::parse` takes ownership of the buffer, so the timed loop
    // pays one buffer clone per iteration; `load/buffer_clone` isolates
    // that memcpy — subtract it from `v2_view_only` for the pure
    // parse+validate cost an mmap-backed server would pay.
    group.bench_function("load/v2_view_only", |b| {
        b.iter(|| {
            IndexView::parse(ViewBuf::Heap(criterion::black_box(&v2).clone())).expect("view")
        });
    });
    group.bench_function("load/buffer_clone", |b| {
        b.iter(|| criterion::black_box(&v2).clone());
    });
    group.bench_function("load/v3_binary", |b| {
        b.iter(|| serialize::from_bytes_v3(criterion::black_box(&v3)).expect("v3 load"));
    });
    group.bench_function("load/v3_view_only", |b| {
        b.iter(|| {
            CompactView::parse(ViewBuf::Heap(criterion::black_box(&v3).clone())).expect("view")
        });
    });
    group.bench_function("build/from_scratch", |b| {
        b.iter(|| QbsIndex::build(graph.clone(), config.clone()));
    });
    group.finish();
}

criterion_group!(benches, bench_index_load);
criterion_main!(benches);
