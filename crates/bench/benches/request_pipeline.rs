//! Request-pipeline benchmarks: per-mode throughput and answer-cache
//! warm/cold behaviour of `QueryEngine::submit`, with a drift tripwire
//! against fresh single-query answers.
//!
//! The redesign's acceptance bars on the 120k-vertex benchmark graph:
//!
//! * **distance-only mode ≥ 1.3× the throughput of full path-graph
//!   answers** — the mode split exists because the two cost profiles
//!   genuinely differ (no sketch edge lists, no reverse/recover
//!   materialisation);
//! * **warm-cache path-graph hits ≥ 1.3× the cold (uncached) run** — an
//!   LRU hit replaces the whole guided search with a hash lookup plus one
//!   clone.
//!
//! The compact-profile addendum serves the same distance workload from
//! mmap-backed v2 (wide) and v3 (compact) files and prints the measured
//! throughput ratio and the file-size saving next to the qbs-index-v3
//! acceptance bars (≥ 1.3× distance throughput or ≥ 40% smaller files,
//! bit-identical answers either way).
//!
//! The run prints all measured ratios. Run with
//! `cargo bench --bench request_pipeline`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

use qbs_core::request::QueryRequest;
use qbs_core::{serialize, CacheConfig, MapMode, QbsConfig, QbsIndex, QueryEngine};
use qbs_gen::prelude::*;

/// Vertex count of the benchmark graph (the acceptance regime: ≥ 100k).
const VERTICES: usize = 120_000;
const LANDMARKS: usize = 20;
const THREADS: usize = 4;

fn bench_request_pipeline(c: &mut Criterion) {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: VERTICES,
        edges_per_vertex: 4,
        seed: 2021,
    });
    let workload = QueryWorkload::sample(&graph, 256, 77).pairs().to_vec();
    let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(LANDMARKS));

    let distance_reqs: Vec<QueryRequest> = workload
        .iter()
        .map(|&(u, v)| QueryRequest::distance(u, v))
        .collect();
    let path_reqs: Vec<QueryRequest> = workload
        .iter()
        .map(|&(u, v)| QueryRequest::path_graph(u, v))
        .collect();
    let sketch_reqs: Vec<QueryRequest> = workload
        .iter()
        .map(|&(u, v)| QueryRequest::sketch(u, v))
        .collect();
    let mixed_reqs: Vec<QueryRequest> = workload
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| match i % 3 {
            0 => QueryRequest::distance(u, v),
            1 => QueryRequest::path_graph(u, v),
            _ => QueryRequest::sketch(u, v),
        })
        .collect();

    let engine = QueryEngine::with_threads(&index, THREADS).expect("engine");

    // ---- Acceptance ratios, measured directly. ----
    let time_reps = |reps: usize, f: &dyn Fn()| -> Duration {
        f(); // warm up pools and page cache
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed() / reps as u32
    };
    let reps = 20;
    let path_cold = time_reps(reps, &|| {
        criterion::black_box(engine.submit(&path_reqs));
    });
    let distance_cold = time_reps(reps, &|| {
        criterion::black_box(engine.submit(&distance_reqs));
    });
    let distance_ratio = path_cold.as_secs_f64() / distance_cold.as_secs_f64();

    // Admit everything: the bench measures hit speed, not admission policy.
    let cached_engine = QueryEngine::with_threads(&index, THREADS)
        .expect("engine")
        .with_answer_cache(CacheConfig::with_capacity(4 * workload.len()).admit_above(0));
    cached_engine.submit(&path_reqs); // fill
    let path_warm = time_reps(reps, &|| {
        criterion::black_box(cached_engine.submit(&path_reqs));
    });
    let cache_ratio = path_cold.as_secs_f64() / path_warm.as_secs_f64();
    let cache_stats = cached_engine.cache_stats().expect("cache");
    println!(
        "request pipeline over {VERTICES}-vertex graph, {} queries/batch on {THREADS} threads:\n\
         \x20 full path-graph batch {:.3} ms, distance-only {:.3} ms => {distance_ratio:.2}x \
         (acceptance bar: >= 1.3x)\n\
         \x20 warm-cache path batch {:.3} ms => {cache_ratio:.2}x over cold \
         (acceptance bar: >= 1.3x; hit rate {:.0}%)",
        workload.len(),
        path_cold.as_secs_f64() * 1e3,
        distance_cold.as_secs_f64() * 1e3,
        path_warm.as_secs_f64() * 1e3,
        cache_stats.hit_ratio() * 100.0,
    );

    // ---- Wide vs compact profile: mmap-served distance throughput. ----
    let dir = std::env::temp_dir().join(format!(
        "qbs_bench_request_pipeline_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let wide_path = dir.join("bench.qbs2");
    let compact_path = dir.join("bench.qbs3");
    serialize::save_to_file(&index, &wide_path).expect("save wide");
    serialize::save_to_file_with_profile(
        &index,
        &compact_path,
        serialize::IndexFormat::Binary,
        serialize::IndexProfile::Compact,
    )
    .expect("save compact");
    let wide_bytes = std::fs::metadata(&wide_path).expect("stat").len();
    let compact_bytes = std::fs::metadata(&compact_path).expect("stat").len();
    let wide_store = serialize::open_store_from_file(&wide_path, MapMode::Mmap).expect("wide mmap");
    let compact_store =
        serialize::open_compact_store_from_file(&compact_path, MapMode::Mmap).expect("v3 mmap");
    let wide_engine = QueryEngine::with_threads(&wide_store, THREADS).expect("engine");
    let compact_engine = QueryEngine::with_threads(&compact_store, THREADS).expect("engine");
    let wide_dist = time_reps(reps, &|| {
        criterion::black_box(wide_engine.submit(&distance_reqs));
    });
    let compact_dist = time_reps(reps, &|| {
        criterion::black_box(compact_engine.submit(&distance_reqs));
    });
    let throughput_ratio = wide_dist.as_secs_f64() / compact_dist.as_secs_f64();
    let size_saved = 100.0 * (1.0 - compact_bytes as f64 / wide_bytes as f64);
    println!(
        "compact profile (mmap-served): wide distance batch {:.3} ms, compact {:.3} ms => \
         {throughput_ratio:.2}x; file {wide_bytes} -> {compact_bytes} bytes ({size_saved:.1}% \
         saved) (acceptance bar: >= 1.3x throughput or >= 40% smaller)",
        wide_dist.as_secs_f64() * 1e3,
        compact_dist.as_secs_f64() * 1e3,
    );

    // ---- Criterion groups. ----
    let mut group = c.benchmark_group("request_pipeline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("submit/distance_only", |b| {
        b.iter(|| criterion::black_box(engine.submit(&distance_reqs)));
    });
    group.bench_function("submit/path_graph", |b| {
        b.iter(|| criterion::black_box(engine.submit(&path_reqs)));
    });
    group.bench_function("submit/sketch_only", |b| {
        b.iter(|| criterion::black_box(engine.submit(&sketch_reqs)));
    });
    group.bench_function("submit/mixed_modes", |b| {
        b.iter(|| criterion::black_box(engine.submit(&mixed_reqs)));
    });
    group.bench_function("cache/cold_uncached", |b| {
        b.iter(|| criterion::black_box(engine.submit(&path_reqs)));
    });
    group.bench_function("cache/warm_hits", |b| {
        b.iter(|| criterion::black_box(cached_engine.submit(&path_reqs)));
    });
    group.bench_function("profile/wide_mmap_distance", |b| {
        b.iter(|| criterion::black_box(wide_engine.submit(&distance_reqs)));
    });
    group.bench_function("profile/compact_mmap_distance", |b| {
        b.iter(|| criterion::black_box(compact_engine.submit(&distance_reqs)));
    });
    group.finish();

    // ---- Drift tripwire against fresh single queries. ----
    // submit's path+stats outcomes must carry exactly the answers the
    // per-query path produces, and warm cache hits must not drift either.
    let stats_reqs: Vec<QueryRequest> = workload
        .iter()
        .map(|&(u, v)| QueryRequest::path_graph(u, v).with_stats())
        .collect();
    let fresh: Vec<_> = workload
        .iter()
        .map(|&(u, v)| index.query_with_stats(u, v).expect("fresh query"))
        .collect();
    for (engine_under_test, tag) in [(&engine, "uncached"), (&cached_engine, "warm cache")] {
        let outcomes = engine_under_test.submit(&stats_reqs);
        for ((outcome, expected), &(u, v)) in outcomes.iter().zip(&fresh).zip(&workload) {
            assert_eq!(
                outcome.answer(),
                Some(expected),
                "{tag}: request pipeline drifted from the per-query path on ({u}, {v})"
            );
        }
    }
    let distances = engine.submit(&distance_reqs);
    for ((outcome, expected), &(u, v)) in distances.iter().zip(&fresh).zip(&workload) {
        assert_eq!(
            outcome.distance(),
            Some(expected.path_graph.distance()),
            "distance mode drifted from the path-graph answers on ({u}, {v})"
        );
    }
    // Both mmap-served profiles must agree with the owned index bit for bit.
    assert_eq!(
        distances,
        wide_engine.submit(&distance_reqs),
        "wide profile drifted from the owned index on the distance workload"
    );
    assert_eq!(
        distances,
        compact_engine.submit(&distance_reqs),
        "compact profile drifted from the owned index on the distance workload"
    );
    drop(wide_engine);
    drop(compact_engine);
    drop(wide_store);
    drop(compact_store);
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_request_pipeline);
criterion_main!(benches);
