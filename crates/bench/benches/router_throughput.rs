//! Router scaling benchmark: requests/sec through the scatter/gather
//! tier as the replica pool grows from 1 to 3, driven by the bursty
//! open-loop multi-client workload from `qbs_gen::BurstyWorkload`.
//!
//! The router tentpole's measurement contract:
//!
//! * **replicas must scale** — each replica is deliberately starved to
//!   one session thread and one worker, so a single replica saturates
//!   at roughly one core and the router's least-in-flight scatter is
//!   what buys throughput. On a multi-core machine (≥ 4 cores: three
//!   replicas plus the router/clients) the 3-replica sweep point must
//!   clear 1.8× the single-replica rate; `QBS_BENCH_NO_ASSERT=1`
//!   downgrades the assertion to a warning per the existing convention,
//!   and fewer cores print the ratio without enforcing it (three
//!   starved replicas time-sharing one core cannot scale);
//! * **routing must stay correct under load** — a sample of routed
//!   batches is checked bit-identical to in-process `Qbs::submit`
//!   before any timing is trusted;
//! * **the open-loop schedule is honored** — clients send at the
//!   workload's arrival offsets (immediately once behind schedule), so
//!   bursts genuinely pile onto the pool instead of self-pacing to the
//!   slowest replica.
//!
//! Run with `cargo bench --bench router_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qbs_core::serialize::{self, IndexFormat, MapMode};
use qbs_core::{Qbs, QbsConfig, QbsIndex, QueryRequest};
use qbs_gen::prelude::*;
use qbs_router::{QbsRouter, RouterConfig, RouterHandle};
use qbs_server::{AdmissionConfig, QbsClient, QbsServer, ServerConfig, ServerHandle};

/// Vertex count of the benchmark graph (the serving-bench regime).
const VERTICES: usize = 120_000;
const LANDMARKS: usize = 20;
/// Requests per batch frame.
const BATCH: usize = 64;
/// Open-loop clients driving the router.
const CLIENTS: usize = 4;
/// Batches each client submits per measured run.
const BATCHES_PER_CLIENT: usize = 24;
/// Batches each client keeps in flight before draining tickets. Total
/// offered load (CLIENTS × WINDOW × BATCH requests) must stay inside the
/// replicas' default admission bound, or the measurement sheds.
const WINDOW: usize = 8;

fn connect_ready(addr: &str) -> QbsClient {
    QbsClient::connect_retry(addr, Duration::from_secs(10)).expect("router ready")
}

/// Starts one deliberately starved replica: one session thread, one
/// worker, so replica count — not per-replica parallelism — is the
/// scaling axis.
fn start_replica(path: &std::path::Path) -> ServerHandle {
    let qbs = Qbs::open(path, MapMode::Mmap).expect("open mmap");
    let qbs = Arc::new(qbs.with_threads(1).expect("threads"));
    QbsServer::start(qbs, ServerConfig::default().workers(1)).expect("start replica")
}

fn start_router(replicas: &[ServerHandle]) -> RouterHandle {
    QbsRouter::start(
        RouterConfig::bind("127.0.0.1:0")
            .replicas(
                replicas
                    .iter()
                    .map(|r| r.local_addr().to_string())
                    .collect(),
            )
            .workers(8)
            // The open-loop clients keep WINDOW batches in flight each;
            // the router's admission must sit above that offered load so
            // the sweep measures the pool, not the admission bound.
            .admission(AdmissionConfig {
                max_inflight: 2 * CLIENTS * WINDOW * BATCH,
                ..AdmissionConfig::default()
            })
            .min_split(BATCH / 4),
    )
    .expect("start router")
}

/// Replays the bursty schedule open-loop against `addr` and returns the
/// measured requests/sec: each client thread sends at its arrival
/// offsets (immediately once behind), keeping up to [`WINDOW`] batches
/// in flight per connection before draining tickets.
fn replay(addr: &str, workload: &BurstyWorkload) -> f64 {
    let total: usize = workload.total_requests();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client_idx in 0..workload.clients() {
            let addr = addr.to_string();
            let arrivals = workload.client_arrivals(client_idx);
            scope.spawn(move || {
                let mut client = connect_ready(&addr);
                let start = Instant::now();
                let mut window = std::collections::VecDeque::new();
                for arrival in arrivals {
                    if let Some(wait) = arrival.at().checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    if window.len() >= WINDOW {
                        let reply = client
                            .recv(window.pop_front().expect("window"))
                            .expect("recv");
                        assert!(reply.outcomes().is_some(), "bench router must not shed");
                    }
                    let batch: Vec<QueryRequest> = arrival
                        .pairs
                        .iter()
                        .map(|&(u, v)| QueryRequest::distance(u, v))
                        .collect();
                    window.push_back(client.send(&batch).expect("send"));
                }
                while let Some(ticket) = window.pop_front() {
                    let reply = client.recv(ticket).expect("recv");
                    assert!(reply.outcomes().is_some(), "bench router must not shed");
                }
            });
        }
    });
    total as f64 / t0.elapsed().as_secs_f64()
}

fn bench_router_throughput(c: &mut Criterion) {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: VERTICES,
        edges_per_vertex: 4,
        seed: 2021,
    });
    let workload = BurstyWorkload::generate(
        &graph,
        &BurstyConfig {
            clients: CLIENTS,
            batches_per_client: BATCHES_PER_CLIENT,
            batch_size: BATCH,
            zipf_exponent: 1.5,
            // Aggressive arrivals: the schedule outpaces a starved replica,
            // so the pool — not the pacing — bounds throughput.
            mean_gap_micros: 800,
            burst_len: 4,
            seed: 77,
        },
    );
    let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(LANDMARKS));

    let dir = std::env::temp_dir().join(format!("qbs_bench_router_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("index.qbs2");
    serialize::save_to_file_with(&index, &path, IndexFormat::Binary).expect("save");
    drop(index);
    let local = Qbs::open(&path, MapMode::Mmap).expect("local reference");

    // Correctness gate before any timing: routed answers bit-identical to
    // in-process submit across a sample of the workload's batches.
    {
        let replicas: Vec<ServerHandle> = (0..2).map(|_| start_replica(&path)).collect();
        let router = start_router(&replicas);
        let mut client = connect_ready(&router.local_addr().to_string());
        for arrival in workload.arrivals().iter().step_by(16) {
            let batch: Vec<QueryRequest> = arrival
                .pairs
                .iter()
                .map(|&(u, v)| QueryRequest::distance(u, v))
                .collect();
            let reply = client.submit(&batch).expect("submit");
            assert_eq!(
                reply.outcomes().expect("admitted"),
                &local.submit(&batch)[..],
                "routed answers must be bit-identical to in-process submit"
            );
        }
        drop(client);
        drop(router);
        drop(replicas);
    }

    // Replica-count sweep, best-of-3 per point (wall-clock ratios are
    // asserted below; best-of-N on both sides keeps shared-runner noise
    // out of the estimate).
    let mut sweep = Vec::new();
    for replica_count in [1usize, 2, 3] {
        let replicas: Vec<ServerHandle> =
            (0..replica_count).map(|_| start_replica(&path)).collect();
        let mut router = start_router(&replicas);
        let addr = router.local_addr().to_string();
        let mut best = f64::MIN;
        for _ in 0..3 {
            best = best.max(replay(&addr, &workload));
        }
        let stats = router.router_stats();
        assert_eq!(stats.unavailable_slots, 0, "healthy pool must shed nothing");
        sweep.push((replica_count, best));
        router.shutdown();
        for mut replica in replicas {
            replica.shutdown();
        }
    }

    let rps1 = sweep[0].1;
    let rps3 = sweep[2].1;
    println!(
        "router scaling over a {VERTICES}-vertex graph ({CLIENTS} bursty open-loop clients, \
         {BATCH}-request zipf(1.5) batches, one starved worker per replica):\n{}\
         \x20 3-replica speedup: {:.2}x over 1 replica",
        sweep
            .iter()
            .map(|&(n, rps)| format!("\x20 {n} replica(s) {rps:>10.0} req/s\n"))
            .collect::<String>(),
        rps3 / rps1.max(f64::MIN_POSITIVE),
    );
    // Scaling tripwire: enforced only where the hardware can scale. Three
    // one-core replicas plus router and clients need at least 4 cores;
    // below that the replicas time-share and the ratio is informational.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if rps3 < 1.8 * rps1 {
        let msg = format!(
            "3 replicas must clear 1.8x the single-replica rate \
             ({rps1:.0} vs {rps3:.0} req/s, {:.2}x)",
            rps3 / rps1.max(f64::MIN_POSITIVE)
        );
        if cores < 4 {
            eprintln!(
                "note: {msg} — not enforced on this {cores}-core machine, where the \
                 replicas time-share the CPU and replica count cannot buy throughput"
            );
        } else if std::env::var_os("QBS_BENCH_NO_ASSERT").is_some() {
            eprintln!("warning (QBS_BENCH_NO_ASSERT set): {msg}");
        } else {
            panic!("{msg}");
        }
    }

    // Criterion group: one routed batch round trip at each pool size.
    let mut group = c.benchmark_group("router_throughput");
    let batch: Vec<QueryRequest> = workload.arrivals()[0]
        .pairs
        .iter()
        .map(|&(u, v)| QueryRequest::distance(u, v))
        .collect();
    for replica_count in [1usize, 3] {
        let replicas: Vec<ServerHandle> =
            (0..replica_count).map(|_| start_replica(&path)).collect();
        let mut router = start_router(&replicas);
        let mut client = connect_ready(&router.local_addr().to_string());
        group.bench_function(format!("routed_submit_64_x{replica_count}"), |b| {
            b.iter(|| criterion::black_box(client.submit(&batch).expect("submit")))
        });
        drop(client);
        router.shutdown();
        for mut replica in replicas {
            replica.shutdown();
        }
    }
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_router_throughput);
criterion_main!(benches);
