//! Serving-layer benchmark: requests/sec through the framed TCP server
//! vs. client count, the protocol's overhead vs. in-process
//! `Qbs::submit`, the cost of hundreds of parked idle connections, and
//! the payoff of v2 pipelining over one connection.
//!
//! The reactor tentpole's measurement contract:
//!
//! * **throughput must not collapse under concurrency** — each batch
//!   already fans out over the session's worker pool, so extra clients
//!   mostly contend for the same cores; the sweep records the whole
//!   curve and asserts the peak is at least the single-client rate;
//! * **the wire overhead is bounded** — a loopback round trip adds
//!   framing + syscalls on top of the in-process batch path; the run
//!   prints the measured multiple so the trajectory is tracked per PR
//!   (the `netserve` experiment records the same numbers into the
//!   bench-smoke JSON artifact at tiny scale);
//! * **idle connections are cheap** — ≥512 parked sockets on the one
//!   reactor thread must not dent a busy client's throughput;
//! * **pipelining pays** — with single-request frames, depth 16 must
//!   clear 2× the depth-1 rate on one connection: round-trip latency,
//!   not server work, dominates small frames. (Enforced only with ≥2
//!   cores — on one core the client and reactor serialize on the CPU
//!   and there is no idle round-trip time for pipelining to hide.)
//! * **observability is near-free** — serving with the per-stage
//!   histograms recording must stay within 2% of the same workload with
//!   the registry disabled (`QBS_BENCH_NO_ASSERT=1` downgrades to a
//!   warning on noisy shared runners).
//!
//! Run with `cargo bench --bench server_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

use qbs_core::serialize::{self, IndexFormat, MapMode};
use qbs_core::{Qbs, QbsConfig, QbsIndex, QueryRequest};
use qbs_gen::prelude::*;
use qbs_server::{QbsClient, QbsServer, ServerConfig};

/// Vertex count of the benchmark graph (the acceptance regime: ≥ 100k).
const VERTICES: usize = 120_000;
const LANDMARKS: usize = 20;
/// Requests per batch frame — a realistic serving batch.
const BATCH: usize = 64;
/// Batches each client submits per measured round.
const ROUNDS: usize = 24;

/// Connects with the client library's bounded retry (absorbs the
/// retryable refusals of a server whose handlers are mid-teardown).
fn connect_ready(addr: &str) -> QbsClient {
    QbsClient::connect_retry(addr, std::time::Duration::from_secs(10)).expect("server ready")
}

fn bench_server_throughput(c: &mut Criterion) {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: VERTICES,
        edges_per_vertex: 4,
        seed: 2021,
    });
    let workload = QueryWorkload::sample(&graph, BATCH * 4, 77)
        .pairs()
        .to_vec();
    let zipf_workload = QueryWorkload::sample_zipf(&graph, BATCH * 4, 77, 1.5)
        .pairs()
        .to_vec();
    let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(LANDMARKS));

    // Serve the way production would: v2 file, mmap'd view session.
    let dir = std::env::temp_dir().join(format!("qbs_bench_server_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("index.qbs2");
    serialize::save_to_file_with(&index, &path, IndexFormat::Binary).expect("save");
    let qbs = Arc::new(
        Qbs::open(&path, MapMode::Mmap)
            .expect("open")
            .with_threads(4)
            .expect("threads"),
    );
    // One worker per swept client, so the 8-client point measures 8-way
    // concurrency rather than two serial waves over a 4-worker default.
    let server_config = ServerConfig::default().workers(8);
    let mut server = QbsServer::start(Arc::clone(&qbs), server_config).expect("start");
    let addr = server.local_addr().to_string();

    let batches: Vec<Vec<QueryRequest>> = workload
        .chunks(BATCH)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&(u, v)| QueryRequest::distance(u, v))
                .collect()
        })
        .collect();

    // In-process baseline: the same batches straight through the session.
    let total_requests = (ROUNDS * batches.len().min(4) * BATCH) as f64;
    let inprocess_secs = {
        for batch in &batches {
            qbs.submit(batch); // warm the workspace pool
        }
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            for batch in batches.iter().take(4) {
                criterion::black_box(qbs.submit(batch));
            }
        }
        t0.elapsed().as_secs_f64()
    };
    let inprocess_rps = total_requests / inprocess_secs;

    // Loopback sweep: the same per-client work, 1..=8 concurrent clients.
    let mut sweep = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let addr = addr.clone();
                let batches = &batches;
                scope.spawn(move || {
                    let mut client = connect_ready(&addr);
                    for _ in 0..ROUNDS {
                        for batch in batches.iter().take(4) {
                            let reply = client.submit(batch).expect("submit");
                            assert!(reply.outcomes().is_some(), "benchmark server must not shed");
                        }
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        sweep.push((clients, clients as f64 * total_requests / secs));
    }

    // Sanity: served answers match the in-process pipeline bit-for-bit.
    {
        let mut client = connect_ready(&addr);
        let reply = client.submit(&batches[0]).expect("submit");
        assert_eq!(
            reply.outcomes().expect("admitted"),
            &qbs.submit(&batches[0])[..],
            "served answers must be bit-identical to in-process submit"
        );
    }

    let best = sweep.iter().map(|&(_, rps)| rps).fold(f64::MIN, f64::max);
    println!(
        "server throughput over a {VERTICES}-vertex graph ({BATCH}-request distance batches):\n\
         \x20 in-process submit        {inprocess_rps:>10.0} req/s\n{}\
         \x20 peak loopback throughput {best:>10.0} req/s \
         ({:.1}x the wire +concurrency overhead vs in-process)",
        sweep
            .iter()
            .map(|&(clients, rps)| format!(
                "\x20 {clients} loopback client{}       {rps:>10.0} req/s\n",
                if clients == 1 { " " } else { "s" }
            ))
            .collect::<String>(),
        inprocess_rps / best.max(f64::MIN_POSITIVE),
    );
    let single = sweep[0].1;
    let multi_best = sweep[1..]
        .iter()
        .map(|&(_, rps)| rps)
        .fold(f64::MIN, f64::max);
    assert!(
        multi_best * 3.0 >= single,
        "multi-client throughput collapsed (1 client {single:.0} req/s vs best concurrent \
         {multi_best:.0} req/s)"
    );

    // ---- Many-idle-connection scenario: ≥512 parked sockets. ----
    // Park handshaken-but-silent connections on the reactor, then push
    // the single-client workload through them. The reactor thread count
    // is fixed; the busy client's rate must not collapse.
    let parked: Vec<QbsClient> = (0..512).map(|_| connect_ready(&addr)).collect();
    let idle_rps = {
        let mut client = connect_ready(&addr);
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            for batch in batches.iter().take(4) {
                let reply = client.submit(batch).expect("submit");
                assert!(reply.outcomes().is_some(), "benchmark server must not shed");
            }
        }
        total_requests / t0.elapsed().as_secs_f64()
    };
    println!(
        "idle-connection scenario: {} parked sockets on {} reactor thread(s), \
         busy client {idle_rps:.0} req/s (vs {:.0} req/s unparked)",
        parked.len(),
        server.reactor_threads(),
        sweep[0].1,
    );
    assert_eq!(
        server.reactor_threads(),
        1,
        "the poll set lives on one thread"
    );
    drop(parked);

    // ---- Pipelining-depth sweep: 1 / 4 / 16 over one connection. ----
    // Single-request frames in the latency-bound regime pipelining exists
    // for: near-free self-pair distances, so the round trip — not the
    // search — is the dominant per-frame cost. (With sampled pairs the
    // single reactor core saturates on query work at depth 1 already and
    // no pipelining depth could beat it.)
    let single_reqs: Vec<QueryRequest> = workload
        .iter()
        .map(|&(u, _)| QueryRequest::distance(u, u))
        .collect();
    // Each depth takes the best of three runs: the sweep asserts a
    // wall-clock ratio below, and on a loaded shared runner a single
    // descheduled run would skew either side of it. Best-of-N keeps the
    // noise-free estimate for both numerator and denominator.
    let mut depth_sweep = Vec::new();
    for depth in [1usize, 4, 16] {
        let mut best = f64::MIN;
        for _ in 0..3 {
            let mut client = connect_ready(&addr);
            let t0 = Instant::now();
            let mut window = std::collections::VecDeque::new();
            for req in &single_reqs {
                if window.len() >= depth {
                    client
                        .recv(window.pop_front().expect("window"))
                        .expect("recv");
                }
                window.push_back(client.send(std::slice::from_ref(req)).expect("send"));
            }
            while let Some(ticket) = window.pop_front() {
                client.recv(ticket).expect("recv");
            }
            best = best.max(single_reqs.len() as f64 / t0.elapsed().as_secs_f64());
        }
        depth_sweep.push((depth, best));
    }
    println!(
        "pipelining-depth sweep (single-request frames, one connection):\n{}",
        depth_sweep
            .iter()
            .map(|&(depth, rps)| format!("\x20 depth {depth:>2} {rps:>10.0} req/s\n"))
            .collect::<String>(),
    );
    let depth1 = depth_sweep[0].1;
    let depth16 = depth_sweep[2].1;
    // Wall-clock tripwire, best-of-3 on each side. Pipelining pays by
    // overlapping client think-time with server work, so it needs at
    // least two cores: on a single-core box the client and reactor
    // time-share the CPU, depth 1 already saturates it, and no depth can
    // beat it — the ratio is printed but not enforced there.
    // QBS_BENCH_NO_ASSERT=1 downgrades the multi-core assertion to a
    // warning for heavily-shared machines where even best-of-3 timing is
    // untrustworthy.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if depth16 < 2.0 * depth1 {
        let msg = format!(
            "depth-16 pipelining must at least double depth-1 throughput \
             ({depth1:.0} vs {depth16:.0} req/s)"
        );
        if cores < 2 {
            eprintln!(
                "note: {msg} — not enforced on this {cores}-core machine, where client and \
                 reactor serialize on one CPU and there is no round-trip idle time to hide"
            );
        } else if std::env::var_os("QBS_BENCH_NO_ASSERT").is_some() {
            eprintln!("warning (QBS_BENCH_NO_ASSERT set): {msg}");
        } else {
            panic!("{msg}");
        }
    }

    // ---- Skewed-batch scenario: Zipf-hot serving traffic. ----
    // Production batches are skewed, not uniform: hot sources repeat and
    // whole pairs duplicate. The batch execution planner behind the
    // session's submit coalesces those duplicates and shares forward-BFS
    // state across same-source runs; here the same Zipf batches flow
    // through the full wire path (v2 pipelined client, mmap-backed
    // session) and must stay bit-identical to in-process submit.
    let zipf_batches: Vec<Vec<QueryRequest>> = zipf_workload
        .chunks(BATCH)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&(u, v)| QueryRequest::distance(u, v))
                .collect()
        })
        .collect();
    {
        let mut client = connect_ready(&addr);
        for batch in &zipf_batches {
            let reply = client.submit(batch).expect("submit");
            assert_eq!(
                reply.outcomes().expect("admitted"),
                &qbs.submit(batch)[..],
                "skewed served answers must be bit-identical to in-process submit"
            );
        }
        let t0 = Instant::now();
        let mut window = std::collections::VecDeque::new();
        for _ in 0..ROUNDS {
            for batch in &zipf_batches {
                if window.len() >= 4 {
                    client
                        .recv(window.pop_front().expect("window"))
                        .expect("recv");
                }
                window.push_back(client.send(batch).expect("send"));
            }
        }
        while let Some(ticket) = window.pop_front() {
            client.recv(ticket).expect("recv");
        }
        let skew_rps = (ROUNDS * zipf_batches.len() * BATCH) as f64 / t0.elapsed().as_secs_f64();
        let planner = qbs.engine_stats().planner;
        println!(
            "skewed-batch scenario: zipf(1.5) {BATCH}-request batches, depth-4 pipelined \
             client: {skew_rps:.0} req/s (uniform loopback peak {best:.0} req/s); planner \
             coalesced {} slots, memoized {} labels, reused {} fwd levels",
            planner.dedup_hits, planner.labels_memoized, planner.fwd_levels_reused,
        );
        assert!(
            planner.dedup_hits > 0,
            "a zipf(1.5) batch must contain coalescable duplicates"
        );
    }

    // ---- Observability-overhead tripwire: metrics on vs off. ----
    // The per-stage histograms are sharded atomics on the batch path;
    // their cost budget is ≤2% of loopback throughput. Interleaved
    // best-of-3 on each side so a descheduled run can't skew the ratio.
    let metrics_overhead = {
        let measure = |client: &mut QbsClient| {
            let t0 = Instant::now();
            for _ in 0..ROUNDS {
                for batch in batches.iter().take(4) {
                    let reply = client.submit(batch).expect("submit");
                    assert!(reply.outcomes().is_some(), "benchmark server must not shed");
                }
            }
            total_requests / t0.elapsed().as_secs_f64()
        };
        let mut client = connect_ready(&addr);
        let (mut on_best, mut off_best) = (f64::MIN, f64::MIN);
        for _ in 0..3 {
            qbs.metrics().set_enabled(true);
            on_best = on_best.max(measure(&mut client));
            qbs.metrics().set_enabled(false);
            off_best = off_best.max(measure(&mut client));
        }
        qbs.metrics().set_enabled(true);
        (on_best, off_best)
    };
    let (on_rps, off_rps) = metrics_overhead;
    let overhead_pct = (off_rps - on_rps) / off_rps.max(f64::MIN_POSITIVE) * 100.0;
    println!(
        "observability overhead: metrics on {on_rps:.0} req/s vs off {off_rps:.0} req/s \
         ({overhead_pct:+.2}% slowdown)"
    );
    if on_rps < off_rps * 0.98 {
        let msg = format!(
            "instrumented serving must stay within 2% of metrics-off throughput \
             (on {on_rps:.0} vs off {off_rps:.0} req/s, {overhead_pct:.2}% slowdown)"
        );
        if cores < 2 {
            eprintln!("note: {msg} — not enforced on this {cores}-core machine");
        } else if std::env::var_os("QBS_BENCH_NO_ASSERT").is_some() {
            eprintln!("warning (QBS_BENCH_NO_ASSERT set): {msg}");
        } else {
            panic!("{msg}");
        }
    }

    // Criterion group: one-batch round trip, in-process vs loopback.
    let mut group = c.benchmark_group("server_throughput");
    group.bench_function("inprocess_submit_64", |b| {
        b.iter(|| criterion::black_box(qbs.submit(&batches[0])))
    });
    let mut client = connect_ready(&addr);
    group.bench_function("loopback_submit_64", |b| {
        b.iter(|| criterion::black_box(client.submit(&batches[0]).expect("submit")))
    });
    group.finish();

    drop(client);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
