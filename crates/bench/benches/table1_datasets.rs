//! Table 1 micro-benchmarks: dataset stand-in generation and the statistics
//! pipeline that produces the table's columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_graph::stats::GraphStats;

fn bench_table1(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));

    for id in [DatasetId::Douban, DatasetId::Dblp, DatasetId::Twitter] {
        let spec = *catalog.get(id).expect("dataset in catalog");
        group.bench_with_input(
            BenchmarkId::new("generate", id.abbrev()),
            &spec,
            |b, spec| {
                b.iter(|| spec.generate(Scale::Tiny));
            },
        );
        let graph = spec.generate(Scale::Tiny);
        group.bench_with_input(
            BenchmarkId::new("stats", id.abbrev()),
            &graph,
            |b, graph| {
                b.iter(|| GraphStats::compute(graph, 500));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
