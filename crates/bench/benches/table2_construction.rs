//! Table 2 (construction columns): index construction time of QbS-P, QbS and
//! the labelling baselines on representative stand-ins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_baselines::Ppl;
use qbs_core::{QbsConfig, QbsIndex};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};

fn bench_construction(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let mut group = c.benchmark_group("table2_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200));

    for id in [DatasetId::Douban, DatasetId::Dblp] {
        let graph = catalog.get(id).unwrap().generate(Scale::Tiny);
        group.bench_with_input(BenchmarkId::new("QbS-P", id.abbrev()), &graph, |b, g| {
            b.iter(|| QbsIndex::build(g.clone(), QbsConfig::with_landmark_count(20)));
        });
        group.bench_with_input(BenchmarkId::new("QbS", id.abbrev()), &graph, |b, g| {
            b.iter(|| QbsIndex::build(g.clone(), QbsConfig::with_landmark_count(20).sequential()));
        });
        group.bench_with_input(BenchmarkId::new("PPL", id.abbrev()), &graph, |b, g| {
            b.iter(|| Ppl::build(g.clone()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
