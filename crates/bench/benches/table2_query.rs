//! Table 2 (query columns): average query time of QbS against PPL,
//! ParentPPL and Bi-BFS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_baselines::{BiBfs, ParentPpl, Ppl, SpgEngine};
use qbs_core::{query_on, CompactStore, QbsConfig, QbsIndex, QueryWorkspace};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_gen::QueryWorkload;

fn bench_query(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let mut group = c.benchmark_group("table2_query");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200));

    for id in [DatasetId::Douban, DatasetId::Youtube] {
        let graph = catalog.get(id).unwrap().generate(Scale::Tiny);
        let workload = QueryWorkload::sample_connected(&graph, 64, 2021);
        let pairs = workload.pairs().to_vec();

        let qbs = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(20));
        let ppl = Ppl::build(graph.clone());
        let parent_ppl = ParentPpl::build(graph.clone());
        let bibfs = BiBfs::new(graph.clone());

        group.bench_with_input(BenchmarkId::new("QbS", id.abbrev()), &pairs, |b, pairs| {
            b.iter(|| {
                for &(u, v) in pairs {
                    criterion::black_box(qbs.query(u, v).expect("in range"));
                }
            });
        });
        // The same queries served from the compact v3 layout: landmark and
        // adjacency rows are varint-decoded on the fly, so this arm tracks
        // the online cost of the smaller file.
        let compact = CompactStore::new(qbs.as_compact_view().expect("compact view"));
        group.bench_with_input(
            BenchmarkId::new("QbS-compact", id.abbrev()),
            &pairs,
            |b, pairs| {
                let mut ws = QueryWorkspace::new();
                b.iter(|| {
                    for &(u, v) in pairs {
                        criterion::black_box(query_on(&compact, &mut ws, u, v).expect("in range"));
                    }
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("PPL", id.abbrev()), &pairs, |b, pairs| {
            b.iter(|| {
                for &(u, v) in pairs {
                    criterion::black_box(ppl.query(u, v));
                }
            });
        });
        group.bench_with_input(
            BenchmarkId::new("ParentPPL", id.abbrev()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    for &(u, v) in pairs {
                        criterion::black_box(parent_ppl.query(u, v));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("Bi-BFS", id.abbrev()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    for &(u, v) in pairs {
                        criterion::black_box(bibfs.query(u, v));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
