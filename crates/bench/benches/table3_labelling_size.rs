//! Table 3: labelling size accounting. The interesting quantity is the size
//! itself (reported by the `experiments table3` binary); this bench measures
//! the cost of producing those sizes — building each labelling and walking
//! its accounting — so regressions in labelling compactness code paths are
//! visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_baselines::{ParentPpl, Ppl};
use qbs_core::{QbsConfig, QbsIndex};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};

fn bench_labelling_sizes(c: &mut Criterion) {
    let catalog = Catalog::paper_table1();
    let graph = catalog
        .get(DatasetId::Douban)
        .unwrap()
        .generate(Scale::Tiny);
    let mut group = c.benchmark_group("table3_labelling_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1000))
        .warm_up_time(Duration::from_millis(200));

    group.bench_with_input(BenchmarkId::new("QbS", "DO"), &graph, |b, g| {
        b.iter(|| {
            let index = QbsIndex::build(g.clone(), QbsConfig::with_landmark_count(20));
            criterion::black_box(index.stats().total_index_bytes())
        });
    });
    group.bench_with_input(BenchmarkId::new("PPL", "DO"), &graph, |b, g| {
        b.iter(|| criterion::black_box(Ppl::build(g.clone()).labelling_size_bytes()));
    });
    group.bench_with_input(BenchmarkId::new("ParentPPL", "DO"), &graph, |b, g| {
        b.iter(|| criterion::black_box(ParentPpl::build(g.clone()).labelling_size_bytes()));
    });
    group.finish();
}

criterion_group!(benches, bench_labelling_sizes);
criterion_main!(benches);
