//! View-serving benchmarks: the owned-vs-view query latency comparison and
//! the cold-start-to-first-answer race the `IndexStore` refactor exists
//! for.
//!
//! A shard process restarting in production has one job: answer its first
//! query as soon as possible. Two ways to get there from an index file:
//!
//! * **materialise** — read the file, parse + fully validate it, rebuild
//!   every owned structure (`QbsIndex::from_view`), then query;
//! * **map** — `mmap` the immutable file (`MapMode::Mmap`), wrap the
//!   validated-geometry view in a `ViewStore`, and run the query straight
//!   off the file bytes; pages fault in on demand.
//!
//! The acceptance bar for the PR is **map ≥ 10× faster to first answer**
//! on the 120k-vertex benchmark graph; the run prints the measured ratio.
//! The steady-state group then shows what the zero-copy path costs per
//! query once warm (the view decodes labels/adjacency on the fly, so some
//! per-query overhead vs the owned arrays is expected — that is the
//! memory-footprint trade N shard processes sharing one mapped file make).
//!
//! Run with `cargo bench --bench view_query`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

use qbs_core::serialize::{self, MapMode};
use qbs_core::{query_on, QbsConfig, QbsIndex, QueryEngine, QueryRequest, QueryWorkspace};
use qbs_gen::prelude::*;

/// Vertex count of the benchmark graph (the acceptance regime: ≥ 100k).
const VERTICES: usize = 120_000;
const LANDMARKS: usize = 20;

fn bench_view_query(c: &mut Criterion) {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: VERTICES,
        edges_per_vertex: 4,
        seed: 2021,
    });
    let workload = QueryWorkload::sample(&graph, 256, 77).pairs().to_vec();
    let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(LANDMARKS));

    let dir = std::env::temp_dir().join("qbs_view_query_bench");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("ba120k.qbs2");
    serialize::save_to_file(&index, &path).expect("save");
    let file_len = std::fs::metadata(&path).expect("meta").len();
    let first_pair = workload[0];

    // ---- Cold start to first answer: materialise vs map. ----
    let time_n = |n: usize, f: &dyn Fn()| -> Duration {
        let t0 = Instant::now();
        for _ in 0..n {
            f();
        }
        t0.elapsed() / n as u32
    };
    let reps = 10;
    let materialise = time_n(reps, &|| {
        let owned = serialize::load_from_file(&path).expect("load");
        let mut ws = QueryWorkspace::new();
        criterion::black_box(query_on(&owned, &mut ws, first_pair.0, first_pair.1).expect("query"));
    });
    let mapped = time_n(reps, &|| {
        let store = serialize::open_store_from_file(&path, MapMode::Mmap).expect("map");
        let mut ws = QueryWorkspace::new();
        criterion::black_box(query_on(&store, &mut ws, first_pair.0, first_pair.1).expect("query"));
    });
    let ratio = materialise.as_secs_f64() / mapped.as_secs_f64();
    println!(
        "cold start to first answer over a {file_len}-byte index ({VERTICES} vertices): \
         from_view materialisation {:.3} ms, mmap view {:.3} ms => {ratio:.1}x \
         (acceptance bar: >= 10x)",
        materialise.as_secs_f64() * 1e3,
        mapped.as_secs_f64() * 1e3,
    );

    let mut group = c.benchmark_group("view_query");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("cold_start/from_view_materialize", |b| {
        b.iter(|| {
            let owned = serialize::load_from_file(&path).expect("load");
            let mut ws = QueryWorkspace::new();
            query_on(&owned, &mut ws, first_pair.0, first_pair.1).expect("query")
        });
    });
    group.bench_function("cold_start/mmap_view", |b| {
        b.iter(|| {
            let store = serialize::open_store_from_file(&path, MapMode::Mmap).expect("map");
            let mut ws = QueryWorkspace::new();
            query_on(&store, &mut ws, first_pair.0, first_pair.1).expect("query")
        });
    });

    // ---- Steady state: per-query latency, one reused workspace. ----
    let store = serialize::open_store_from_file(&path, MapMode::Mmap).expect("map");
    group.bench_function("steady/owned_index", |b| {
        let mut ws = QueryWorkspace::for_vertices(VERTICES);
        b.iter(|| {
            for &(u, v) in &workload {
                criterion::black_box(query_on(&index, &mut ws, u, v).expect("query"));
            }
        });
    });
    group.bench_function("steady/mmap_view", |b| {
        let mut ws = QueryWorkspace::for_vertices(VERTICES);
        b.iter(|| {
            for &(u, v) in &workload {
                criterion::black_box(query_on(&store, &mut ws, u, v).expect("query"));
            }
        });
    });

    // ---- Batch engine over both backends (the serving configuration). ----
    let requests: Vec<QueryRequest> = workload
        .iter()
        .map(|&(u, v)| QueryRequest::path_graph(u, v).with_stats())
        .collect();
    group.bench_function("engine_batch/owned_index", |b| {
        let engine = QueryEngine::with_threads(&index, 4).expect("engine");
        b.iter(|| criterion::black_box(engine.submit(&requests)));
    });
    group.bench_function("engine_batch/mmap_view", |b| {
        let engine = QueryEngine::with_threads(&store, 4).expect("engine");
        b.iter(|| criterion::black_box(engine.submit(&requests)));
    });
    group.finish();

    // The two backends must agree — a benchmark that silently measured
    // divergent answers would be worthless.
    let owned_engine = QueryEngine::with_threads(&index, 2).expect("engine");
    let view_engine = QueryEngine::with_threads(&store, 2).expect("engine");
    assert_eq!(
        owned_engine.submit(&requests),
        view_engine.submit(&requests),
        "owned and view-backed engines diverged"
    );
}

criterion_group!(benches, bench_view_query);
criterion_main!(benches);
