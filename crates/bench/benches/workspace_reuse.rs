//! Workspace-reuse and batch-engine benchmarks.
//!
//! Demonstrates the two claims behind the epoch-stamped query workspaces:
//!
//! 1. **Amortisation** — on a large graph, answering queries through a
//!    reused [`qbs_core::QueryWorkspace`] is measurably faster than the
//!    fresh-allocation path, because the `O(|V|)` depth/visited arrays are
//!    reset by bumping an epoch instead of being reallocated and rezeroed
//!    per query (`query/fresh` vs `query/reused` vs `distance/reused`).
//! 2. **Scaling** — `QueryEngine::submit` distributes a workload over
//!    worker threads with one workspace per worker, scaling near-linearly
//!    on a ≥100k-vertex synthetic graph (`batch/threads=N`).
//!
//! Run with `cargo bench --bench workspace_reuse`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use qbs_core::{QbsConfig, QbsIndex, QueryEngine, QueryRequest, QueryWorkspace};
use qbs_gen::prelude::*;

/// Vertex count of the scaling graph — large enough that per-query `O(|V|)`
/// allocation dominates the fresh path (the acceptance regime: ≥ 100k).
const SCALE_VERTICES: usize = 120_000;
const WORKLOAD: usize = 256;

fn build_index() -> (QbsIndex, Vec<(u32, u32)>) {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: SCALE_VERTICES,
        edges_per_vertex: 4,
        seed: 2021,
    });
    let workload = QueryWorkload::sample_connected(&graph, WORKLOAD, 7);
    let pairs = workload.pairs().to_vec();
    let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(20));
    (index, pairs)
}

fn bench_workspace_reuse(c: &mut Criterion) {
    let (index, pairs) = build_index();

    let mut group = c.benchmark_group("workspace_reuse");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    // Fresh allocation per query: the pre-workspace behaviour.
    group.bench_function("query/fresh", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                criterion::black_box(index.query(u, v).expect("in range"));
            }
        });
    });

    // One workspace reused across the whole workload.
    group.bench_function("query/reused", |b| {
        let mut ws = QueryWorkspace::new();
        b.iter(|| {
            for &(u, v) in &pairs {
                criterion::black_box(index.query_with(&mut ws, u, v).expect("in range"));
            }
        });
    });

    // Distance-only hot path: zero allocation once the workspace is warm.
    group.bench_function("distance/reused", |b| {
        let mut ws = QueryWorkspace::new();
        b.iter(|| {
            for &(u, v) in &pairs {
                criterion::black_box(index.distance_with(&mut ws, u, v).expect("in range"));
            }
        });
    });
    group.finish();
}

fn bench_batch_scaling(c: &mut Criterion) {
    let (index, pairs) = build_index();

    let requests: Vec<QueryRequest> = pairs
        .iter()
        .map(|&(u, v)| QueryRequest::path_graph(u, v).with_stats())
        .collect();
    let mut group = c.benchmark_group("submit_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    // Sweep up to the hardware parallelism, but always include threads=2 so
    // the concurrent path is exercised even on single-core CI runners
    // (there it measures overhead, not speedup).
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    for threads in [1usize, 2, 4, 8] {
        if threads > max_threads {
            break;
        }
        let engine = QueryEngine::with_threads(&index, threads).expect("engine");
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &engine,
            |b, engine| {
                b.iter(|| criterion::black_box(engine.submit(&requests)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_workspace_reuse, bench_batch_scaling);
criterion_main!(benches);
