//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <which> [options]
//!
//! which:    table1 | table2 | table3 | fig7 | fig8 | fig9 | fig10 | fig11 |
//!           traversal | ablation | viewserve | compactserve | mixedbatch |
//!           batchplan | netserve | routed | obs | all
//!
//! options:
//!   --scale tiny|small|medium|large   dataset scale          (default: small)
//!   --queries N                       query pairs per dataset (default: 1000)
//!   --landmarks N                     |R| for the tables      (default: 20)
//!   --sweep a,b,c                     |R| values for figs 8-11 (default: 20,40,60,80,100)
//!   --datasets DO,DB,...              subset of Table 1 abbreviations
//!   --out DIR                         also write JSON results into DIR
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use qbs_bench::experiments;
use qbs_bench::reporting::write_json;
use qbs_bench::ExperimentConfig;
use qbs_gen::catalog::{DatasetId, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let which = args[0].clone();
    let (config, out_dir) = match parse_options(&args[1..]) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    let mut outputs: BTreeMap<&'static str, (String, serde_json::Value)> = BTreeMap::new();
    let run = |name: &str| which == name || which == "all";

    eprintln!(
        "# running '{which}' at scale {:?} with |R|={} and {} queries per dataset",
        config.scale, config.landmark_count, config.query_count
    );

    if run("table1") {
        let r = experiments::table1(&config);
        outputs.insert("table1", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    if run("table2") {
        let r = match experiments::table2(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: table2 failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        outputs.insert("table2", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    if run("table3") {
        let r = experiments::table3(&config);
        outputs.insert("table3", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    if run("fig7") {
        let r = experiments::fig7(&config);
        outputs.insert("fig7", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    if run("fig8") || run("fig9") || run("fig10") || run("fig11") {
        let sweep = experiments::landmark_sweep(&config);
        let json = serde_json::to_value(&sweep).unwrap();
        if run("fig8") {
            outputs.insert("fig8", (sweep.render_fig8(), json.clone()));
        }
        if run("fig9") {
            outputs.insert("fig9", (sweep.render_fig9(), json.clone()));
        }
        if run("fig10") {
            outputs.insert("fig10", (sweep.render_fig10(), json.clone()));
        }
        if run("fig11") {
            outputs.insert("fig11", (sweep.render_fig11(), json));
        }
    }
    if run("traversal") {
        let r = experiments::traversal(&config);
        outputs.insert("traversal", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    if run("ablation") {
        let r = experiments::ablation(&config);
        outputs.insert("ablation", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    // `viewserve`, `compactserve` and `mixedbatch` are explicit-only
    // pass/fail differentials, not part of `all`: the smoke run would
    // otherwise build the same indices twice (CI runs each as its own
    // named step).
    let mut drift = false;
    if which == "viewserve" {
        let r = match experiments::view_serving(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: viewserve failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        drift |= !r.all_identical();
        outputs.insert("viewserve", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    if which == "compactserve" {
        let r = match experiments::compact_serving(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: compactserve failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        drift |= !r.all_identical();
        outputs.insert(
            "compactserve",
            (r.render(), serde_json::to_value(&r).unwrap()),
        );
    }
    if which == "mixedbatch" {
        let r = match experiments::mixed_batch(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: mixedbatch failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        drift |= !r.all_identical();
        outputs.insert(
            "mixedbatch",
            (r.render(), serde_json::to_value(&r).unwrap()),
        );
    }
    if which == "batchplan" {
        let r = match experiments::batch_plan(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: batchplan failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        drift |= !r.all_identical();
        outputs.insert("batchplan", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    if which == "netserve" {
        let r = match experiments::net_serving(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: netserve failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        drift |= !r.all_ok();
        outputs.insert("netserve", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    if which == "routed" {
        let r = match experiments::routed_serving(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: routed failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        drift |= !r.all_ok();
        outputs.insert("routed", (r.render(), serde_json::to_value(&r).unwrap()));
    }
    if which == "obs" {
        let r = match experiments::obs_serving(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: obs failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        drift |= !r.all_ok();
        outputs.insert("obs", (r.render(), serde_json::to_value(&r).unwrap()));
    }

    if outputs.is_empty() {
        eprintln!("error: unknown experiment '{which}'\n");
        print_usage();
        return ExitCode::FAILURE;
    }

    for (name, (text, json)) in &outputs {
        println!("{text}");
        if let Some(dir) = &out_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
            } else if let Err(e) = write_json(json, dir.join(format!("{name}.json"))) {
                eprintln!("warning: cannot write {name}.json: {e}");
            }
        }
    }
    if drift {
        eprintln!(
            "error: differential detected answer drift — the serving path under test no \
             longer matches its reference (see the table above)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    eprintln!(
        "usage: experiments <table1|table2|table3|fig7|fig8|fig9|fig10|fig11|traversal|ablation|viewserve|compactserve|mixedbatch|batchplan|netserve|routed|obs|all> \
         [--scale tiny|small|medium|large] [--queries N] [--landmarks N] \
         [--sweep a,b,c] [--datasets DO,DB,...] [--out DIR]"
    );
}

fn parse_options(args: &[String]) -> Result<(ExperimentConfig, Option<PathBuf>), String> {
    let mut config = ExperimentConfig::default();
    let mut out_dir = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--scale" => {
                config.scale = match value.to_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--queries" => {
                config.query_count = value
                    .parse()
                    .map_err(|_| format!("invalid query count '{value}'"))?;
            }
            "--landmarks" => {
                config.landmark_count = value
                    .parse()
                    .map_err(|_| format!("invalid landmark count '{value}'"))?;
            }
            "--sweep" => {
                config.landmark_sweep = value
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| format!("invalid sweep entry '{s}'"))
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
            }
            "--datasets" => {
                config.datasets = value
                    .split(',')
                    .map(|abbrev| {
                        DatasetId::ALL
                            .iter()
                            .copied()
                            .find(|id| id.abbrev().eq_ignore_ascii_case(abbrev.trim()))
                            .ok_or_else(|| format!("unknown dataset abbreviation '{abbrev}'"))
                    })
                    .collect::<Result<Vec<DatasetId>, String>>()?;
            }
            "--out" => out_dir = Some(PathBuf::from(value)),
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 2;
    }
    Ok((config, out_dir))
}
