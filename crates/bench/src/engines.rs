//! Uniform engine wrappers.
//!
//! The baselines already implement [`SpgEngine`]; this module adapts
//! [`QbsIndex`] to the same trait and provides [`AnyEngine`], an enum the
//! experiment runner uses to hold a heterogeneous set of methods.

use std::time::{Duration, Instant};

use qbs_baselines::ppl::{BuildAborted, BuildLimits};
use qbs_baselines::{BiBfs, GroundTruth, ParentPpl, Ppl, SpgEngine};
use qbs_core::{QbsConfig, QbsError, QbsIndex, QueryWorkspace};
use qbs_graph::{Graph, PathGraph, VertexId};

/// [`QbsIndex`] adapted to the [`SpgEngine`] trait.
pub struct QbsEngine {
    index: QbsIndex,
    parallel: bool,
    /// Reused by [`SpgEngine::query_batch`] so repeated batches pay zero
    /// `O(|V|)` setup, matching the other engines' workspace reuse.
    workspace: std::sync::Mutex<QueryWorkspace>,
}

impl QbsEngine {
    /// Builds a QbS engine with the given landmark count, surfacing build
    /// failures (e.g. thread-pool creation) instead of panicking.
    pub fn try_build(graph: Graph, landmarks: usize, parallel: bool) -> Result<Self, QbsError> {
        let mut config = QbsConfig::with_landmark_count(landmarks);
        if !parallel {
            config = config.sequential();
        }
        Ok(QbsEngine {
            index: QbsIndex::try_build(graph, config)?,
            parallel,
            workspace: std::sync::Mutex::new(QueryWorkspace::new()),
        })
    }

    /// Builds a QbS engine with the given landmark count.
    ///
    /// # Panics
    ///
    /// Panics when the build fails; see [`QbsEngine::try_build`].
    pub fn build(graph: Graph, landmarks: usize, parallel: bool) -> Self {
        Self::try_build(graph, landmarks, parallel).expect("QbS engine build failed")
    }

    /// The wrapped index.
    pub fn index(&self) -> &QbsIndex {
        &self.index
    }
}

impl SpgEngine for QbsEngine {
    fn query(&self, source: VertexId, target: VertexId) -> PathGraph {
        self.index
            .query(source, target)
            .expect("engine callers validate vertices")
    }

    fn num_vertices(&self) -> usize {
        self.index.graph().num_vertices()
    }

    fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<PathGraph> {
        // Sequential loop over one long-lived workspace: Table 2 compares
        // *single-threaded* per-query latency across methods, so QbS must
        // amortise scratch state the same way Bi-BFS and the oracle do —
        // not fan out over cores (that is `qbs_core::QueryEngine`'s job,
        // exercised by the CLI and the workspace_reuse bench).
        let mut ws = self.workspace.lock().expect("workspace poisoned");
        pairs
            .iter()
            .map(|&(u, v)| {
                self.index
                    .query_with(&mut ws, u, v)
                    .expect("batch vertices validated by the caller")
                    .path_graph
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        if self.parallel {
            "QbS-P"
        } else {
            "QbS"
        }
    }

    fn index_size_bytes(&self) -> usize {
        self.index.stats().total_index_bytes()
    }
}

/// Identifier of a method compared in the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodId {
    /// QbS with parallel labelling construction.
    QbsParallel,
    /// QbS with sequential labelling construction.
    QbsSequential,
    /// Pruned Path Labelling.
    Ppl,
    /// PPL with parent sets.
    ParentPpl,
    /// Online bidirectional BFS.
    BiBfs,
    /// Ground-truth double BFS.
    GroundTruth,
}

impl MethodId {
    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MethodId::QbsParallel => "QbS-P",
            MethodId::QbsSequential => "QbS",
            MethodId::Ppl => "PPL",
            MethodId::ParentPpl => "ParentPPL",
            MethodId::BiBfs => "Bi-BFS",
            MethodId::GroundTruth => "BFS",
        }
    }

    /// The methods of Table 2, in column order.
    pub const TABLE2: [MethodId; 5] = [
        MethodId::QbsParallel,
        MethodId::QbsSequential,
        MethodId::Ppl,
        MethodId::ParentPpl,
        MethodId::BiBfs,
    ];
}

/// Outcome of building one method on one dataset.
pub enum BuildOutcome {
    /// The index was built within the budget.
    Built {
        /// The engine, ready to answer queries.
        engine: AnyEngine,
        /// Wall-clock construction time.
        construction: Duration,
    },
    /// The build exceeded its time budget (the paper's "DNF").
    DidNotFinish,
    /// The build exceeded its memory budget (the paper's "OOE").
    OutOfMemory,
}

/// A heterogeneous engine.
pub enum AnyEngine {
    /// QbS (either construction mode).
    Qbs(Box<QbsEngine>),
    /// Pruned Path Labelling.
    Ppl(Box<Ppl>),
    /// ParentPPL.
    ParentPpl(Box<ParentPpl>),
    /// Bidirectional BFS.
    BiBfs(Box<BiBfs>),
    /// Ground-truth BFS oracle.
    GroundTruth(Box<GroundTruth>),
}

impl SpgEngine for AnyEngine {
    fn query(&self, source: VertexId, target: VertexId) -> PathGraph {
        match self {
            AnyEngine::Qbs(e) => e.query(source, target),
            AnyEngine::Ppl(e) => e.query(source, target),
            AnyEngine::ParentPpl(e) => e.query(source, target),
            AnyEngine::BiBfs(e) => e.query(source, target),
            AnyEngine::GroundTruth(e) => e.query(source, target),
        }
    }

    fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<PathGraph> {
        match self {
            AnyEngine::Qbs(e) => e.query_batch(pairs),
            AnyEngine::Ppl(e) => e.query_batch(pairs),
            AnyEngine::ParentPpl(e) => e.query_batch(pairs),
            AnyEngine::BiBfs(e) => e.query_batch(pairs),
            AnyEngine::GroundTruth(e) => e.query_batch(pairs),
        }
    }

    fn num_vertices(&self) -> usize {
        match self {
            AnyEngine::Qbs(e) => e.num_vertices(),
            AnyEngine::Ppl(e) => e.num_vertices(),
            AnyEngine::ParentPpl(e) => e.num_vertices(),
            AnyEngine::BiBfs(e) => e.num_vertices(),
            AnyEngine::GroundTruth(e) => e.num_vertices(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyEngine::Qbs(e) => e.name(),
            AnyEngine::Ppl(e) => e.name(),
            AnyEngine::ParentPpl(e) => e.name(),
            AnyEngine::BiBfs(e) => e.name(),
            AnyEngine::GroundTruth(e) => e.name(),
        }
    }

    fn index_size_bytes(&self) -> usize {
        match self {
            AnyEngine::Qbs(e) => e.index_size_bytes(),
            AnyEngine::Ppl(e) => e.index_size_bytes(),
            AnyEngine::ParentPpl(e) => e.index_size_bytes(),
            AnyEngine::BiBfs(e) => e.index_size_bytes(),
            AnyEngine::GroundTruth(e) => e.index_size_bytes(),
        }
    }
}

/// Builds one method on a graph, honouring the given per-method resource
/// budget (so the laptop-scale runs can report DNF/OOE the way Table 2 does
/// for the labelling baselines on large graphs).
///
/// Build-environment failures (thread pools, not resource budgets) are
/// propagated as `Err` rather than folded into the DNF/OOE outcomes.
pub fn build_method(
    method: MethodId,
    graph: &Graph,
    landmarks: usize,
    limits: BuildLimits,
) -> Result<BuildOutcome, QbsError> {
    let start = Instant::now();
    let engine = match method {
        MethodId::QbsParallel => AnyEngine::Qbs(Box::new(QbsEngine::try_build(
            graph.clone(),
            landmarks,
            true,
        )?)),
        MethodId::QbsSequential => AnyEngine::Qbs(Box::new(QbsEngine::try_build(
            graph.clone(),
            landmarks,
            false,
        )?)),
        MethodId::Ppl => match Ppl::build_with_limits(graph.clone(), limits) {
            Ok(index) => AnyEngine::Ppl(Box::new(index)),
            Err(BuildAborted::TimedOut) => return Ok(BuildOutcome::DidNotFinish),
            Err(BuildAborted::TooManyLabels) => return Ok(BuildOutcome::OutOfMemory),
        },
        MethodId::ParentPpl => match ParentPpl::build_with_limits(graph.clone(), limits) {
            Ok(index) => AnyEngine::ParentPpl(Box::new(index)),
            Err(BuildAborted::TimedOut) => return Ok(BuildOutcome::DidNotFinish),
            Err(BuildAborted::TooManyLabels) => return Ok(BuildOutcome::OutOfMemory),
        },
        MethodId::BiBfs => AnyEngine::BiBfs(Box::new(BiBfs::new(graph.clone()))),
        MethodId::GroundTruth => AnyEngine::GroundTruth(Box::new(GroundTruth::new(graph.clone()))),
    };
    Ok(BuildOutcome::Built {
        engine,
        construction: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::fixtures::figure4_graph;

    #[test]
    fn every_method_builds_and_agrees_on_figure4() {
        let g = figure4_graph();
        let truth = GroundTruth::new(g.clone());
        for method in [
            MethodId::QbsParallel,
            MethodId::QbsSequential,
            MethodId::Ppl,
            MethodId::ParentPpl,
            MethodId::BiBfs,
        ] {
            let BuildOutcome::Built {
                engine,
                construction,
            } = build_method(method, &g, 3, BuildLimits::default()).expect("build ok")
            else {
                panic!("{:?} failed to build", method);
            };
            assert!(construction.as_nanos() > 0);
            assert_eq!(engine.name(), method.name());
            for (u, v) in [(6u32, 11u32), (4, 12), (7, 9)] {
                assert_eq!(
                    engine.query(u, v),
                    truth.query(u, v),
                    "{:?} ({u},{v})",
                    method
                );
            }
            // The batch path must agree with the per-query path.
            let pairs = [(6u32, 11u32), (4, 12), (7, 9)];
            let batch = engine.query_batch(&pairs);
            for (answer, &(u, v)) in batch.iter().zip(&pairs) {
                assert_eq!(answer, &truth.query(u, v), "{:?} batch ({u},{v})", method);
            }
        }
    }

    #[test]
    fn limits_translate_into_dnf_and_ooe() {
        let g = figure4_graph();
        let tight_time = BuildLimits {
            max_duration: Duration::ZERO,
            ..Default::default()
        };
        assert!(matches!(
            build_method(MethodId::Ppl, &g, 3, tight_time),
            Ok(BuildOutcome::DidNotFinish)
        ));
        let tight_mem = BuildLimits {
            max_label_entries: 1,
            ..Default::default()
        };
        assert!(matches!(
            build_method(MethodId::ParentPpl, &g, 3, tight_mem),
            Ok(BuildOutcome::OutOfMemory)
        ));
    }

    #[test]
    fn method_names_match_the_paper() {
        assert_eq!(MethodId::QbsParallel.name(), "QbS-P");
        assert_eq!(MethodId::BiBfs.name(), "Bi-BFS");
        assert_eq!(MethodId::TABLE2.len(), 5);
    }
}
