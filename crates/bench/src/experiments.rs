//! The experiments of §6, one function per table/figure.
//!
//! Every function takes an [`ExperimentConfig`], returns a serialisable
//! result struct and can render itself as a paper-style text table. The
//! `experiments` binary stitches these together; the unit tests exercise
//! them on the smoke configuration so the whole evaluation pipeline is
//! covered by `cargo test`.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use qbs_baselines::BiBfs;
use qbs_core::coverage::{classify_workload, CoverageReport};
use qbs_core::{parallel, LandmarkStrategy, QbsConfig, QbsError, QbsIndex};
use qbs_gen::catalog::DatasetSpec;
use qbs_graph::stats::GraphStats;

use crate::engines::{build_method, BuildOutcome, MethodId, QbsEngine};
use crate::reporting::{fmt_bytes, fmt_count, fmt_millis, fmt_seconds, TextTable};
use crate::runner::{time_query_batch, ExperimentConfig, QueryTiming};

// ---------------------------------------------------------------------------
// Table 1 — dataset statistics
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// Two-letter abbreviation.
    pub abbrev: String,
    /// Network type column.
    pub network_type: String,
    /// `|V|`.
    pub vertices: usize,
    /// `|E_un|`.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Average sampled distance.
    pub avg_distance: f64,
    /// `|G|` in bytes.
    pub graph_bytes: usize,
}

/// Table 1: statistics of the dataset stand-ins.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1 {
    /// One row per dataset.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 1: dataset stand-ins",
            &[
                "Dataset", "Type", "|V|", "|E_un|", "max.deg", "avg.deg", "avg.dist", "|G|",
            ],
        );
        for r in &self.rows {
            t.add_row(vec![
                format!("{} ({})", r.dataset, r.abbrev),
                r.network_type.clone(),
                fmt_count(r.vertices),
                fmt_count(r.edges),
                fmt_count(r.max_degree),
                format!("{:.2}", r.avg_degree),
                format!("{:.2}", r.avg_distance),
                fmt_bytes(r.graph_bytes),
            ]);
        }
        t.render()
    }
}

/// Regenerates Table 1.
pub fn table1(config: &ExperimentConfig) -> Table1 {
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let stats = GraphStats::compute(&graph, config.query_count.min(2_000));
            Table1Row {
                dataset: spec.id.name().to_string(),
                abbrev: spec.id.abbrev().to_string(),
                network_type: spec.id.network_type().to_string(),
                vertices: stats.num_vertices,
                edges: stats.num_edges,
                max_degree: stats.max_degree,
                avg_degree: stats.avg_degree,
                avg_distance: stats.avg_distance.unwrap_or(0.0),
                graph_bytes: stats.size_bytes,
            }
        })
        .collect();
    Table1 { rows }
}

// ---------------------------------------------------------------------------
// Table 2 — construction time and average query time
// ---------------------------------------------------------------------------

/// The build/query outcome of one method on one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum MethodResult {
    /// Built and queried successfully.
    Ok {
        /// Construction time in seconds (0 for search-only methods).
        construction_seconds: f64,
        /// Average query time in milliseconds.
        avg_query_ms: f64,
    },
    /// Construction exceeded the time budget.
    DidNotFinish,
    /// Construction exceeded the memory budget.
    OutOfMemory,
}

impl MethodResult {
    fn construction_cell(&self) -> String {
        match self {
            MethodResult::Ok {
                construction_seconds,
                ..
            } => fmt_seconds(*construction_seconds),
            MethodResult::DidNotFinish => "DNF".into(),
            MethodResult::OutOfMemory => "OOE".into(),
        }
    }

    fn query_cell(&self) -> String {
        match self {
            MethodResult::Ok { avg_query_ms, .. } => fmt_millis(*avg_query_ms),
            _ => "-".into(),
        }
    }
}

/// One row of Table 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Per-method outcome, keyed by the method's display name.
    pub methods: BTreeMap<String, MethodResult>,
}

/// Table 2: construction time and average query time per method.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2 {
    /// One row per dataset.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Renders construction and query sub-tables.
    pub fn render(&self) -> String {
        let methods: Vec<&str> = MethodId::TABLE2.iter().map(|m| m.name()).collect();
        let mut construction = TextTable::new(
            "Table 2a: construction time (seconds)",
            &[&["Dataset"], &methods[..4]].concat(),
        );
        let query_methods = ["QbS", "PPL", "ParentPPL", "Bi-BFS"];
        let mut query = TextTable::new(
            "Table 2b: average query time (ms)",
            &[&["Dataset"], &query_methods[..]].concat(),
        );
        for row in &self.rows {
            let cell = |name: &str| row.methods.get(name);
            construction.add_row(vec![
                row.dataset.clone(),
                cell("QbS-P")
                    .map(|m| m.construction_cell())
                    .unwrap_or_else(|| "-".into()),
                cell("QbS")
                    .map(|m| m.construction_cell())
                    .unwrap_or_else(|| "-".into()),
                cell("PPL")
                    .map(|m| m.construction_cell())
                    .unwrap_or_else(|| "-".into()),
                cell("ParentPPL")
                    .map(|m| m.construction_cell())
                    .unwrap_or_else(|| "-".into()),
            ]);
            query.add_row(vec![
                row.dataset.clone(),
                cell("QbS")
                    .map(|m| m.query_cell())
                    .unwrap_or_else(|| "-".into()),
                cell("PPL")
                    .map(|m| m.query_cell())
                    .unwrap_or_else(|| "-".into()),
                cell("ParentPPL")
                    .map(|m| m.query_cell())
                    .unwrap_or_else(|| "-".into()),
                cell("Bi-BFS")
                    .map(|m| m.query_cell())
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        format!("{}\n{}", construction.render(), query.render())
    }
}

/// Regenerates Table 2.
///
/// Query times are measured through the engines' batch API
/// ([`time_query_batch`]): every method amortises its per-query scratch
/// state across the workload, the regime the paper's serving numbers
/// assume. Build-environment failures propagate as errors.
pub fn table2(config: &ExperimentConfig) -> Result<Table2, QbsError> {
    let rows = config
        .specs()
        .iter()
        .map(|spec| table2_row(config, spec))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Table2 { rows })
}

fn table2_row(config: &ExperimentConfig, spec: &DatasetSpec) -> Result<Table2Row, QbsError> {
    let graph = config.graph_for(spec);
    let workload = config.workload_for(&graph);
    let mut methods = BTreeMap::new();
    for method in MethodId::TABLE2 {
        let outcome = build_method(
            method,
            &graph,
            config.landmark_count,
            config.limits.to_build_limits(),
        )?;
        let result = match outcome {
            BuildOutcome::Built {
                engine,
                construction,
            } => {
                let timing: QueryTiming = time_query_batch(&engine, workload.pairs());
                MethodResult::Ok {
                    construction_seconds: construction.as_secs_f64(),
                    avg_query_ms: timing.avg_ms,
                }
            }
            BuildOutcome::DidNotFinish => MethodResult::DidNotFinish,
            BuildOutcome::OutOfMemory => MethodResult::OutOfMemory,
        };
        methods.insert(method.name().to_string(), result);
    }
    Ok(Table2Row {
        dataset: spec.id.name().to_string(),
        methods,
    })
}

// ---------------------------------------------------------------------------
// Table 3 — labelling sizes
// ---------------------------------------------------------------------------

/// One row of Table 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// QbS `size(L)` in bytes.
    pub qbs_labelling_bytes: usize,
    /// QbS `size(Δ)` in bytes.
    pub qbs_delta_bytes: usize,
    /// Graph adjacency size (for the "smaller than the graph" comparison).
    pub graph_bytes: usize,
    /// PPL labelling bytes (`None` when its build hit a budget).
    pub ppl_bytes: Option<usize>,
    /// ParentPPL labelling bytes (`None` when its build hit a budget).
    pub parent_ppl_bytes: Option<usize>,
}

/// Table 3: labelling sizes of QbS, PPL and ParentPPL.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per dataset.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 3: labelling sizes",
            &[
                "Dataset",
                "QbS size(L)",
                "QbS size(Δ)",
                "PPL",
                "ParentPPL",
                "|G|",
            ],
        );
        for r in &self.rows {
            t.add_row(vec![
                r.dataset.clone(),
                fmt_bytes(r.qbs_labelling_bytes),
                fmt_bytes(r.qbs_delta_bytes),
                r.ppl_bytes.map(fmt_bytes).unwrap_or_else(|| "-".into()),
                r.parent_ppl_bytes
                    .map(fmt_bytes)
                    .unwrap_or_else(|| "-".into()),
                fmt_bytes(r.graph_bytes),
            ]);
        }
        t.render()
    }
}

/// Regenerates Table 3.
pub fn table3(config: &ExperimentConfig) -> Table3 {
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let qbs = QbsIndex::build(
                graph.clone(),
                QbsConfig::with_landmark_count(config.landmark_count),
            );
            let stats = qbs.stats();
            let limits = config.limits.to_build_limits();
            let ppl_bytes = qbs_baselines::Ppl::build_with_limits(graph.clone(), limits)
                .ok()
                .map(|p| p.labelling_size_bytes());
            let parent_ppl_bytes =
                qbs_baselines::ParentPpl::build_with_limits(graph.clone(), limits)
                    .ok()
                    .map(|p| p.labelling_size_bytes());
            Table3Row {
                dataset: spec.id.name().to_string(),
                qbs_labelling_bytes: stats.labelling_paper_bytes,
                qbs_delta_bytes: stats.delta_bytes,
                graph_bytes: stats.graph_bytes,
                ppl_bytes,
                parent_ppl_bytes,
            }
        })
        .collect();
    Table3 { rows }
}

// ---------------------------------------------------------------------------
// Figure 7 — distance distribution of the query workload
// ---------------------------------------------------------------------------

/// The distance distribution of one dataset's workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7Series {
    /// Dataset abbreviation.
    pub dataset: String,
    /// `fractions[d]` = fraction of sampled pairs at distance `d`.
    pub fractions: Vec<f64>,
    /// Mean sampled distance.
    pub mean_distance: f64,
}

/// Figure 7: distance distribution of the sampled query pairs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7 {
    /// One series per dataset.
    pub series: Vec<Fig7Series>,
}

impl Fig7 {
    /// Renders one row per dataset with the per-distance fractions.
    pub fn render(&self) -> String {
        let max_d = self
            .series
            .iter()
            .map(|s| s.fractions.len())
            .max()
            .unwrap_or(0);
        let header: Vec<String> = std::iter::once("Dataset".to_string())
            .chain((0..max_d).map(|d| format!("d={d}")))
            .chain(std::iter::once("mean".to_string()))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new("Figure 7: query distance distribution", &header_refs);
        for s in &self.series {
            let mut row = vec![s.dataset.clone()];
            for d in 0..max_d {
                row.push(format!("{:.3}", s.fractions.get(d).copied().unwrap_or(0.0)));
            }
            row.push(format!("{:.2}", s.mean_distance));
            t.add_row(row);
        }
        t.render()
    }
}

/// Regenerates Figure 7.
pub fn fig7(config: &ExperimentConfig) -> Fig7 {
    let series = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let histogram = workload.distance_histogram(&graph);
            Fig7Series {
                dataset: spec.id.abbrev().to_string(),
                fractions: histogram.fractions(),
                mean_distance: histogram.mean().unwrap_or(0.0),
            }
        })
        .collect();
    Fig7 { series }
}

// ---------------------------------------------------------------------------
// Figures 8–11 — landmark sweeps
// ---------------------------------------------------------------------------

/// One measurement of a landmark sweep for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of landmarks `|R|`.
    pub landmarks: usize,
    /// Pair-coverage report at this landmark count (Figure 8).
    pub coverage: CoverageReport,
    /// Labelling size `size(L) + size(Δ)` in bytes (Figure 9).
    pub labelling_bytes: usize,
    /// Sequential labelling construction time in seconds (Figure 10).
    pub construction_seconds: f64,
    /// Average query time in milliseconds (Figure 11).
    pub avg_query_ms: f64,
}

/// A full landmark sweep for one dataset (shared by Figures 8–11).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Dataset abbreviation.
    pub dataset: String,
    /// One point per swept landmark count.
    pub points: Vec<SweepPoint>,
}

/// The landmark sweep behind Figures 8, 9, 10 and 11.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LandmarkSweep {
    /// One series per dataset.
    pub series: Vec<SweepSeries>,
}

impl LandmarkSweep {
    fn render_metric(&self, title: &str, metric: impl Fn(&SweepPoint) -> String) -> String {
        let counts: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.landmarks).collect())
            .unwrap_or_default();
        let header: Vec<String> = std::iter::once("Dataset".to_string())
            .chain(counts.iter().map(|c| format!("|R|={c}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(title, &header_refs);
        for s in &self.series {
            let mut row = vec![s.dataset.clone()];
            for p in &s.points {
                row.push(metric(p));
            }
            t.add_row(row);
        }
        t.render()
    }

    /// Figure 8 rendering: pair coverage ratio (case i + case ii).
    pub fn render_fig8(&self) -> String {
        self.render_metric("Figure 8: pair coverage ratio vs |R|", |p| {
            format!(
                "{:.2} ({:.2} all)",
                p.coverage.pair_coverage_ratio(),
                p.coverage.all_through_ratio()
            )
        })
    }

    /// Figure 9 rendering: labelling size.
    pub fn render_fig9(&self) -> String {
        self.render_metric("Figure 9: labelling size vs |R|", |p| {
            fmt_bytes(p.labelling_bytes)
        })
    }

    /// Figure 10 rendering: construction time.
    pub fn render_fig10(&self) -> String {
        self.render_metric("Figure 10: construction time (s) vs |R|", |p| {
            fmt_seconds(p.construction_seconds)
        })
    }

    /// Figure 11 rendering: average query time.
    pub fn render_fig11(&self) -> String {
        self.render_metric("Figure 11: avg query time (ms) vs |R|", |p| {
            fmt_millis(p.avg_query_ms)
        })
    }
}

/// Runs the landmark sweep shared by Figures 8–11.
pub fn landmark_sweep(config: &ExperimentConfig) -> LandmarkSweep {
    let series = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let points = config
                .landmark_sweep
                .iter()
                .map(|&count| {
                    // Sequential construction time isolates the per-landmark
                    // BFS cost (Figure 10's linear trend).
                    let start = Instant::now();
                    let index = QbsIndex::build(
                        graph.clone(),
                        QbsConfig::with_landmark_count(count).sequential(),
                    );
                    let construction_seconds = start.elapsed().as_secs_f64();
                    let coverage = classify_workload(&index, workload.pairs());
                    let stats = index.stats();
                    let engine_pairs = workload.pairs();
                    // Fig. 11 measures the steady-state query path: one
                    // reused workspace, as a serving deployment would run.
                    let mut ws = qbs_core::QueryWorkspace::new();
                    let t0 = Instant::now();
                    for &(u, v) in engine_pairs {
                        let _ = index.query_with(&mut ws, u, v);
                    }
                    let avg_query_ms = if engine_pairs.is_empty() {
                        0.0
                    } else {
                        t0.elapsed().as_secs_f64() * 1e3 / engine_pairs.len() as f64
                    };
                    SweepPoint {
                        landmarks: count,
                        coverage,
                        labelling_bytes: stats.labelling_paper_bytes + stats.delta_bytes,
                        construction_seconds,
                        avg_query_ms,
                    }
                })
                .collect();
            SweepSeries {
                dataset: spec.id.abbrev().to_string(),
                points,
            }
        })
        .collect();
    LandmarkSweep { series }
}

/// Figure 8 (pair coverage): a thin wrapper over [`landmark_sweep`].
pub fn fig8(config: &ExperimentConfig) -> LandmarkSweep {
    landmark_sweep(config)
}

// ---------------------------------------------------------------------------
// §6.5 — edges traversed: QbS vs Bi-BFS
// ---------------------------------------------------------------------------

/// Traversal comparison for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraversalRow {
    /// Dataset name.
    pub dataset: String,
    /// Average edges traversed per query by the QbS guided search.
    pub qbs_edges: f64,
    /// Average edges traversed per query by Bi-BFS on the full graph.
    pub bibfs_edges: f64,
    /// Fraction of traversal saved by QbS (`1 - qbs/bibfs`).
    pub saving: f64,
}

/// The §6.5 "edges traversed" comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Traversal {
    /// One row per dataset.
    pub rows: Vec<TraversalRow>,
}

impl Traversal {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Section 6.5: average edges traversed per query",
            &["Dataset", "QbS", "Bi-BFS", "saving"],
        );
        for r in &self.rows {
            t.add_row(vec![
                r.dataset.clone(),
                format!("{:.0}", r.qbs_edges),
                format!("{:.0}", r.bibfs_edges),
                format!("{:.0}%", r.saving * 100.0),
            ]);
        }
        t.render()
    }
}

/// Regenerates the §6.5 traversal comparison.
pub fn traversal(config: &ExperimentConfig) -> Traversal {
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let index = QbsIndex::build(
                graph.clone(),
                QbsConfig::with_landmark_count(config.landmark_count),
            );
            let bibfs = BiBfs::new(graph);
            let mut qbs_edges = 0usize;
            let mut bibfs_edges = 0usize;
            for &(u, v) in workload.pairs() {
                qbs_edges += index
                    .query_with_stats(u, v)
                    .expect("workload pairs are in range")
                    .stats
                    .edges_traversed;
                bibfs_edges += bibfs.query_with_effort(u, v).effort.edges_traversed;
            }
            let n = workload.len().max(1) as f64;
            let (qbs_avg, bibfs_avg) = (qbs_edges as f64 / n, bibfs_edges as f64 / n);
            TraversalRow {
                dataset: spec.id.name().to_string(),
                qbs_edges: qbs_avg,
                bibfs_edges: bibfs_avg,
                saving: if bibfs_avg > 0.0 {
                    1.0 - qbs_avg / bibfs_avg
                } else {
                    0.0
                },
            }
        })
        .collect();
    Traversal { rows }
}

// ---------------------------------------------------------------------------
// View serving — owned-vs-view engine differential (CI drift tripwire)
// ---------------------------------------------------------------------------

/// View-serving differential result for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ViewServingRow {
    /// Dataset name.
    pub dataset: String,
    /// Number of workload pairs compared.
    pub pairs: usize,
    /// Average batch query time over the owned index (ms/query).
    pub owned_ms: f64,
    /// Average batch query time over the mmap-backed view store (ms/query).
    pub view_ms: f64,
    /// Whether every answer (path graph, sketch, stats) was bit-identical.
    pub identical: bool,
}

/// The view-serving differential: the batch engine is run once over the
/// owned index and once over an mmap-backed [`qbs_core::ViewStore`] of the
/// same index written to disk, and every answer is compared. CI runs this
/// at tiny scale so any owned-vs-view drift fails the pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ViewServing {
    /// One row per dataset.
    pub rows: Vec<ViewServingRow>,
}

impl ViewServing {
    /// Whether every dataset produced bit-identical answers.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "View serving: owned engine vs mmap-backed view engine",
            &["Dataset", "pairs", "owned ms", "view ms", "identical"],
        );
        for r in &self.rows {
            t.add_row(vec![
                r.dataset.clone(),
                fmt_count(r.pairs),
                fmt_millis(r.owned_ms),
                fmt_millis(r.view_ms),
                if r.identical {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        t.render()
    }
}

/// Runs the view-serving differential: build → save v2 → mmap → serve from
/// the file, comparing every batch answer against the owned engine.
pub fn view_serving(config: &ExperimentConfig) -> Result<ViewServing, QbsError> {
    // Unique per-run directory: concurrent harness runs (or the unit test
    // alongside a manual invocation) must never save into a file another
    // process is about to mmap.
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "qbs_bench_view_serving_{}_{nonce}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let pairs = workload.pairs();
            let owned =
                QbsIndex::try_build(graph, QbsConfig::with_landmark_count(config.landmark_count))?;
            let path = dir.join(format!("{}.qbs2", spec.id.abbrev()));
            qbs_core::serialize::save_to_file(&owned, &path)?;
            let store = qbs_core::serialize::open_store_from_file(&path, qbs_core::MapMode::Mmap)?;

            let owned_engine = qbs_core::QueryEngine::with_threads(&owned, 2)?;
            let view_engine = qbs_core::QueryEngine::with_threads(&store, 2)?;
            let requests = path_graph_requests(pairs);
            let t0 = Instant::now();
            let owned_answers = owned_engine.submit(&requests);
            let owned_ms = per_query_ms(t0.elapsed(), pairs.len());
            let t0 = Instant::now();
            let view_answers = view_engine.submit(&requests);
            let view_ms = per_query_ms(t0.elapsed(), pairs.len());

            let identical = owned_answers == view_answers;
            std::fs::remove_file(&path).ok();
            Ok(ViewServingRow {
                dataset: spec.id.name().to_string(),
                pairs: pairs.len(),
                owned_ms,
                view_ms,
                identical,
            })
        })
        .collect::<Result<Vec<_>, QbsError>>()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(ViewServing { rows })
}

fn path_graph_requests(pairs: &[(u32, u32)]) -> Vec<qbs_core::QueryRequest> {
    pairs
        .iter()
        .map(|&(u, v)| qbs_core::QueryRequest::path_graph(u, v).with_stats())
        .collect()
}

fn distance_requests(pairs: &[(u32, u32)]) -> Vec<qbs_core::QueryRequest> {
    pairs
        .iter()
        .map(|&(u, v)| qbs_core::QueryRequest::distance(u, v))
        .collect()
}

fn per_query_ms(elapsed: std::time::Duration, queries: usize) -> f64 {
    if queries == 0 {
        0.0
    } else {
        elapsed.as_secs_f64() * 1e3 / queries as f64
    }
}

// ---------------------------------------------------------------------------
// Compact serving — wide-vs-compact profile differential (CI drift tripwire)
// ---------------------------------------------------------------------------

/// Compact-serving differential result for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompactServingRow {
    /// Dataset name.
    pub dataset: String,
    /// Number of workload pairs compared.
    pub pairs: usize,
    /// On-disk size of the wide `qbs-index-v2` file (bytes).
    pub wide_bytes: u64,
    /// On-disk size of the compact `qbs-index-v3` file (bytes).
    pub compact_bytes: u64,
    /// Bytes saved by the compact profile, as a percentage of the wide file.
    pub percent_saved: f64,
    /// Average batch query time over the owned index (ms/query).
    pub owned_ms: f64,
    /// Average batch query time over the mmap-backed compact store
    /// (ms/query).
    pub compact_ms: f64,
    /// Distance-batch throughput over the mmap-backed wide store
    /// (queries/s).
    pub wide_dist_qps: f64,
    /// Distance-batch throughput over the mmap-backed compact store
    /// (queries/s).
    pub compact_dist_qps: f64,
    /// Whether every answer (path graphs and distances, wide and compact,
    /// owned and mmap) was bit-identical.
    pub identical: bool,
}

/// The compact-serving differential: the same index is written in both
/// binary profiles, both files are mmapped back, and the batch engine's
/// answers plus distance batches are compared across owned / wide-view /
/// compact-view serving. CI runs this at tiny scale so any wide-vs-compact
/// drift fails the pipeline; the row also records the file-size saving and
/// the distance throughput of both profiles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompactServing {
    /// One row per dataset.
    pub rows: Vec<CompactServingRow>,
}

impl CompactServing {
    /// Whether every dataset produced bit-identical answers.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Compact serving: wide vs compact profile (both mmap-backed)",
            &[
                "Dataset",
                "pairs",
                "wide B",
                "compact B",
                "saved",
                "wide dist q/s",
                "compact dist q/s",
                "identical",
            ],
        );
        for r in &self.rows {
            t.add_row(vec![
                r.dataset.clone(),
                fmt_count(r.pairs),
                fmt_count(r.wide_bytes as usize),
                fmt_count(r.compact_bytes as usize),
                format!("{:.1}%", r.percent_saved),
                fmt_count(r.wide_dist_qps as usize),
                fmt_count(r.compact_dist_qps as usize),
                if r.identical {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        t.render()
    }
}

/// Runs the compact-serving differential: build → save v2 and v3 → mmap
/// both → serve from the files, comparing every batch answer and distance
/// against the owned engine and recording size and throughput.
pub fn compact_serving(config: &ExperimentConfig) -> Result<CompactServing, QbsError> {
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "qbs_bench_compact_serving_{}_{nonce}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let pairs = workload.pairs();
            let owned =
                QbsIndex::try_build(graph, QbsConfig::with_landmark_count(config.landmark_count))?;
            let wide_path = dir.join(format!("{}.qbs2", spec.id.abbrev()));
            let compact_path = dir.join(format!("{}.qbs3", spec.id.abbrev()));
            qbs_core::serialize::save_to_file(&owned, &wide_path)?;
            qbs_core::serialize::save_to_file_with_profile(
                &owned,
                &compact_path,
                qbs_core::serialize::IndexFormat::Binary,
                qbs_core::IndexProfile::Compact,
            )?;
            let wide_bytes = std::fs::metadata(&wide_path)?.len();
            let compact_bytes = std::fs::metadata(&compact_path)?.len();

            let wide_store =
                qbs_core::serialize::open_store_from_file(&wide_path, qbs_core::MapMode::Mmap)?;
            let compact_store = qbs_core::serialize::open_compact_store_from_file(
                &compact_path,
                qbs_core::MapMode::Mmap,
            )?;

            let owned_engine = qbs_core::QueryEngine::with_threads(&owned, 2)?;
            let wide_engine = qbs_core::QueryEngine::with_threads(&wide_store, 2)?;
            let compact_engine = qbs_core::QueryEngine::with_threads(&compact_store, 2)?;

            let requests = path_graph_requests(pairs);
            let dist_requests = distance_requests(pairs);
            let t0 = Instant::now();
            let owned_answers = owned_engine.submit(&requests);
            let owned_ms = per_query_ms(t0.elapsed(), pairs.len());
            let t0 = Instant::now();
            let compact_answers = compact_engine.submit(&requests);
            let compact_ms = per_query_ms(t0.elapsed(), pairs.len());
            let wide_answers = wide_engine.submit(&requests);

            let t0 = Instant::now();
            let wide_dists = wide_engine.submit(&dist_requests);
            let wide_dist_qps = qps(t0.elapsed(), pairs.len());
            let t0 = Instant::now();
            let compact_dists = compact_engine.submit(&dist_requests);
            let compact_dist_qps = qps(t0.elapsed(), pairs.len());
            let owned_dists = owned_engine.submit(&dist_requests);

            let identical = owned_answers == compact_answers
                && owned_answers == wide_answers
                && owned_dists == compact_dists
                && owned_dists == wide_dists;
            std::fs::remove_file(&wide_path).ok();
            std::fs::remove_file(&compact_path).ok();
            Ok(CompactServingRow {
                dataset: spec.id.name().to_string(),
                pairs: pairs.len(),
                wide_bytes,
                compact_bytes,
                percent_saved: if wide_bytes > 0 {
                    100.0 * (1.0 - compact_bytes as f64 / wide_bytes as f64)
                } else {
                    0.0
                },
                owned_ms,
                compact_ms,
                wide_dist_qps,
                compact_dist_qps,
                identical,
            })
        })
        .collect::<Result<Vec<_>, QbsError>>()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(CompactServing { rows })
}

fn qps(elapsed: std::time::Duration, queries: usize) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        queries as f64 / secs
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// Mixed-batch — request-pipeline differential (CI drift tripwire)
// ---------------------------------------------------------------------------

/// Mixed-batch differential result for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MixedBatchRow {
    /// Dataset name.
    pub dataset: String,
    /// Number of requests in the heterogeneous batch (incl. the poisoned
    /// pair).
    pub requests: usize,
    /// Error outcomes observed (must be exactly 1: the poisoned pair).
    pub error_slots: usize,
    /// Whether every outcome matched: owned vs mmap-view backends, the
    /// legacy per-query entry points, and warm-cache vs cold answers.
    pub identical: bool,
    /// Cold (uncached) batch time, ms/request.
    pub cold_ms: f64,
    /// Warm-cache batch time, ms/request.
    pub warm_ms: f64,
    /// Cache hit rate of the warm pass.
    pub cache_hit_rate: f64,
}

/// The mixed-batch differential: a heterogeneous distance/path/sketch
/// batch (with one poisoned pair mid-batch) is submitted through the
/// request pipeline over both storage backends and checked slot-by-slot
/// against the legacy entry points; a cache-enabled engine then re-runs
/// the batch warm and must produce bit-identical outcomes. CI runs this at
/// tiny scale and fails the pipeline on any drift.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MixedBatch {
    /// One row per dataset.
    pub rows: Vec<MixedBatchRow>,
}

impl MixedBatch {
    /// Whether every dataset's batch was fully consistent.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical && r.error_slots == 1)
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Mixed batch: request pipeline vs legacy paths (+ cache warm/cold)",
            &[
                "Dataset",
                "requests",
                "errors",
                "cold ms",
                "warm ms",
                "speedup",
                "hit rate",
                "identical",
            ],
        );
        for r in &self.rows {
            let speedup = if r.warm_ms > 0.0 {
                r.cold_ms / r.warm_ms
            } else {
                0.0
            };
            t.add_row(vec![
                r.dataset.clone(),
                fmt_count(r.requests),
                fmt_count(r.error_slots),
                fmt_millis(r.cold_ms),
                fmt_millis(r.warm_ms),
                format!("{speedup:.1}x"),
                format!("{:.0}%", r.cache_hit_rate * 100.0),
                if r.identical {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        t.render()
    }
}

/// Builds the heterogeneous request batch of one dataset: modes cycle over
/// the workload, one out-of-range pair is spliced into the middle.
fn mixed_requests(
    pairs: &[(qbs_graph::VertexId, qbs_graph::VertexId)],
    num_vertices: usize,
) -> Vec<qbs_core::QueryRequest> {
    use qbs_core::QueryRequest;
    let mut requests: Vec<QueryRequest> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| match i % 4 {
            0 => QueryRequest::distance(u, v),
            1 => QueryRequest::path_graph(u, v),
            2 => QueryRequest::path_graph(u, v).with_stats(),
            _ => QueryRequest::sketch(u, v),
        })
        .collect();
    let poison = num_vertices as qbs_graph::VertexId;
    requests.insert(requests.len() / 2, QueryRequest::distance(poison, 0));
    requests
}

/// Checks one submit run slot-by-slot against the legacy single-query
/// entry points; returns `false` on any mismatch.
fn outcomes_match_legacy(
    index: &QbsIndex,
    requests: &[qbs_core::QueryRequest],
    outcomes: &[qbs_core::QueryOutcome],
) -> bool {
    use qbs_core::QueryMode;
    if requests.len() != outcomes.len() {
        return false;
    }
    requests.iter().zip(outcomes).all(|(req, outcome)| {
        let in_range = (req.source as usize) < index.graph().num_vertices()
            && (req.target as usize) < index.graph().num_vertices();
        if !in_range {
            return outcome.is_error();
        }
        match req.mode {
            QueryMode::Distance => {
                outcome.distance() == Some(index.distance(req.source, req.target).expect("range"))
            }
            QueryMode::PathGraph => {
                let expected = index
                    .query_with_stats(req.source, req.target)
                    .expect("range");
                outcome.path_graph() == Some(&expected.path_graph)
                    && (!req.opts.collect_stats || outcome.answer() == Some(&expected))
            }
            QueryMode::Sketch => {
                outcome.sketch() == Some(&index.sketch(req.source, req.target).expect("range"))
            }
        }
    })
}

/// Runs the mixed-batch differential: build → save v2 → mmap → submit the
/// heterogeneous batch over both backends → compare against the legacy
/// entry points → re-run warm through the answer cache.
pub fn mixed_batch(config: &ExperimentConfig) -> Result<MixedBatch, QbsError> {
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "qbs_bench_mixed_batch_{}_{nonce}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let owned =
                QbsIndex::try_build(graph, QbsConfig::with_landmark_count(config.landmark_count))?;
            let requests = mixed_requests(workload.pairs(), owned.graph().num_vertices());
            let path = dir.join(format!("{}.qbs2", spec.id.abbrev()));
            qbs_core::serialize::save_to_file(&owned, &path)?;
            let store = qbs_core::serialize::open_store_from_file(&path, qbs_core::MapMode::Mmap)?;

            let owned_engine = qbs_core::QueryEngine::with_threads(&owned, 2)?;
            let view_engine = qbs_core::QueryEngine::with_threads(&store, 2)?;
            let t0 = Instant::now();
            let owned_outcomes = owned_engine.submit(&requests);
            let cold_ms = per_query_ms(t0.elapsed(), requests.len());
            let view_outcomes = view_engine.submit(&requests);

            let error_slots = owned_outcomes.iter().filter(|o| o.is_error()).count();
            let mut identical = owned_outcomes == view_outcomes
                && outcomes_match_legacy(&owned, &requests, &owned_outcomes);

            // Cache pass: cold fill, then a warm run that must be
            // bit-identical to the uncached outcomes.
            let cached_engine = qbs_core::QueryEngine::with_threads(&owned, 2)?
                .with_answer_cache(qbs_core::CacheConfig::default().admit_above(0));
            let cold_cached = cached_engine.submit(&requests);
            let t0 = Instant::now();
            let warm = cached_engine.submit(&requests);
            let warm_ms = per_query_ms(t0.elapsed(), requests.len());
            identical &= cold_cached == owned_outcomes && warm == owned_outcomes;
            let cache_hit_rate = cached_engine
                .cache_stats()
                .map(|s| s.hit_ratio())
                .unwrap_or(0.0);

            std::fs::remove_file(&path).ok();
            Ok(MixedBatchRow {
                dataset: spec.id.name().to_string(),
                requests: requests.len(),
                error_slots,
                identical,
                cold_ms,
                warm_ms,
                cache_hit_rate,
            })
        })
        .collect::<Result<Vec<_>, QbsError>>()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(MixedBatch { rows })
}

// ---------------------------------------------------------------------------
// Batch planner — planner on/off differential over all backends (CI tripwire)
// ---------------------------------------------------------------------------

/// Batch-planner differential result for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchPlanRow {
    /// Dataset name.
    pub dataset: String,
    /// Requests in the Zipf-skewed batch (incl. duplicates).
    pub requests: usize,
    /// Whether planner-on outcomes matched planner-off outcomes on the
    /// owned, mmap-view and compact backends, slot for slot.
    pub identical: bool,
    /// Planner-off batch throughput on the owned backend (req/s).
    pub off_qps: f64,
    /// Planner-on batch throughput on the owned backend (req/s).
    pub on_qps: f64,
    /// Duplicate slots coalesced by the planner.
    pub dedup_hits: u64,
    /// Label fetches served from the per-batch memo.
    pub labels_memoized: u64,
    /// Forward-BFS levels reused from retained same-source state.
    pub fwd_levels_reused: u64,
}

/// The batch-planner differential: a Zipf-skewed distance batch is
/// submitted with the planner on and off over all three backends; any
/// slot-level disagreement is drift. CI runs this at tiny scale and fails
/// the pipeline on any drift; throughput and reuse counters are recorded
/// so the planner's payoff is tracked per PR.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchPlan {
    /// One row per dataset.
    pub rows: Vec<BatchPlanRow>,
}

impl BatchPlan {
    /// Whether every dataset's planned batch was bit-identical.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Batch planner: planner on/off over owned + view + compact backends",
            &[
                "Dataset",
                "requests",
                "off q/s",
                "on q/s",
                "speedup",
                "coalesced",
                "labels memo",
                "lvls reused",
                "identical",
            ],
        );
        for r in &self.rows {
            let speedup = if r.off_qps > 0.0 {
                r.on_qps / r.off_qps
            } else {
                0.0
            };
            t.add_row(vec![
                r.dataset.clone(),
                fmt_count(r.requests),
                format!("{:.0}", r.off_qps),
                format!("{:.0}", r.on_qps),
                format!("{speedup:.2}x"),
                fmt_count(r.dedup_hits as usize),
                fmt_count(r.labels_memoized as usize),
                fmt_count(r.fwd_levels_reused as usize),
                if r.identical {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        t.render()
    }
}

/// Runs the batch-planner differential: build → Zipf batch → planner
/// on/off over owned, mmap-view and compact backends → slot-by-slot
/// comparison (plus the one-at-a-time reference).
pub fn batch_plan(config: &ExperimentConfig) -> Result<BatchPlan, QbsError> {
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "qbs_bench_batch_plan_{}_{nonce}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload =
                qbs_gen::QueryWorkload::sample_zipf(&graph, config.query_count, config.seed, 1.5);
            let owned =
                QbsIndex::try_build(graph, QbsConfig::with_landmark_count(config.landmark_count))?;
            let requests: Vec<qbs_core::QueryRequest> = workload
                .pairs()
                .iter()
                .map(|&(u, v)| qbs_core::QueryRequest::distance(u, v))
                .collect();

            let path = dir.join(format!("{}.qbs2", spec.id.abbrev()));
            qbs_core::serialize::save_to_file(&owned, &path)?;
            let view = qbs_core::serialize::open_store_from_file(&path, qbs_core::MapMode::Mmap)?;
            let compact = qbs_core::CompactStore::new(owned.as_compact_view()?);

            // One-at-a-time reference off the owned backend.
            let mut ws = qbs_core::QueryWorkspace::new();
            let reference: Vec<qbs_core::QueryOutcome> = requests
                .iter()
                .map(|req| qbs_core::execute_on(&owned, &mut ws, req))
                .collect();

            // One warmup submit per engine so the timed pass measures the
            // planner, not workspace-pool allocation.
            let planned = qbs_core::QueryEngine::with_threads(&owned, 2)?;
            planned.submit(&requests);
            let t0 = Instant::now();
            let on = planned.submit(&requests);
            let on_qps = qps(t0.elapsed(), requests.len());
            let stats = planned.planner_stats();

            let vanilla = qbs_core::QueryEngine::with_threads(&owned, 2)?.with_planner(false);
            vanilla.submit(&requests);
            let t0 = Instant::now();
            let off = vanilla.submit(&requests);
            let off_qps = qps(t0.elapsed(), requests.len());

            let view_on = qbs_core::QueryEngine::with_threads(&view, 2)?.submit(&requests);
            let compact_on = qbs_core::QueryEngine::with_threads(&compact, 2)?.submit(&requests);
            let identical = on == reference
                && off == reference
                && view_on == reference
                && compact_on == reference;

            std::fs::remove_file(&path).ok();
            Ok(BatchPlanRow {
                dataset: spec.id.name().to_string(),
                requests: requests.len(),
                identical,
                off_qps,
                on_qps,
                dedup_hits: stats.dedup_hits,
                labels_memoized: stats.labels_memoized,
                fwd_levels_reused: stats.fwd_levels_reused,
            })
        })
        .collect::<Result<Vec<_>, QbsError>>()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(BatchPlan { rows })
}

// ---------------------------------------------------------------------------
// Net serving — framed-TCP server differential + throughput (CI tripwire)
// ---------------------------------------------------------------------------

/// Network-serving result for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetServingRow {
    /// Dataset name.
    pub dataset: String,
    /// Concurrent loopback clients in the differential phase.
    pub clients: usize,
    /// Requests served per client (incl. the poisoned pair).
    pub requests_per_client: usize,
    /// Whether every served outcome was bit-identical to local
    /// `Qbs::submit` (poisoned pair included).
    pub identical: bool,
    /// Whether an over-`max_inflight` batch was shed with a typed `Busy`
    /// (not a hang or dropped connection).
    pub busy_typed: bool,
    /// Whether a single pipelined connection (small frames in flight at
    /// once, replies redeemed out of order) served outcomes bit-identical
    /// to local `Qbs::submit`.
    pub pipelined_identical: bool,
    /// Idle connections parked on the reactor while the pipelined phase
    /// ran (the many-idle-socket scenario).
    pub idle_connections: usize,
    /// Reactor threads serving the whole socket set (fixed by design).
    pub reactor_threads: usize,
    /// Loopback serving throughput, requests/sec (all clients combined).
    pub loopback_rps: f64,
    /// In-process `Qbs::submit` throughput on the same batches, req/sec.
    pub inprocess_rps: f64,
    /// Pipelining-depth sweep over one connection, single-request frames:
    /// requests/sec at depth 1.
    pub depth1_rps: f64,
    /// Requests/sec at pipelining depth 4.
    pub depth4_rps: f64,
    /// Requests/sec at pipelining depth 16.
    pub depth16_rps: f64,
}

/// The network-serving differential + throughput record: a real
/// `qbs-server` on an ephemeral loopback port, mmap-backed, hit by
/// concurrent clients with mixed batches (one poisoned pair each), checked
/// bit-for-bit against local `Qbs::submit`; one deliberately over-bound
/// batch must earn a typed `Busy`. CI runs this at tiny scale and fails
/// the pipeline on any drift; the JSON lands in the bench-smoke artifact
/// so serving-layer numbers are tracked alongside index-load, view-query
/// and request-pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetServing {
    /// One row per dataset.
    pub rows: Vec<NetServingRow>,
}

impl NetServing {
    /// Whether every dataset served identically (sequential and
    /// pipelined) and shed typedly.
    pub fn all_ok(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.identical && r.busy_typed && r.pipelined_identical)
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Net serving: framed TCP server vs local Qbs::submit",
            &[
                "Dataset",
                "clients",
                "req/client",
                "loopback rps",
                "in-proc rps",
                "idle conns",
                "d16/d1",
                "busy typed",
                "identical",
                "pipelined",
            ],
        );
        for r in &self.rows {
            let depth_gain = if r.depth1_rps > 0.0 {
                r.depth16_rps / r.depth1_rps
            } else {
                0.0
            };
            t.add_row(vec![
                r.dataset.clone(),
                fmt_count(r.clients),
                fmt_count(r.requests_per_client),
                format!("{:.0}", r.loopback_rps),
                format!("{:.0}", r.inprocess_rps),
                format!("{} @ {} reactor", r.idle_connections, r.reactor_threads),
                format!("{depth_gain:.1}x"),
                if r.busy_typed {
                    "yes".into()
                } else {
                    "NO".into()
                },
                if r.identical {
                    "yes".into()
                } else {
                    "NO".into()
                },
                if r.pipelined_identical {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        t.render()
    }
}

/// Runs the network-serving differential: build → save v2 → mmap → serve
/// over loopback TCP → concurrent mixed-batch clients diffed against local
/// submit → an over-bound batch that must get a typed `Busy`.
pub fn net_serving(config: &ExperimentConfig) -> Result<NetServing, QbsError> {
    use qbs_server::{AdmissionConfig, BatchReply, BusyReason, QbsServer, ServerConfig};

    const CLIENTS: usize = 4;
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "qbs_bench_net_serving_{}_{nonce}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let owned =
                QbsIndex::try_build(graph, QbsConfig::with_landmark_count(config.landmark_count))?;
            let num_vertices = owned.graph().num_vertices();
            let requests = mixed_requests(workload.pairs(), num_vertices);
            let path = dir.join(format!("{}.qbs2", spec.id.abbrev()));
            qbs_core::serialize::save_to_file(&owned, &path)?;

            // The in-flight bound must sit above everything the
            // differential phase can legitimately have executing at once
            // (all CLIENTS batches overlapping), so the only shed the run
            // can observe is the deliberate oversized batch below —
            // otherwise scheduling overlap would flake the tripwire.
            let max_inflight = 2 * CLIENTS * requests.len();
            let qbs = std::sync::Arc::new(
                qbs_core::Qbs::open(&path, qbs_core::MapMode::Mmap)?.with_threads(2)?,
            );
            let mut server = QbsServer::start(
                std::sync::Arc::clone(&qbs),
                ServerConfig {
                    admission: AdmissionConfig {
                        max_inflight,
                        // The oversized probe must clear the batch-size cap
                        // so it reaches (and trips) the in-flight bound.
                        max_batch: max_inflight + 1,
                        ..AdmissionConfig::default()
                    },
                    ..ServerConfig::default()
                },
            )
            .map_err(QbsError::Io)?;
            let addr = server.local_addr().to_string();

            // Local reference outcomes (separate session over the same
            // file, so no state is shared with the server) with the same
            // thread budget as the served session — the overhead column
            // must measure the wire, not a thread-count mismatch.
            let local = qbs_core::Qbs::open(&path, qbs_core::MapMode::Mmap)?.with_threads(2)?;
            let expected = local.submit(&requests);

            // Differential phase: concurrent clients, every reply diffed.
            // Each worker times only its submit span (connection setup is
            // excluded — the metric is serving throughput, not dial
            // latency); the concurrent phase lasts as long as the slowest
            // worker.
            let outcomes_timed: Vec<Option<(bool, f64)>> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..CLIENTS)
                    .map(|_| {
                        let addr = addr.clone();
                        let requests = &requests;
                        let expected = &expected;
                        scope.spawn(move || {
                            let mut client = connect_ready(&addr)?;
                            let t0 = Instant::now();
                            let reply = client.submit(requests).ok()?;
                            let secs = t0.elapsed().as_secs_f64();
                            Some((reply.outcomes()? == &expected[..], secs))
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().unwrap_or(None))
                    .collect()
            });
            let identical = outcomes_timed.iter().all(|r| matches!(r, Some((true, _))));
            let loopback_secs = outcomes_timed
                .iter()
                .flatten()
                .map(|&(_, secs)| secs)
                .fold(0.0f64, f64::max);
            let loopback_rps = if loopback_secs > 0.0 {
                (CLIENTS * requests.len()) as f64 / loopback_secs
            } else {
                0.0
            };

            // In-process baseline on the same batch shape.
            let t0 = Instant::now();
            for _ in 0..CLIENTS {
                local.submit(&requests);
            }
            let inprocess_secs = t0.elapsed().as_secs_f64();
            let inprocess_rps = if inprocess_secs > 0.0 {
                (CLIENTS * requests.len()) as f64 / inprocess_secs
            } else {
                0.0
            };

            // Admission phase: one batch wider than max_inflight must be
            // shed with the typed overload reason.
            let oversized: Vec<qbs_core::QueryRequest> = (0..max_inflight as u32 + 1)
                .map(|i| {
                    qbs_core::QueryRequest::distance(
                        i % num_vertices as u32,
                        (i + 1) % num_vertices as u32,
                    )
                })
                .collect();
            let mut client = connect_ready(&addr)
                .ok_or_else(|| QbsError::Io(std::io::Error::other("no handler within 10s")))?;
            let busy_typed = matches!(
                client.submit(&oversized).map_err(protocol_to_qbs)?,
                BatchReply::Busy(BusyReason::Overloaded { .. })
            );

            // Many-idle-socket scenario: park hundreds of handshaken but
            // silent connections on the reactor, then run the pipelined
            // differential and the depth sweep *through* them — the fixed
            // reactor/worker thread set must keep serving regardless.
            let parked: Vec<_> = (0..512)
                .filter_map(|_| qbs_server::QbsClient::connect(&addr).ok())
                .collect();
            let idle_connections = parked.len();
            let reactor_threads = server.reactor_threads();

            // Pipelined phase: small frames, all in flight on one
            // connection, replies redeemed in *reverse* order — the
            // reassembled outcomes must still match local submit.
            let frames: Vec<&[qbs_core::QueryRequest]> = requests.chunks(2).collect();
            let mut tickets = Vec::with_capacity(frames.len());
            for frame in &frames {
                tickets.push(client.send(frame).map_err(protocol_to_qbs)?);
            }
            let mut slots: Vec<Option<Vec<qbs_core::QueryOutcome>>> = vec![None; frames.len()];
            for (i, ticket) in tickets.into_iter().enumerate().rev() {
                let reply = client.recv(ticket).map_err(protocol_to_qbs)?;
                slots[i] = reply.outcomes().map(|o| o.to_vec());
            }
            let pipelined_identical = slots.iter().all(Option::is_some)
                && slots
                    .into_iter()
                    .flatten()
                    .flatten()
                    .collect::<Vec<qbs_core::QueryOutcome>>()
                    == expected;

            // Pipelining-depth sweep: single-request frames through one
            // connection with 1 / 4 / 16 tickets outstanding.
            let mut depth_rps = [0.0f64; 3];
            for (slot, depth) in depth_rps.iter_mut().zip([1usize, 4, 16]) {
                let mut sweep_client = connect_ready(&addr).ok_or_else(|| {
                    QbsError::Io(std::io::Error::other("no connection for depth sweep"))
                })?;
                let t0 = Instant::now();
                let mut window = std::collections::VecDeque::new();
                for req in &requests {
                    if window.len() >= depth {
                        let ticket = window.pop_front().expect("window");
                        sweep_client.recv(ticket).map_err(protocol_to_qbs)?;
                    }
                    let ticket = sweep_client
                        .send(std::slice::from_ref(req))
                        .map_err(protocol_to_qbs)?;
                    window.push_back(ticket);
                }
                while let Some(ticket) = window.pop_front() {
                    sweep_client.recv(ticket).map_err(protocol_to_qbs)?;
                }
                *slot = requests.len() as f64 / t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
            }
            drop(parked);

            server.shutdown();
            std::fs::remove_file(&path).ok();
            Ok(NetServingRow {
                dataset: spec.id.name().to_string(),
                clients: CLIENTS,
                requests_per_client: requests.len(),
                identical,
                busy_typed,
                pipelined_identical,
                idle_connections,
                reactor_threads,
                loopback_rps,
                inprocess_rps,
                depth1_rps: depth_rps[0],
                depth4_rps: depth_rps[1],
                depth16_rps: depth_rps[2],
            })
        })
        .collect::<Result<Vec<_>, QbsError>>()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(NetServing { rows })
}

/// Maps a client-side protocol failure into the harness error type.
fn protocol_to_qbs(err: qbs_server::ProtocolError) -> QbsError {
    QbsError::Io(std::io::Error::other(err.to_string()))
}

/// Connects with the client library's bounded retry (absorbs the
/// retryable refusals of a server whose handlers are mid-teardown).
fn connect_ready(addr: &str) -> Option<qbs_server::QbsClient> {
    qbs_server::QbsClient::connect_retry(addr, std::time::Duration::from_secs(10)).ok()
}

// ---------------------------------------------------------------------------
// Routed serving — scatter/gather router differential (CI tripwire)
// ---------------------------------------------------------------------------

/// Routed-serving result for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutedServingRow {
    /// Dataset name.
    pub dataset: String,
    /// Replicas the router started with.
    pub replicas: usize,
    /// Requests in each mixed batch (incl. the poisoned pair).
    pub requests_per_batch: usize,
    /// Whether the cold-cache pass was bit-identical to local
    /// `Qbs::submit`, poisoned pair included.
    pub identical_cold: bool,
    /// Whether the warm re-run (cached answers on the replicas) still
    /// merged bit-identically.
    pub identical_warm: bool,
    /// Whether answers stayed bit-identical after one replica was killed
    /// mid-run (sub-batches failed over to the survivor).
    pub failover_identical: bool,
    /// Slots the router filled with `Unavailable` across the whole run
    /// (must be 0: a survivor was always up).
    pub unavailable_slots: u64,
    /// Sub-batches the router scattered (> batches proves scattering).
    pub subbatches: u64,
    /// Batches routed end to end.
    pub batches_routed: u64,
    /// Routed throughput over loopback, requests/sec.
    pub routed_rps: f64,
    /// In-process `Qbs::submit` throughput on the same batches, req/sec.
    pub inprocess_rps: f64,
}

/// The routed-serving differential: a real `qbs-router` over replica
/// `qbs-server`s on ephemeral loopback ports, hit with mixed batches
/// (one poisoned pair each) cold and warm, diffed bit-for-bit against
/// local `Qbs::submit`, then re-diffed after a replica kill. CI runs
/// this at tiny scale in bench-smoke and fails the pipeline on drift.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutedServing {
    /// One row per dataset.
    pub rows: Vec<RoutedServingRow>,
}

impl RoutedServing {
    /// Whether every dataset routed identically in all three regimes and
    /// never shed a slot.
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(|r| {
            r.identical_cold && r.identical_warm && r.failover_identical && r.unavailable_slots == 0
        })
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Routed serving: scatter/gather router vs local Qbs::submit",
            &[
                "Dataset",
                "replicas",
                "req/batch",
                "sub/batches",
                "routed rps",
                "in-proc rps",
                "cold",
                "warm",
                "failover",
                "shed slots",
            ],
        );
        for r in &self.rows {
            let yes_no = |ok: bool| if ok { "yes".to_string() } else { "NO".into() };
            t.add_row(vec![
                r.dataset.clone(),
                fmt_count(r.replicas),
                fmt_count(r.requests_per_batch),
                format!("{}/{}", r.subbatches, r.batches_routed),
                format!("{:.0}", r.routed_rps),
                format!("{:.0}", r.inprocess_rps),
                yes_no(r.identical_cold),
                yes_no(r.identical_warm),
                yes_no(r.failover_identical),
                fmt_count(r.unavailable_slots as usize),
            ]);
        }
        t.render()
    }
}

/// Runs the routed-serving differential: build → save v2 → start replica
/// servers (mmap sessions over the shared file) → route mixed batches
/// through a `qbs-router`, cold and warm, diffed against local submit →
/// kill one replica and diff again.
pub fn routed_serving(config: &ExperimentConfig) -> Result<RoutedServing, QbsError> {
    use qbs_router::{QbsRouter, RouterConfig};
    use qbs_server::{QbsServer, ServerConfig};

    const REPLICAS: usize = 2;
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "qbs_bench_routed_serving_{}_{nonce}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let owned =
                QbsIndex::try_build(graph, QbsConfig::with_landmark_count(config.landmark_count))?;
            let num_vertices = owned.graph().num_vertices();
            let requests = mixed_requests(workload.pairs(), num_vertices);
            let path = dir.join(format!("{}.qbs2", spec.id.abbrev()));
            qbs_core::serialize::save_to_file(&owned, &path)?;
            drop(owned);

            // Each replica is its own mmap session with an answer cache, so
            // the warm pass exercises merged cached answers.
            let start_replica = || -> Result<qbs_server::ServerHandle, QbsError> {
                let qbs = qbs_core::Qbs::open(&path, qbs_core::MapMode::Mmap)?
                    .with_threads(2)?
                    .with_cache(qbs_core::CacheConfig::default());
                QbsServer::start(std::sync::Arc::new(qbs), ServerConfig::default().workers(2))
                    .map_err(QbsError::Io)
            };
            let mut replicas: Vec<qbs_server::ServerHandle> = (0..REPLICAS)
                .map(|_| start_replica())
                .collect::<Result<_, _>>()?;
            // min_split small enough that the mixed batch genuinely
            // scatters across the pool.
            let router = QbsRouter::start(
                RouterConfig::bind("127.0.0.1:0")
                    .replicas(
                        replicas
                            .iter()
                            .map(|r| r.local_addr().to_string())
                            .collect(),
                    )
                    .min_split((requests.len() / (2 * REPLICAS)).max(1)),
            )
            .map_err(QbsError::Io)?;
            let addr = router.local_addr().to_string();

            // Local reference session, same thread budget as the replicas.
            let local = qbs_core::Qbs::open(&path, qbs_core::MapMode::Mmap)?.with_threads(2)?;
            let expected = local.submit(&requests);

            let mut client = connect_ready(&addr)
                .ok_or_else(|| QbsError::Io(std::io::Error::other("no router within 10s")))?;
            let diff_pass = |client: &mut qbs_server::QbsClient| -> Result<bool, QbsError> {
                let reply = client.submit(&requests).map_err(protocol_to_qbs)?;
                Ok(reply.outcomes() == Some(&expected[..]))
            };
            let identical_cold = diff_pass(&mut client)?;
            let identical_warm = diff_pass(&mut client)?;

            // Throughput: pipelined routed batches vs in-process submit.
            const ROUNDS: usize = 8;
            let t0 = Instant::now();
            let mut window = std::collections::VecDeque::new();
            for _ in 0..ROUNDS {
                if window.len() >= 4 {
                    client
                        .recv(window.pop_front().expect("window"))
                        .map_err(protocol_to_qbs)?;
                }
                window.push_back(client.send(&requests).map_err(protocol_to_qbs)?);
            }
            while let Some(ticket) = window.pop_front() {
                client.recv(ticket).map_err(protocol_to_qbs)?;
            }
            let routed_rps = (ROUNDS * requests.len()) as f64
                / t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
            let t0 = Instant::now();
            for _ in 0..ROUNDS {
                local.submit(&requests);
            }
            let inprocess_rps = (ROUNDS * requests.len()) as f64
                / t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);

            // Failover: kill one replica, the survivor must still produce
            // bit-identical answers (retries absorb the dead sub-batches).
            let mut victim = replicas.remove(0);
            victim.shutdown();
            drop(victim);
            let failover_identical = diff_pass(&mut client)?;

            let router_stats = router.router_stats();
            drop(client);
            drop(router);
            for mut replica in replicas {
                replica.shutdown();
            }
            std::fs::remove_file(&path).ok();
            Ok(RoutedServingRow {
                dataset: spec.id.name().to_string(),
                replicas: REPLICAS,
                requests_per_batch: requests.len(),
                identical_cold,
                identical_warm,
                failover_identical,
                unavailable_slots: router_stats.unavailable_slots,
                subbatches: router_stats.subbatches,
                batches_routed: router_stats.batches_routed,
                routed_rps,
                inprocess_rps,
            })
        })
        .collect::<Result<Vec<_>, QbsError>>()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(RoutedServing { rows })
}

// ---------------------------------------------------------------------------
// Observability serving — instrumentation differential (CI tripwire)
// ---------------------------------------------------------------------------

/// Observability-differential result for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObsServingRow {
    /// Dataset name.
    pub dataset: String,
    /// Requests in the mixed batch (incl. the poisoned pair).
    pub requests: usize,
    /// Whether the same session answers bit-identically with the metrics
    /// registry disabled (instrumentation must never touch answers).
    pub identical_disabled: bool,
    /// Whether the served path — traced frames, slow-query log firing on
    /// every batch — still answers bit-identically to local submit.
    pub identical_served: bool,
    /// Execute-stage samples in the served `Metrics` snapshot (proves the
    /// per-stage histograms recorded the differential traffic).
    pub execute_samples: u64,
    /// Slow queries the zero-threshold server logged (each batch trips).
    pub slow_queries: u64,
    /// Whether the `Metrics` wire frame round-tripped with recorded
    /// samples and a non-zero slow-query count.
    pub metrics_frame_ok: bool,
}

/// The observability differential: the same mixed batch through (a) an
/// instrumented local session, (b) the same session with the registry
/// disabled, and (c) a real server with a zero slow-query threshold and
/// a pinned trace ID — all three answer sets must be bit-identical, and
/// the served `Metrics` frame must carry the recorded stage samples.
/// CI runs this at tiny scale and fails the pipeline on any drift.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObsServing {
    /// One row per dataset.
    pub rows: Vec<ObsServingRow>,
}

impl ObsServing {
    /// Whether every dataset answered identically in all three regimes
    /// and the metrics frame carried real samples.
    pub fn all_ok(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.identical_disabled && r.identical_served && r.metrics_frame_ok)
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Observability: instrumented serving vs metrics-off vs local Qbs::submit",
            &[
                "Dataset",
                "requests",
                "exec samples",
                "slow logged",
                "off identical",
                "served identical",
                "metrics frame",
            ],
        );
        for r in &self.rows {
            let yes_no = |ok: bool| if ok { "yes".to_string() } else { "NO".into() };
            t.add_row(vec![
                r.dataset.clone(),
                fmt_count(r.requests),
                fmt_count(r.execute_samples as usize),
                fmt_count(r.slow_queries as usize),
                yes_no(r.identical_disabled),
                yes_no(r.identical_served),
                yes_no(r.metrics_frame_ok),
            ]);
        }
        t.render()
    }
}

/// Runs the observability differential: build → save v2 → mmap →
/// instrumented submit vs registry-off submit vs served-with-tracing
/// submit, then the `Metrics` frame checked for recorded samples.
pub fn obs_serving(config: &ExperimentConfig) -> Result<ObsServing, QbsError> {
    use qbs_core::{Stage, TraceId};
    use qbs_server::{QbsServer, ServerConfig};

    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "qbs_bench_obs_serving_{}_{nonce}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let owned =
                QbsIndex::try_build(graph, QbsConfig::with_landmark_count(config.landmark_count))?;
            let num_vertices = owned.graph().num_vertices();
            let requests = mixed_requests(workload.pairs(), num_vertices);
            let path = dir.join(format!("{}.qbs2", spec.id.abbrev()));
            qbs_core::serialize::save_to_file(&owned, &path)?;

            // (a) Instrumented local session — the reference answers.
            let local = qbs_core::Qbs::open(&path, qbs_core::MapMode::Mmap)?.with_threads(2)?;
            let expected = local.submit(&requests);

            // (b) Same session, registry off: recording is the only thing
            // that may change, never the answers.
            local.metrics().set_enabled(false);
            let identical_disabled = local.submit(&requests) == expected;
            local.metrics().set_enabled(true);

            // (c) Served with a zero slow-query threshold (every batch
            // trips the log) and a pinned trace ID on the wire.
            let qbs = std::sync::Arc::new(
                qbs_core::Qbs::open(&path, qbs_core::MapMode::Mmap)?.with_threads(2)?,
            );
            let mut server = QbsServer::start(
                std::sync::Arc::clone(&qbs),
                ServerConfig::default().slow_query(std::time::Duration::ZERO),
            )
            .map_err(QbsError::Io)?;
            let addr = server.local_addr().to_string();
            let mut client = connect_ready(&addr)
                .ok_or_else(|| QbsError::Io(std::io::Error::other("no handler within 10s")))?;
            client.set_trace(TraceId(0x0B5E_7ABE));
            let reply = client.submit(&requests).map_err(protocol_to_qbs)?;
            let identical_served = reply.outcomes() == Some(&expected[..]);

            // The Metrics frame must carry the stage samples the served
            // batch just recorded, plus the slow-query count.
            let snapshot = client.metrics().map_err(protocol_to_qbs)?;
            let stages = Stage::ALL.len();
            let execute_samples: u64 = snapshot
                .hists
                .iter()
                .enumerate()
                .filter(|(i, _)| i % stages == Stage::Execute as usize)
                .map(|(_, h)| h.count)
                .sum();
            let slow_queries = snapshot.slow_queries;
            let metrics_frame_ok = execute_samples > 0 && slow_queries > 0;

            drop(client);
            server.shutdown();
            std::fs::remove_file(&path).ok();
            Ok(ObsServingRow {
                dataset: spec.id.name().to_string(),
                requests: requests.len(),
                identical_disabled,
                identical_served,
                execute_samples,
                slow_queries,
                metrics_frame_ok,
            })
        })
        .collect::<Result<Vec<_>, QbsError>>()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(ObsServing { rows })
}

// ---------------------------------------------------------------------------
// Ablations — landmark strategy and parallel speed-up
// ---------------------------------------------------------------------------

/// Ablation results for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Dataset name.
    pub dataset: String,
    /// Average query time with degree-selected landmarks (ms).
    pub degree_query_ms: f64,
    /// Average query time with random landmarks (ms).
    pub random_query_ms: f64,
    /// Pair coverage with degree-selected landmarks.
    pub degree_coverage: f64,
    /// Pair coverage with random landmarks.
    pub random_coverage: f64,
    /// Sequential labelling time (seconds).
    pub sequential_seconds: f64,
    /// Parallel labelling time (seconds).
    pub parallel_seconds: f64,
}

/// Ablation study: landmark selection strategy and labelling parallelism.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ablation {
    /// One row per dataset.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Ablation: landmark strategy and parallel labelling",
            &[
                "Dataset",
                "deg query(ms)",
                "rand query(ms)",
                "deg coverage",
                "rand coverage",
                "seq build(s)",
                "par build(s)",
                "speed-up",
            ],
        );
        for r in &self.rows {
            let speedup = if r.parallel_seconds > 0.0 {
                r.sequential_seconds / r.parallel_seconds
            } else {
                0.0
            };
            t.add_row(vec![
                r.dataset.clone(),
                fmt_millis(r.degree_query_ms),
                fmt_millis(r.random_query_ms),
                format!("{:.2}", r.degree_coverage),
                format!("{:.2}", r.random_coverage),
                fmt_seconds(r.sequential_seconds),
                fmt_seconds(r.parallel_seconds),
                format!("{speedup:.1}x"),
            ]);
        }
        t.render()
    }
}

/// Runs the ablation study.
pub fn ablation(config: &ExperimentConfig) -> Ablation {
    let rows = config
        .specs()
        .iter()
        .map(|spec| {
            let graph = config.graph_for(spec);
            let workload = config.workload_for(&graph);
            let degree = QbsIndex::build(
                graph.clone(),
                QbsConfig::with_landmark_count(config.landmark_count),
            );
            let random = QbsIndex::build(
                graph.clone(),
                QbsConfig {
                    landmarks: LandmarkStrategy::Random {
                        count: config.landmark_count,
                        seed: config.seed,
                    },
                    ..QbsConfig::default()
                },
            );
            let time_index = |index: &QbsIndex| -> f64 {
                let t0 = Instant::now();
                for &(u, v) in workload.pairs() {
                    let _ = index.query(u, v);
                }
                if workload.is_empty() {
                    0.0
                } else {
                    t0.elapsed().as_secs_f64() * 1e3 / workload.len() as f64
                }
            };
            let degree_query_ms = time_index(&degree);
            let random_query_ms = time_index(&random);
            let degree_coverage =
                classify_workload(&degree, workload.pairs()).pair_coverage_ratio();
            let random_coverage =
                classify_workload(&random, workload.pairs()).pair_coverage_ratio();

            let landmarks = degree.landmarks().to_vec();
            let t0 = Instant::now();
            let _ = qbs_core::labelling::build_sequential(&graph, &landmarks);
            let sequential_seconds = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let _ = parallel::build_parallel(&graph, &landmarks);
            let parallel_seconds = t0.elapsed().as_secs_f64();

            AblationRow {
                dataset: spec.id.name().to_string(),
                degree_query_ms,
                random_query_ms,
                degree_coverage,
                random_coverage,
                sequential_seconds,
                parallel_seconds,
            }
        })
        .collect();
    Ablation { rows }
}

/// Convenience used by tests and the quickstart: builds a QbS engine with the
/// configured landmark count over one dataset.
pub fn build_qbs(config: &ExperimentConfig, spec: &DatasetSpec) -> QbsEngine {
    QbsEngine::build(config.graph_for(spec), config.landmark_count, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_gen::catalog::DatasetId;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            datasets: vec![DatasetId::Douban, DatasetId::Dblp],
            query_count: 40,
            landmark_sweep: vec![5, 10],
            ..ExperimentConfig::smoke()
        }
    }

    #[test]
    fn table1_reports_every_requested_dataset() {
        let t = table1(&tiny_config());
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|r| r.vertices > 50 && r.edges > 50));
        assert!(t.rows.iter().all(|r| r.avg_distance > 1.0));
        let rendered = t.render();
        assert!(rendered.contains("Douban"));
        assert!(rendered.contains("avg.dist"));
    }

    #[test]
    fn table2_builds_and_times_every_method() {
        let t = table2(&tiny_config()).expect("table2 builds");
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert_eq!(row.methods.len(), 5);
            // On tiny graphs every method should finish within the budget.
            for (name, result) in &row.methods {
                match result {
                    MethodResult::Ok { avg_query_ms, .. } => assert!(*avg_query_ms >= 0.0),
                    other => panic!("{name} unexpectedly {other:?}"),
                }
            }
        }
        let rendered = t.render();
        assert!(rendered.contains("Table 2a"));
        assert!(rendered.contains("Table 2b"));
    }

    #[test]
    fn table3_shows_qbs_smaller_than_ppl() {
        let t = table3(&tiny_config());
        for row in &t.rows {
            let ppl = row.ppl_bytes.expect("tiny PPL build fits the budget");
            assert!(
                row.qbs_labelling_bytes < ppl,
                "{}: QbS {} vs PPL {ppl}",
                row.dataset,
                row.qbs_labelling_bytes
            );
            let parent = row
                .parent_ppl_bytes
                .expect("tiny ParentPPL build fits the budget");
            assert!(parent > ppl);
        }
        assert!(t.render().contains("size(Δ)"));
    }

    #[test]
    fn fig7_fractions_sum_to_one() {
        let f = fig7(&tiny_config());
        for s in &f.series {
            let sum: f64 = s.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", s.dataset);
            assert!(s.mean_distance > 1.0);
        }
        assert!(f.render().contains("Figure 7"));
    }

    #[test]
    fn landmark_sweep_covers_all_four_figures() {
        let sweep = landmark_sweep(&tiny_config());
        assert_eq!(sweep.series.len(), 2);
        for s in &sweep.series {
            assert_eq!(s.points.len(), 2);
            // Figure 9: labelling size grows with |R|.
            assert!(s.points[1].labelling_bytes > s.points[0].labelling_bytes);
            // Figure 8: coverage never decreases with more landmarks.
            assert!(
                s.points[1].coverage.pair_coverage_ratio()
                    >= s.points[0].coverage.pair_coverage_ratio() - 1e-9
            );
            assert!(s.points.iter().all(|p| p.construction_seconds >= 0.0));
        }
        assert!(sweep.render_fig8().contains("Figure 8"));
        assert!(sweep.render_fig9().contains("Figure 9"));
        assert!(sweep.render_fig10().contains("Figure 10"));
        assert!(sweep.render_fig11().contains("Figure 11"));
    }

    #[test]
    fn traversal_shows_qbs_saves_edges_on_hub_dominated_graphs() {
        // §6.5's claim is strongest where high-degree landmarks sparsify the
        // graph (Douban/Youtube-like); on clustered low-hub graphs the saving
        // can be near zero, so the strict assertion targets the hub datasets.
        let config = ExperimentConfig {
            datasets: vec![DatasetId::Douban, DatasetId::Youtube],
            query_count: 40,
            ..ExperimentConfig::smoke()
        };
        let t = traversal(&config);
        for row in &t.rows {
            assert!(row.bibfs_edges > 0.0);
            assert!(
                row.qbs_edges < row.bibfs_edges,
                "{}: QbS {} vs Bi-BFS {}",
                row.dataset,
                row.qbs_edges,
                row.bibfs_edges
            );
            assert!(row.saving > 0.0);
        }
        assert!(t.render().contains("edges traversed"));
    }

    #[test]
    fn view_serving_is_bit_identical_and_timed() {
        let v = view_serving(&tiny_config()).expect("view serving runs");
        assert_eq!(v.rows.len(), 2);
        assert!(v.all_identical(), "{v:?}");
        for row in &v.rows {
            assert!(row.pairs > 0);
            assert!(row.owned_ms >= 0.0 && row.view_ms >= 0.0);
        }
        let rendered = v.render();
        assert!(rendered.contains("View serving"));
        assert!(rendered.contains("yes"));
    }

    #[test]
    fn compact_serving_is_bit_identical_and_smaller() {
        let c = compact_serving(&tiny_config()).expect("compact serving runs");
        assert_eq!(c.rows.len(), 2);
        assert!(c.all_identical(), "{c:?}");
        for row in &c.rows {
            assert!(row.pairs > 0);
            assert!(row.wide_bytes > row.compact_bytes, "{row:?}");
            assert!(row.percent_saved > 0.0, "{row:?}");
            assert!(row.wide_dist_qps > 0.0 && row.compact_dist_qps > 0.0);
        }
        let rendered = c.render();
        assert!(rendered.contains("Compact serving"));
        assert!(rendered.contains("yes"));
    }

    #[test]
    fn mixed_batch_is_consistent_and_counts_one_error() {
        let m = mixed_batch(&tiny_config()).expect("mixed batch runs");
        assert_eq!(m.rows.len(), 2);
        assert!(m.all_identical(), "{m:?}");
        for row in &m.rows {
            assert_eq!(row.error_slots, 1, "exactly the poisoned pair fails");
            assert!(row.requests > 1);
            assert!(row.cache_hit_rate > 0.0, "warm pass hit the cache");
        }
        let rendered = m.render();
        assert!(rendered.contains("Mixed batch"));
        assert!(rendered.contains("yes"));
    }

    #[test]
    fn net_serving_is_bit_identical_and_sheds_typedly() {
        let config = ExperimentConfig {
            datasets: vec![DatasetId::Douban],
            query_count: 24,
            ..ExperimentConfig::smoke()
        };
        let n = net_serving(&config).expect("net serving runs");
        assert_eq!(n.rows.len(), 1);
        assert!(n.all_ok(), "{n:?}");
        let row = &n.rows[0];
        assert_eq!(row.clients, 4);
        assert!(row.requests_per_client > 1);
        assert!(row.loopback_rps > 0.0 && row.inprocess_rps > 0.0);
        assert_eq!(
            row.idle_connections, 512,
            "the parked sockets all connected"
        );
        assert_eq!(row.reactor_threads, 1, "one reactor thread serves them all");
        assert!(row.depth1_rps > 0.0 && row.depth4_rps > 0.0 && row.depth16_rps > 0.0);
        let rendered = n.render();
        assert!(rendered.contains("Net serving"));
        assert!(rendered.contains("yes"));
    }

    #[test]
    fn ablation_compares_strategies_and_parallelism() {
        let a = ablation(&tiny_config());
        assert_eq!(a.rows.len(), 2);
        for row in &a.rows {
            assert!(row.degree_coverage >= 0.0 && row.degree_coverage <= 1.0);
            assert!(row.random_coverage >= 0.0 && row.random_coverage <= 1.0);
            assert!(row.sequential_seconds > 0.0);
            assert!(row.parallel_seconds > 0.0);
        }
        assert!(a.render().contains("speed-up"));
    }
}
