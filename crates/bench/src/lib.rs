//! # qbs-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§6) on the scaled-down dataset catalog:
//!
//! | Experiment | Module entry point |
//! |---|---|
//! | Table 1 — dataset statistics | [`experiments::table1`] |
//! | Table 2 — construction & query time | [`experiments::table2`] |
//! | Table 3 — labelling sizes | [`experiments::table3`] |
//! | Figure 7 — query distance distribution | [`experiments::fig7`] |
//! | Figure 8 — pair coverage vs #landmarks | [`experiments::fig8`] |
//! | Figure 9 — labelling size vs #landmarks | [`experiments::landmark_sweep`] |
//! | Figure 10 — construction time vs #landmarks | [`experiments::landmark_sweep`] |
//! | Figure 11 — query time vs #landmarks | [`experiments::landmark_sweep`] |
//! | §6.5 — edges traversed, QbS vs Bi-BFS | [`experiments::traversal`] |
//! | Ablations — sketch guidance, landmark strategy, parallel speed-up | [`experiments::ablation`] |
//!
//! The `experiments` binary drives these from the command line and prints
//! paper-style tables plus machine-readable JSON; the Criterion benches under
//! `benches/` provide statistically rigorous micro-measurements of the same
//! code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engines;
pub mod experiments;
pub mod reporting;
pub mod runner;

pub use engines::AnyEngine;
pub use runner::{ExperimentConfig, MethodLimits};
