//! Plain-text table rendering and JSON export for experiment results.

use std::fmt::Write as _;
use std::path::Path;

use serde::Serialize;

/// A simple fixed-width text table, rendered in the style of the paper's
/// tables so measured results can be eyeballed against the published ones.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}  ", cell, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a duration in seconds with sensible precision (the unit of the
/// construction-time columns).
pub fn fmt_seconds(seconds: f64) -> String {
    if seconds < 0.001 {
        format!("{:.2}ms", seconds * 1e3)
    } else if seconds < 10.0 {
        format!("{seconds:.3}")
    } else {
        format!("{seconds:.1}")
    }
}

/// Formats milliseconds with the precision used by Table 2's query columns.
pub fn fmt_millis(ms: f64) -> String {
    if ms < 0.01 {
        format!("{:.1}us", ms * 1e3)
    } else {
        format!("{ms:.3}")
    }
}

/// Formats a byte count as the nearest human unit (Table 1/3 use MB and GB).
pub fn fmt_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.2}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

/// Formats a count with thousands separators (e.g. `1_234_567` → `1,234,567`).
pub fn fmt_count(count: usize) -> String {
    let digits = count.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Writes any serialisable result as pretty JSON next to the text report.
pub fn write_json<T: Serialize, P: AsRef<Path>>(value: &T, path: P) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["Dataset", "Time"]);
        t.add_row(vec!["Douban".into(), "0.05".into()]);
        t.add_row(vec!["ClueWeb09".into(), "1819".into()]);
        assert_eq!(t.num_rows(), 2);
        let rendered = t.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("Dataset"));
        assert!(rendered.contains("ClueWeb09"));
        // Header and rows align: every line has the Time column starting at
        // the same offset.
        let lines: Vec<&str> = rendered.lines().collect();
        let header_pos = lines[1].find("Time").unwrap();
        assert_eq!(lines[3].find("0.05").unwrap(), header_pos);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_mismatched_rows() {
        let mut t = TextTable::new("Demo", &["A", "B"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_seconds(0.0005), "0.50ms");
        assert_eq!(fmt_seconds(1.234567), "1.235");
        assert_eq!(fmt_seconds(123.4), "123.4");
        assert_eq!(fmt_millis(0.005), "5.0us");
        assert_eq!(fmt_millis(1.23456), "1.235");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MB");
        assert_eq!(fmt_bytes(2 * 1024 * 1024 * 1024), "2.00GB");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(42), "42");
    }

    #[test]
    fn json_writer_produces_valid_json() {
        let dir = std::env::temp_dir().join("qbs_bench_reporting_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_json(&vec![1, 2, 3], &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<u32> = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, vec![1, 2, 3]);
    }
}
