//! Experiment configuration and measurement primitives.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use qbs_baselines::ppl::BuildLimits;
use qbs_baselines::SpgEngine;
use qbs_gen::catalog::{Catalog, DatasetId, DatasetSpec, Scale};
use qbs_gen::QueryWorkload;
use qbs_graph::{Graph, VertexId};

/// Per-method resource budgets, emulating the 24-hour / memory limits of the
/// paper's Table 2 at laptop scale. Methods that exceed them are reported as
/// DNF (did not finish) or OOE (out of memory) exactly like the paper.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MethodLimits {
    /// Wall-clock budget for labelling-based baselines (PPL, ParentPPL).
    pub baseline_time_budget: Duration,
    /// Label-entry budget for labelling-based baselines.
    pub baseline_entry_budget: usize,
}

impl Default for MethodLimits {
    fn default() -> Self {
        MethodLimits {
            baseline_time_budget: Duration::from_secs(60),
            baseline_entry_budget: 50_000_000,
        }
    }
}

impl MethodLimits {
    /// Converts into the baseline crates' build limits.
    pub fn to_build_limits(self) -> BuildLimits {
        BuildLimits {
            max_duration: self.baseline_time_budget,
            max_label_entries: self.baseline_entry_budget,
        }
    }
}

/// Configuration shared by all experiments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Dataset scale (vertex counts of the synthetic stand-ins).
    pub scale: Scale,
    /// Number of landmarks `|R|` (the paper's default is 20).
    pub landmark_count: usize,
    /// Number of query pairs per dataset (the paper samples 10 000).
    pub query_count: usize,
    /// Workload / generator seed.
    pub seed: u64,
    /// Per-method resource budgets.
    pub limits: MethodLimits,
    /// Datasets to include (defaults to all 12 of Table 1).
    pub datasets: Vec<DatasetId>,
    /// Landmark counts swept by Figures 8–11.
    pub landmark_sweep: Vec<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: Scale::Small,
            landmark_count: 20,
            query_count: 1_000,
            seed: 2021,
            limits: MethodLimits::default(),
            datasets: DatasetId::ALL.to_vec(),
            landmark_sweep: vec![20, 40, 60, 80, 100],
        }
    }
}

impl ExperimentConfig {
    /// A configuration small enough for CI / unit tests: tiny graphs, four
    /// representative datasets, few queries.
    pub fn smoke() -> Self {
        ExperimentConfig {
            scale: Scale::Tiny,
            query_count: 100,
            datasets: vec![
                DatasetId::Douban,
                DatasetId::Dblp,
                DatasetId::LiveJournal,
                DatasetId::Friendster,
            ],
            landmark_sweep: vec![5, 10, 20],
            limits: MethodLimits {
                baseline_time_budget: Duration::from_secs(10),
                baseline_entry_budget: 5_000_000,
            },
            ..Default::default()
        }
    }

    /// The dataset specs selected by this configuration, in Table 1 order.
    pub fn specs(&self) -> Vec<DatasetSpec> {
        let catalog = Catalog::paper_table1();
        self.datasets
            .iter()
            .filter_map(|id| catalog.get(*id).copied())
            .collect()
    }

    /// Generates one dataset stand-in at the configured scale.
    pub fn graph_for(&self, spec: &DatasetSpec) -> Graph {
        spec.generate(self.scale)
    }

    /// Samples the query workload for one graph (connected pairs, like the
    /// paper's sampling on connected datasets).
    pub fn workload_for(&self, graph: &Graph) -> QueryWorkload {
        QueryWorkload::sample_connected(graph, self.query_count, self.seed)
    }
}

/// Aggregated timing of a batch of queries.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct QueryTiming {
    /// Number of queries executed.
    pub queries: usize,
    /// Total wall-clock time.
    pub total: Duration,
    /// Average time per query in milliseconds (the unit of Table 2).
    pub avg_ms: f64,
    /// Maximum single-query time in milliseconds.
    pub max_ms: f64,
    /// Total number of answer edges produced (sanity signal that the methods
    /// did comparable work).
    pub answer_edges: usize,
}

/// Times a workload through the engine's batch API ([`SpgEngine::query_batch`]).
///
/// This is what Table 2's query columns and the CLI drive: engines with
/// reusable workspaces (QbS, Bi-BFS, the oracle) amortise their scratch
/// state across the whole batch — the serving regime the paper's
/// microsecond query times assume. `max_ms` is reported as the batch's
/// average because individual query times are not observable through the
/// batch boundary.
pub fn time_query_batch<E: SpgEngine + ?Sized>(
    engine: &E,
    pairs: &[(VertexId, VertexId)],
) -> QueryTiming {
    let start = Instant::now();
    let answers = engine.query_batch(pairs);
    let total = start.elapsed();
    let answer_edges = answers.iter().map(|spg| spg.num_edges()).sum();
    let avg_ms = if pairs.is_empty() {
        0.0
    } else {
        total.as_secs_f64() * 1e3 / pairs.len() as f64
    };
    QueryTiming {
        queries: pairs.len(),
        total,
        avg_ms,
        max_ms: avg_ms,
        answer_edges,
    }
}

/// Times a batch of queries on any engine, one query at a time (per-query
/// latency distribution; see [`time_query_batch`] for the amortised path).
pub fn time_queries<E: SpgEngine + ?Sized>(
    engine: &E,
    pairs: &[(VertexId, VertexId)],
) -> QueryTiming {
    let mut total = Duration::ZERO;
    let mut max = Duration::ZERO;
    let mut answer_edges = 0usize;
    for &(u, v) in pairs {
        let start = Instant::now();
        let answer = engine.query(u, v);
        let elapsed = start.elapsed();
        total += elapsed;
        if elapsed > max {
            max = elapsed;
        }
        answer_edges += answer.num_edges();
    }
    QueryTiming {
        queries: pairs.len(),
        total,
        avg_ms: if pairs.is_empty() {
            0.0
        } else {
            total.as_secs_f64() * 1e3 / pairs.len() as f64
        },
        max_ms: max.as_secs_f64() * 1e3,
        answer_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_baselines::GroundTruth;
    use qbs_graph::fixtures::figure4_graph;

    #[test]
    fn default_config_matches_paper_defaults() {
        let c = ExperimentConfig::default();
        assert_eq!(c.landmark_count, 20);
        assert_eq!(c.datasets.len(), 12);
        assert_eq!(c.landmark_sweep, vec![20, 40, 60, 80, 100]);
        assert_eq!(c.specs().len(), 12);
    }

    #[test]
    fn smoke_config_is_small() {
        let c = ExperimentConfig::smoke();
        assert_eq!(c.datasets.len(), 4);
        assert_eq!(c.specs().len(), 4);
        let g = c.graph_for(&c.specs()[0]);
        assert!(g.num_vertices() < 3_000);
        let w = c.workload_for(&g);
        assert_eq!(w.len(), 100);
    }

    #[test]
    fn time_queries_reports_averages() {
        let g = figure4_graph();
        let engine = GroundTruth::new(g);
        let pairs = [(6u32, 11u32), (4, 12), (7, 9)];
        let t = time_queries(&engine, &pairs);
        assert_eq!(t.queries, 3);
        assert!(t.avg_ms >= 0.0);
        assert!(t.answer_edges >= 13 + 2 + 2);
        assert!(t.max_ms * 3.0 >= t.avg_ms);
        assert_eq!(time_queries(&engine, &[]).queries, 0);
    }

    #[test]
    fn batch_timing_reports_comparable_work() {
        let g = figure4_graph();
        let engine = GroundTruth::new(g);
        let pairs = [(6u32, 11u32), (4, 12), (7, 9)];
        let per_query = time_queries(&engine, &pairs);
        let batched = time_query_batch(&engine, &pairs);
        assert_eq!(batched.queries, 3);
        assert_eq!(batched.answer_edges, per_query.answer_edges);
        assert!(batched.avg_ms >= 0.0);
        assert_eq!(time_query_batch(&engine, &[]).queries, 0);
    }

    #[test]
    fn limits_convert_to_build_limits() {
        let l = MethodLimits::default().to_build_limits();
        assert_eq!(l.max_duration, Duration::from_secs(60));
        assert_eq!(l.max_label_entries, 50_000_000);
    }
}
