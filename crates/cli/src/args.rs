//! Command-line argument parsing (dependency-free).

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

use qbs_core::serialize::{IndexFormat, IndexProfile};
use qbs_core::QueryMode;
use qbs_gen::catalog::{DatasetId, Scale};

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Generate a dataset stand-in and write it in the binary graph format.
    Generate {
        /// Which Table 1 dataset to imitate.
        dataset: DatasetId,
        /// Scale of the stand-in.
        scale: Scale,
        /// Output path (binary `.qbsg`).
        out: PathBuf,
    },
    /// Build a QbS index from a graph file.
    Build {
        /// Input graph (`.qbsg` binary or whitespace edge list).
        graph: PathBuf,
        /// Number of landmarks.
        landmarks: usize,
        /// Use the sequential labelling builder instead of the parallel one.
        sequential: bool,
        /// Output index path.
        out: PathBuf,
        /// On-disk index format (`binary` = the flat layout, the default;
        /// `json` = the v1 compatibility format).
        format: IndexFormat,
        /// Width profile of the binary layout (`wide` = qbs-index-v2, the
        /// default; `compact` = qbs-index-v3). Ignored for `json`.
        profile: IndexProfile,
    },
    /// Answer shortest-path-graph queries against a built index — a single
    /// `--source`/`--target` pair or a whole `--pairs` batch.
    Query {
        /// Index path produced by `build`.
        index: PathBuf,
        /// Query source vertex (absent when `--pairs` drives a batch).
        source: Option<u32>,
        /// Query target vertex (absent when `--pairs` drives a batch).
        target: Option<u32>,
        /// File of whitespace-separated `u v` lines, answered as one batch
        /// through the concurrent query engine.
        pairs: Option<PathBuf>,
        /// Worker threads for batch execution (default: all cores).
        threads: Option<usize>,
        /// Serve straight from the zero-copy index view (no owned-index
        /// materialisation); requires a v2 binary index file.
        from_view: bool,
        /// With `--from-view`: memory-map the index file instead of reading
        /// it to the heap — the O(1) cold-start path.
        mmap: bool,
        /// Query mode: full path graph (default), distance-only, or
        /// sketch-only.
        mode: QueryMode,
        /// Include the sketch and search statistics in path-graph reports.
        stats: bool,
        /// Answer-cache capacity; `None` serves uncached.
        cache: Option<usize>,
        /// Output format.
        json: bool,
    },
    /// Serve an index over the framed TCP protocol (`qbs-server`) until a
    /// SIGINT/SIGTERM or a client `Shutdown` frame drains it.
    Serve {
        /// Index path produced by `build`.
        index: PathBuf,
        /// Memory-map the index file (v2 binary only) instead of reading
        /// it to the heap — the O(1) cold-start path.
        mmap: bool,
        /// Bind address (`--port P` is shorthand for `127.0.0.1:P`).
        addr: String,
        /// Worker threads per batch (default: all cores).
        threads: Option<usize>,
        /// Reactor worker threads executing decoded batches (default 4).
        workers: Option<usize>,
        /// Admission bound on concurrently executing requests.
        max_inflight: usize,
        /// Admission cap on requests per batch frame.
        max_batch: usize,
        /// Admission bound on concurrently served connections.
        max_connections: usize,
        /// Answer-cache capacity; `None` serves uncached.
        cache: Option<usize>,
        /// Bind address for the HTTP `GET /metrics` listener
        /// (`--metrics-addr H:P`); `None` disables it.
        metrics_addr: Option<String>,
        /// Slow-query log threshold in milliseconds
        /// (`--slow-query-ms N`); `None` disables the log.
        slow_query_ms: Option<u64>,
    },
    /// Route client batches across a pool of running `qbs serve`
    /// replicas (`qbs-router`): scatter/gather with health-checked
    /// failover, until a SIGINT/SIGTERM or a client `Shutdown` frame
    /// drains it.
    Route {
        /// Bind address of the router's own listener (`--port P` is
        /// shorthand for `127.0.0.1:P`).
        addr: String,
        /// Backend replica addresses (one `--replica H:P` each).
        replicas: Vec<String>,
        /// Gather worker threads (default 4); bounds concurrently routed
        /// batches.
        workers: Option<usize>,
        /// Admission bound on concurrently executing requests.
        max_inflight: usize,
        /// Admission cap on requests per batch frame.
        max_batch: usize,
        /// Admission bound on concurrently served connections.
        max_connections: usize,
        /// Bind address for the router's HTTP `GET /metrics` listener
        /// (`--metrics-addr H:P`); `None` disables it.
        metrics_addr: Option<String>,
        /// Slow-query log threshold in milliseconds
        /// (`--slow-query-ms N`); `None` disables the log.
        slow_query_ms: Option<u64>,
    },
    /// Talk to a running `qbs serve` (or `qbs route`) instance.
    Client {
        /// Server address (`host:port`).
        addr: String,
        /// Pin the connection to protocol v1 (`--protocol v1`) instead of
        /// negotiating up to the newest version.
        force_v1: bool,
        /// Pin every frame to one trace ID (`--trace-id HEX`) instead of
        /// generating a fresh one per send — makes a request findable in
        /// the server's slow-query log.
        trace_id: Option<u64>,
        /// What to do on the connection.
        action: ClientAction,
    },
    /// Print size/timing statistics of a built index.
    Stats {
        /// Index path produced by `build`.
        index: PathBuf,
    },
    /// Print the on-disk layout of a built index: format version and, for
    /// v2 binary files, the full section table and checksum.
    Inspect {
        /// Index path produced by `build`.
        index: PathBuf,
    },
    /// Convert between edge-list and binary graph formats (direction is
    /// inferred from the file extensions).
    Convert {
        /// Input graph file.
        from: PathBuf,
        /// Output graph file.
        to: PathBuf,
    },
    /// Print the usage text.
    Help,
}

/// What a `qbs client` invocation does with its connection.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientAction {
    /// Submit queries (a `--pairs` batch or one `--source`/`--target`
    /// pair) and render the outcomes exactly like a local `query`.
    Query {
        /// Query source vertex (absent when `--pairs` drives a batch).
        source: Option<u32>,
        /// Query target vertex (absent when `--pairs` drives a batch).
        target: Option<u32>,
        /// File of whitespace-separated `u v` lines.
        pairs: Option<PathBuf>,
        /// Query mode per pair.
        mode: QueryMode,
        /// Include sketch + search statistics in path-graph reports.
        stats: bool,
        /// Output format.
        json: bool,
    },
    /// Fetch and print the server's serving + admission counters
    /// (`--stats` with no query arguments).
    Stats,
    /// Measure protocol round-trip latency (`--ping [--count N]`):
    /// min/p50/p90/p99/max over `count` pings.
    Ping {
        /// Number of round trips to measure (default 5).
        count: usize,
    },
    /// Fetch and print the server's per-stage latency histograms
    /// (`--metrics` with no query arguments). Against a router this is
    /// the bucket-wise merge across every replica.
    Metrics,
    /// Ask the server to drain and exit (`--shutdown`).
    Shutdown,
}

/// Errors produced while parsing the command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text printed by `qbs-cli help`.
pub const USAGE: &str = "\
qbs-cli — Query-by-Sketch shortest path graph queries

commands:
  generate --dataset <DO|DB|...|CW> [--scale tiny|small|medium|large] --out FILE
  build    --graph FILE [--landmarks N] [--sequential] [--format binary|json]
           [--profile wide|compact] --out FILE
  query    --index FILE --source U --target V [query options]
  query    --index FILE --pairs FILE [--threads N] [query options]
  serve    --index FILE [--mmap] [--addr H:P | --port P] [--threads N]
           [--workers W] [--max-inflight M] [--max-batch B]
           [--max-connections C] [--cache N] [--metrics-addr H:P]
           [--slow-query-ms N]
  route    --replica H:P [--replica H:P ...] [--addr H:P | --port P]
           [--workers W] [--max-inflight M] [--max-batch B]
           [--max-connections C] [--metrics-addr H:P] [--slow-query-ms N]
  client   --addr H:P --pairs FILE [--mode M] [--stats] [--format F]
  client   --addr H:P --source U --target V [--mode M] [--format F]
  client   --addr H:P (--stats | --metrics | --ping [--count N] | --shutdown)
  client options also accept [--protocol v1|v2|v3] (default: negotiate v3)
           and [--trace-id HEX] (pin the trace ID every frame carries)
  stats    --index FILE
  inspect  --index FILE
  convert  --from FILE --to FILE
  help

query options:
  --mode path|distance|sketch   what to compute per pair (default: path)
  --stats                       include sketch + search statistics (path mode)
  --cache N                     serve through an N-entry LRU answer cache
  --from-view [--mmap]          serve from the zero-copy view; --mmap maps the file
  --format text|json            output format

`build --format` picks the on-disk index format: `binary` writes the flat
layout (the default; loads with zero parsing), `json` writes the v1
compatibility format. `build --profile` picks the binary width profile:
`wide` is qbs-index-v2 (fixed 32/64-bit fields), `compact` is
qbs-index-v3 (narrow widths + front-coded varint runs — typically well
under half the size, same answers). `query`/`stats`/`inspect` read every
version; `convert` also converts an index file between the two binary
profiles (direction inferred from the source file's magic).

`query --from-view` serves straight from the flat v2 layout without
materialising the owned index; adding `--mmap` memory-maps the file so a
cold process answers its first query in the time it takes to map it. In
`--pairs` batches each pair is answered independently: an out-of-range
pair reports an error for that line only.

`serve` runs the framed TCP server (spec: docs/protocol.md): one poll(2)
reactor thread multiplexes every connection and `--workers W` threads
(default 4; `--handlers` is accepted as the old spelling) execute the
decoded batches over one shared session. Ctrl-C or `client --shutdown`
drains in-flight batches and tears down cleanly. Work beyond
`--max-inflight`/`--max-batch` gets a typed busy reply, never a hang.
`client` submits batches against a running server with the same
rendering as a local `query`; `--stats` alone prints the server's
serving and admission counters, and `--metrics` prints its per-stage
latency histograms (count and p50/p90/p99/max per query mode and
pipeline stage). `--ping` measures round-trip latency
(min/p50/p90/p99/max over `--count N` pings, default 5). `--protocol
v1` pins the connection to the FIFO v1 framing instead of negotiating
up to the pipelined, trace-carrying v3. `--trace-id HEX` pins the trace
ID every frame carries, so a request can be found in the server's
slow-query log (docs/observability.md).

`serve --metrics-addr H:P` additionally exposes the same counters and
histograms as a Prometheus text endpoint (`GET /metrics`), and
`--slow-query-ms N` logs every batch whose execution takes at least N
milliseconds to stderr as one `qbs-slow-query ...` line carrying the
client's trace ID.

`route` runs the replicated scatter/gather tier (docs/router.md): it
speaks the same protocol as `serve`, splits each batch across the
least-loaded healthy replicas, retries sheds and failures onto other
replicas, and ejects unhealthy replicas with backoff. Answers are
bit-identical to a single replica; `client --stats` against a router
additionally prints per-replica routing counters, `client --metrics`
returns the bucket-wise merge of every replica's histograms, and trace
IDs propagate onto every scattered sub-batch. `route` accepts the same
`--metrics-addr`/`--slow-query-ms` options as `serve`.
";

/// Default bind host for `serve --port`.
const DEFAULT_HOST: &str = "127.0.0.1";

/// Default `serve` bind address when neither `--addr` nor `--port` is
/// given.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7411";

/// Default `route` bind address when neither `--addr` nor `--port` is
/// given — one below the serve port, so a router and a replica co-exist
/// on one host with the defaults.
const DEFAULT_ROUTE_ADDR: &str = "127.0.0.1:7410";

/// Parses an argument vector (excluding the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    let (options, replicas) = collect_options(&args[1..])?;
    let get = |key: &str| options.get(key).cloned();
    let require = |key: &str| {
        get(key).ok_or_else(|| ParseError(format!("{command}: missing required option --{key}")))
    };

    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => Ok(Command::Generate {
            dataset: parse_dataset(&require("dataset")?)?,
            scale: parse_scale(get("scale").as_deref().unwrap_or("small"))?,
            out: PathBuf::from(require("out")?),
        }),
        "build" => {
            let format = parse_index_format(get("format").as_deref().unwrap_or("binary"))?;
            let profile = parse_index_profile(get("profile").as_deref().unwrap_or("wide"))?;
            if format == IndexFormat::Json && profile == IndexProfile::Compact {
                return Err(ParseError(
                    "build: --profile compact requires --format binary (the JSON format has \
                     exactly one layout)"
                        .into(),
                ));
            }
            Ok(Command::Build {
                graph: PathBuf::from(require("graph")?),
                landmarks: parse_number(get("landmarks").as_deref().unwrap_or("20"), "landmarks")?,
                sequential: options.contains_key("sequential"),
                out: PathBuf::from(require("out")?),
                format,
                profile,
            })
        }
        "query" => {
            let source = get("source")
                .map(|s| parse_number(&s, "source").map(|n| n as u32))
                .transpose()?;
            let target = get("target")
                .map(|s| parse_number(&s, "target").map(|n| n as u32))
                .transpose()?;
            let pairs = get("pairs").map(PathBuf::from);
            match (&pairs, source, target) {
                (None, Some(_), Some(_)) | (Some(_), None, None) => {}
                (None, _, _) => {
                    return Err(ParseError(
                        "query: pass --source and --target, or --pairs FILE".into(),
                    ))
                }
                (Some(_), _, _) => {
                    return Err(ParseError(
                        "query: --pairs cannot be combined with --source/--target".into(),
                    ))
                }
            }
            let from_view = options.contains_key("from-view");
            let mmap = options.contains_key("mmap");
            if mmap && !from_view {
                return Err(ParseError(
                    "query: --mmap requires --from-view (only the zero-copy view path maps \
                     the index file)"
                        .into(),
                ));
            }
            Ok(Command::Query {
                index: PathBuf::from(require("index")?),
                source,
                target,
                pairs,
                threads: get("threads")
                    .map(|s| parse_number(&s, "threads"))
                    .transpose()?,
                from_view,
                mmap,
                mode: parse_query_mode(get("mode").as_deref().unwrap_or("path"))?,
                stats: options.contains_key("stats"),
                cache: get("cache")
                    .map(|s| parse_number(&s, "cache capacity"))
                    .transpose()?,
                json: match get("format").as_deref() {
                    None | Some("text") => false,
                    Some("json") => true,
                    Some(other) => return Err(ParseError(format!("unknown format '{other}'"))),
                },
            })
        }
        "serve" => {
            let addr = match (get("addr"), get("port")) {
                (Some(_), Some(_)) => {
                    return Err(ParseError("serve: pass --addr or --port, not both".into()))
                }
                (Some(addr), None) => addr,
                (None, Some(port)) => {
                    format!("{DEFAULT_HOST}:{}", parse_number(&port, "port")?)
                }
                (None, None) => DEFAULT_SERVE_ADDR.to_string(),
            };
            Ok(Command::Serve {
                index: PathBuf::from(require("index")?),
                mmap: options.contains_key("mmap"),
                addr,
                threads: get("threads")
                    .map(|s| parse_number(&s, "threads"))
                    .transpose()?,
                workers: match (get("workers"), get("handlers")) {
                    (Some(_), Some(_)) => {
                        return Err(ParseError(
                            "serve: pass --workers or --handlers (its old name), not both".into(),
                        ))
                    }
                    // `--handlers` is the pre-reactor spelling, kept as an
                    // alias so existing service files keep starting.
                    (workers, handlers) => workers
                        .or(handlers)
                        .map(|s| parse_number(&s, "workers"))
                        .transpose()?,
                },
                max_inflight: get("max-inflight")
                    .map(|s| parse_number(&s, "max-inflight"))
                    .transpose()?
                    .unwrap_or(4_096),
                max_batch: get("max-batch")
                    .map(|s| parse_number(&s, "max-batch"))
                    .transpose()?
                    .unwrap_or(4_096),
                max_connections: get("max-connections")
                    .map(|s| parse_number(&s, "max-connections"))
                    .transpose()?
                    .unwrap_or(128),
                cache: get("cache")
                    .map(|s| parse_number(&s, "cache capacity"))
                    .transpose()?,
                metrics_addr: get("metrics-addr"),
                slow_query_ms: get("slow-query-ms")
                    .map(|s| parse_number(&s, "slow-query-ms").map(|n| n as u64))
                    .transpose()?,
            })
        }
        "route" => {
            let addr = match (get("addr"), get("port")) {
                (Some(_), Some(_)) => {
                    return Err(ParseError("route: pass --addr or --port, not both".into()))
                }
                (Some(addr), None) => addr,
                (None, Some(port)) => {
                    format!("{DEFAULT_HOST}:{}", parse_number(&port, "port")?)
                }
                (None, None) => DEFAULT_ROUTE_ADDR.to_string(),
            };
            if replicas.is_empty() {
                return Err(ParseError(
                    "route: pass at least one --replica H:P (a running `qbs serve`)".into(),
                ));
            }
            Ok(Command::Route {
                addr,
                replicas,
                workers: get("workers")
                    .map(|s| parse_number(&s, "workers"))
                    .transpose()?,
                max_inflight: get("max-inflight")
                    .map(|s| parse_number(&s, "max-inflight"))
                    .transpose()?
                    .unwrap_or(4_096),
                max_batch: get("max-batch")
                    .map(|s| parse_number(&s, "max-batch"))
                    .transpose()?
                    .unwrap_or(4_096),
                max_connections: get("max-connections")
                    .map(|s| parse_number(&s, "max-connections"))
                    .transpose()?
                    .unwrap_or(128),
                metrics_addr: get("metrics-addr"),
                slow_query_ms: get("slow-query-ms")
                    .map(|s| parse_number(&s, "slow-query-ms").map(|n| n as u64))
                    .transpose()?,
            })
        }
        "client" => {
            let addr = require("addr")?;
            let force_v1 = match get("protocol").as_deref() {
                None | Some("v2") | Some("v3") => false,
                Some("v1") => true,
                Some(other) => {
                    return Err(ParseError(format!(
                        "client: unknown protocol '{other}' (expected v1, v2 or v3)"
                    )))
                }
            };
            let trace_id = get("trace-id").map(|s| parse_trace_id(&s)).transpose()?;
            let source = get("source")
                .map(|s| parse_number(&s, "source").map(|n| n as u32))
                .transpose()?;
            let target = get("target")
                .map(|s| parse_number(&s, "target").map(|n| n as u32))
                .transpose()?;
            let pairs = get("pairs").map(PathBuf::from);
            let stats = options.contains_key("stats");
            let has_query = pairs.is_some() || source.is_some() || target.is_some();
            let control_flags = [
                options.contains_key("ping"),
                options.contains_key("shutdown"),
                options.contains_key("metrics"),
                stats && !has_query,
            ];
            if control_flags.iter().filter(|&&f| f).count() > 1 {
                return Err(ParseError(
                    "client: --ping, --shutdown, --metrics and bare --stats are mutually \
                     exclusive"
                        .into(),
                ));
            }
            let action = if options.contains_key("ping") {
                ensure_no_query(has_query, "--ping")?;
                let count = get("count")
                    .map(|s| parse_number(&s, "count"))
                    .transpose()?
                    .unwrap_or(5);
                if count == 0 {
                    return Err(ParseError("client: --count must be at least 1".into()));
                }
                ClientAction::Ping { count }
            } else if options.contains_key("shutdown") {
                ensure_no_query(has_query, "--shutdown")?;
                ClientAction::Shutdown
            } else if options.contains_key("metrics") {
                ensure_no_query(has_query, "--metrics")?;
                ClientAction::Metrics
            } else if stats && !has_query {
                ClientAction::Stats
            } else {
                match (&pairs, source, target) {
                    (None, Some(_), Some(_)) | (Some(_), None, None) => {}
                    (None, _, _) => {
                        return Err(ParseError(
                            "client: pass --source and --target, or --pairs FILE, or one of \
                             --stats/--ping/--shutdown"
                                .into(),
                        ))
                    }
                    (Some(_), _, _) => {
                        return Err(ParseError(
                            "client: --pairs cannot be combined with --source/--target".into(),
                        ))
                    }
                }
                ClientAction::Query {
                    source,
                    target,
                    pairs,
                    mode: parse_query_mode(get("mode").as_deref().unwrap_or("path"))?,
                    stats,
                    json: match get("format").as_deref() {
                        None | Some("text") => false,
                        Some("json") => true,
                        Some(other) => return Err(ParseError(format!("unknown format '{other}'"))),
                    },
                }
            };
            Ok(Command::Client {
                addr,
                force_v1,
                trace_id,
                action,
            })
        }
        "stats" => Ok(Command::Stats {
            index: PathBuf::from(require("index")?),
        }),
        "inspect" => Ok(Command::Inspect {
            index: PathBuf::from(require("index")?),
        }),
        "convert" => Ok(Command::Convert {
            from: PathBuf::from(require("from")?),
            to: PathBuf::from(require("to")?),
        }),
        other => Err(ParseError(format!("unknown command '{other}'"))),
    }
}

/// Collects `--key value` pairs; bare flags (like `--sequential`) map to "".
/// `--replica` is the one repeatable option — each occurrence appends to
/// the returned list instead of overwriting the previous value.
fn collect_options(args: &[String]) -> Result<(BTreeMap<String, String>, Vec<String>), ParseError> {
    let mut options = BTreeMap::new();
    let mut replicas = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| ParseError(format!("expected an option, found '{}'", args[i])))?;
        let is_flag = matches!(
            key,
            "sequential" | "from-view" | "mmap" | "stats" | "ping" | "shutdown" | "metrics"
        );
        if is_flag {
            options.insert(key.to_string(), String::new());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| ParseError(format!("missing value for --{key}")))?;
            if key == "replica" {
                replicas.push(value.clone());
            } else {
                options.insert(key.to_string(), value.clone());
            }
            i += 2;
        }
    }
    Ok((options, replicas))
}

/// Parses a `--trace-id` value: hexadecimal, `0x` prefix optional,
/// nonzero (zero is the reserved untraced marker).
fn parse_trace_id(token: &str) -> Result<u64, ParseError> {
    let digits = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
        .unwrap_or(token);
    match u64::from_str_radix(digits, 16) {
        Ok(0) => Err(ParseError(
            "client: --trace-id must be nonzero (zero marks untraced frames)".into(),
        )),
        Ok(id) => Ok(id),
        Err(_) => Err(ParseError(format!(
            "client: invalid --trace-id '{token}' (expected up to 16 hex digits)"
        ))),
    }
}

/// Rejects query arguments combined with a control flag.
fn ensure_no_query(has_query: bool, flag: &str) -> Result<(), ParseError> {
    if has_query {
        return Err(ParseError(format!(
            "client: {flag} cannot be combined with query arguments"
        )));
    }
    Ok(())
}

fn parse_dataset(token: &str) -> Result<DatasetId, ParseError> {
    DatasetId::ALL
        .iter()
        .copied()
        .find(|id| id.abbrev().eq_ignore_ascii_case(token) || id.name().eq_ignore_ascii_case(token))
        .ok_or_else(|| ParseError(format!("unknown dataset '{token}'")))
}

fn parse_scale(token: &str) -> Result<Scale, ParseError> {
    match token.to_lowercase().as_str() {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        "large" => Ok(Scale::Large),
        other => Err(ParseError(format!("unknown scale '{other}'"))),
    }
}

fn parse_query_mode(token: &str) -> Result<QueryMode, ParseError> {
    match token {
        "path" | "path-graph" | "spg" => Ok(QueryMode::PathGraph),
        "distance" | "dist" => Ok(QueryMode::Distance),
        "sketch" => Ok(QueryMode::Sketch),
        other => Err(ParseError(format!(
            "unknown query mode '{other}' (expected path, distance or sketch)"
        ))),
    }
}

fn parse_index_profile(token: &str) -> Result<IndexProfile, ParseError> {
    match token {
        "wide" => Ok(IndexProfile::Wide),
        "compact" => Ok(IndexProfile::Compact),
        other => Err(ParseError(format!(
            "unknown index profile '{other}' (expected wide or compact)"
        ))),
    }
}

fn parse_index_format(token: &str) -> Result<IndexFormat, ParseError> {
    match token {
        "binary" => Ok(IndexFormat::Binary),
        "json" => Ok(IndexFormat::Json),
        other => Err(ParseError(format!(
            "unknown index format '{other}' (expected binary or json)"
        ))),
    }
}

fn parse_number(token: &str, what: &str) -> Result<usize, ParseError> {
    token
        .parse()
        .map_err(|_| ParseError(format!("invalid {what} '{token}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&args(&[
            "generate",
            "--dataset",
            "YT",
            "--scale",
            "tiny",
            "--out",
            "a.qbsg",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                dataset: DatasetId::Youtube,
                scale: Scale::Tiny,
                out: PathBuf::from("a.qbsg")
            }
        );
        // Dataset by full name, default scale.
        let cmd = parse(&args(&[
            "generate",
            "--dataset",
            "douban",
            "--out",
            "b.qbsg",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Generate {
                dataset: DatasetId::Douban,
                scale: Scale::Small,
                ..
            }
        ));
    }

    #[test]
    fn parses_build_query_stats_convert() {
        let cmd = parse(&args(&[
            "build",
            "--graph",
            "g.qbsg",
            "--landmarks",
            "32",
            "--sequential",
            "--out",
            "i.qbs",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                graph: "g.qbsg".into(),
                landmarks: 32,
                sequential: true,
                out: "i.qbs".into(),
                format: IndexFormat::Binary,
                profile: IndexProfile::Wide
            }
        );

        // Explicit index formats on build.
        let cmd = parse(&args(&[
            "build", "--graph", "g.qbsg", "--out", "i.qbs", "--format", "json",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Build {
                format: IndexFormat::Json,
                profile: IndexProfile::Wide,
                ..
            }
        ));
        assert!(parse(&args(&[
            "build", "--graph", "g.qbsg", "--out", "i.qbs", "--format", "xml",
        ]))
        .is_err());

        // The compact profile parses, defaults to wide, and refuses JSON.
        let cmd = parse(&args(&[
            "build",
            "--graph",
            "g.qbsg",
            "--out",
            "i.qbs3",
            "--profile",
            "compact",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Build {
                format: IndexFormat::Binary,
                profile: IndexProfile::Compact,
                ..
            }
        ));
        assert!(parse(&args(&[
            "build",
            "--graph",
            "g.qbsg",
            "--out",
            "i.qbs",
            "--profile",
            "narrow",
        ]))
        .is_err());
        assert!(parse(&args(&[
            "build",
            "--graph",
            "g.qbsg",
            "--out",
            "i.qbs",
            "--format",
            "json",
            "--profile",
            "compact",
        ]))
        .is_err());

        let cmd = parse(&args(&[
            "query", "--index", "i.qbs", "--source", "3", "--target", "7", "--format", "json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                index: "i.qbs".into(),
                source: Some(3),
                target: Some(7),
                pairs: None,
                threads: None,
                from_view: false,
                mmap: false,
                mode: QueryMode::PathGraph,
                stats: false,
                cache: None,
                json: true
            }
        );

        let cmd = parse(&args(&[
            "query",
            "--index",
            "i.qbs",
            "--pairs",
            "p.txt",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                index: "i.qbs".into(),
                source: None,
                target: None,
                pairs: Some("p.txt".into()),
                threads: Some(4),
                from_view: false,
                mmap: false,
                mode: QueryMode::PathGraph,
                stats: false,
                cache: None,
                json: false
            }
        );

        assert_eq!(
            parse(&args(&["stats", "--index", "i.qbs"])).unwrap(),
            Command::Stats {
                index: "i.qbs".into()
            }
        );
        assert_eq!(
            parse(&args(&["inspect", "--index", "i.qbs"])).unwrap(),
            Command::Inspect {
                index: "i.qbs".into()
            }
        );
        assert!(parse(&args(&["inspect"])).is_err());
        assert_eq!(
            parse(&args(&["convert", "--from", "a.txt", "--to", "b.qbsg"])).unwrap(),
            Command::Convert {
                from: "a.txt".into(),
                to: "b.qbsg".into()
            }
        );
    }

    #[test]
    fn parses_query_mode_stats_and_cache() {
        let cmd = parse(&args(&[
            "query", "--index", "i.qbs", "--pairs", "p.txt", "--mode", "distance", "--cache",
            "4096",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Query {
                mode: QueryMode::Distance,
                cache: Some(4096),
                stats: false,
                ..
            }
        ));

        let cmd = parse(&args(&[
            "query", "--index", "i.qbs", "--source", "1", "--target", "2", "--mode", "sketch",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Query {
                mode: QueryMode::Sketch,
                ..
            }
        ));

        // `--stats` is a bare flag; mode aliases parse; junk is rejected.
        let cmd = parse(&args(&[
            "query", "--index", "i.qbs", "--source", "1", "--target", "2", "--stats", "--mode",
            "spg",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Query {
                mode: QueryMode::PathGraph,
                stats: true,
                ..
            }
        ));
        assert!(parse(&args(&[
            "query", "--index", "i", "--source", "1", "--target", "2", "--mode", "teleport",
        ]))
        .is_err());
        assert!(parse(&args(&[
            "query", "--index", "i", "--source", "1", "--target", "2", "--cache", "lots",
        ]))
        .is_err());
    }

    #[test]
    fn parses_serve() {
        let cmd = parse(&args(&[
            "serve",
            "--index",
            "i.qbs2",
            "--mmap",
            "--port",
            "7411",
            "--threads",
            "2",
            "--max-inflight",
            "64",
            "--max-batch",
            "16",
            "--max-connections",
            "8",
            "--cache",
            "1024",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                index: "i.qbs2".into(),
                mmap: true,
                addr: "127.0.0.1:7411".into(),
                threads: Some(2),
                workers: None,
                max_inflight: 64,
                max_batch: 16,
                max_connections: 8,
                cache: Some(1024),
                metrics_addr: None,
                slow_query_ms: None,
            }
        );
        // Defaults, explicit --addr, and the addr/port conflict.
        let cmd = parse(&args(&["serve", "--index", "i.qbs2"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Serve {
                mmap: false,
                workers: None,
                max_inflight: 4096,
                max_batch: 4096,
                max_connections: 128,
                ..
            }
        ));
        // Reactor workers: the new spelling, the pre-reactor alias, and
        // the conflict between the two.
        assert!(matches!(
            parse(&args(&["serve", "--index", "i", "--workers", "6"])).unwrap(),
            Command::Serve {
                workers: Some(6),
                ..
            }
        ));
        assert!(matches!(
            parse(&args(&["serve", "--index", "i", "--handlers", "3"])).unwrap(),
            Command::Serve {
                workers: Some(3),
                ..
            }
        ));
        assert!(parse(&args(&[
            "serve",
            "--index",
            "i",
            "--workers",
            "2",
            "--handlers",
            "3"
        ]))
        .is_err());
        assert!(matches!(
            parse(&args(&["serve", "--index", "i", "--addr", "0.0.0.0:9"])).unwrap(),
            Command::Serve { addr, .. } if addr == "0.0.0.0:9"
        ));
        assert!(parse(&args(&[
            "serve", "--index", "i", "--addr", "h:1", "--port", "2"
        ]))
        .is_err());
        assert!(parse(&args(&["serve"])).is_err(), "index is required");
    }

    #[test]
    fn parses_client_actions() {
        let cmd = parse(&args(&[
            "client", "--addr", "h:1", "--pairs", "p.txt", "--mode", "distance", "--stats",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Client {
                addr: "h:1".into(),
                force_v1: false,
                trace_id: None,
                action: ClientAction::Query {
                    source: None,
                    target: None,
                    pairs: Some("p.txt".into()),
                    mode: QueryMode::Distance,
                    stats: true,
                    json: false,
                },
            }
        );
        // `--protocol` pins or confirms the wire version; junk is rejected.
        assert!(matches!(
            parse(&args(&[
                "client",
                "--addr",
                "h:1",
                "--ping",
                "--protocol",
                "v1"
            ]))
            .unwrap(),
            Command::Client { force_v1: true, .. }
        ));
        assert!(matches!(
            parse(&args(&[
                "client",
                "--addr",
                "h:1",
                "--ping",
                "--protocol",
                "v2"
            ]))
            .unwrap(),
            Command::Client {
                force_v1: false,
                ..
            }
        ));
        assert!(matches!(
            parse(&args(&[
                "client",
                "--addr",
                "h:1",
                "--ping",
                "--protocol",
                "v3"
            ]))
            .unwrap(),
            Command::Client {
                force_v1: false,
                ..
            }
        ));
        assert!(parse(&args(&[
            "client",
            "--addr",
            "h:1",
            "--ping",
            "--protocol",
            "v9"
        ]))
        .is_err());
        // `--metrics` is a control action; `--trace-id` takes hex (with
        // or without 0x) and rejects zero, which marks untraced frames.
        assert!(matches!(
            parse(&args(&["client", "--addr", "h:1", "--metrics"])).unwrap(),
            Command::Client {
                action: ClientAction::Metrics,
                ..
            }
        ));
        assert!(matches!(
            parse(&args(&[
                "client",
                "--addr",
                "h:1",
                "--ping",
                "--trace-id",
                "0xABCD"
            ]))
            .unwrap(),
            Command::Client {
                trace_id: Some(0xABCD),
                ..
            }
        ));
        assert!(parse(&args(&[
            "client",
            "--addr",
            "h:1",
            "--ping",
            "--trace-id",
            "0"
        ]))
        .is_err());
        assert!(parse(&args(&["client", "--addr", "h:1", "--metrics", "--stats"])).is_err());
        let single = parse(&args(&[
            "client", "--addr", "h:1", "--source", "1", "--target", "2", "--format", "json",
        ]))
        .unwrap();
        assert!(matches!(
            single,
            Command::Client {
                action: ClientAction::Query {
                    source: Some(1),
                    target: Some(2),
                    json: true,
                    ..
                },
                ..
            }
        ));
        // Bare --stats is the server-stats action; control flags exclude
        // query arguments and each other.
        assert!(matches!(
            parse(&args(&["client", "--addr", "h:1", "--stats"])).unwrap(),
            Command::Client {
                action: ClientAction::Stats,
                ..
            }
        ));
        assert!(matches!(
            parse(&args(&["client", "--addr", "h:1", "--ping"])).unwrap(),
            Command::Client {
                action: ClientAction::Ping { count: 5 },
                ..
            }
        ));
        assert!(matches!(
            parse(&args(&[
                "client", "--addr", "h:1", "--ping", "--count", "32"
            ]))
            .unwrap(),
            Command::Client {
                action: ClientAction::Ping { count: 32 },
                ..
            }
        ));
        assert!(parse(&args(&[
            "client", "--addr", "h:1", "--ping", "--count", "0"
        ]))
        .is_err());
        assert!(matches!(
            parse(&args(&["client", "--addr", "h:1", "--shutdown"])).unwrap(),
            Command::Client {
                action: ClientAction::Shutdown,
                ..
            }
        ));
        assert!(parse(&args(&["client", "--addr", "h:1"])).is_err());
        assert!(
            parse(&args(&["client", "--pairs", "p.txt"])).is_err(),
            "addr required"
        );
        assert!(parse(&args(&["client", "--addr", "h:1", "--ping", "--shutdown"])).is_err());
        assert!(parse(&args(&[
            "client", "--addr", "h:1", "--ping", "--source", "1", "--target", "2"
        ]))
        .is_err());
        assert!(parse(&args(&[
            "client", "--addr", "h:1", "--pairs", "p", "--source", "1", "--target", "2"
        ]))
        .is_err());
    }

    #[test]
    fn route_collects_repeated_replicas() {
        let parsed = parse(&args(&[
            "route",
            "--replica",
            "10.0.0.1:7411",
            "--replica",
            "10.0.0.2:7411",
            "--replica",
            "10.0.0.3:7411",
            "--port",
            "7410",
            "--workers",
            "8",
        ]))
        .unwrap();
        match parsed {
            Command::Route {
                addr,
                replicas,
                workers,
                max_inflight,
                max_batch,
                max_connections,
                metrics_addr,
                slow_query_ms,
            } => {
                assert_eq!(addr, "127.0.0.1:7410");
                assert_eq!(
                    replicas,
                    vec!["10.0.0.1:7411", "10.0.0.2:7411", "10.0.0.3:7411"]
                );
                assert_eq!(workers, Some(8));
                assert_eq!(
                    (max_inflight, max_batch, max_connections),
                    (4096, 4096, 128)
                );
                assert_eq!((metrics_addr, slow_query_ms), (None, None));
            }
            other => panic!("expected Route, got {other:?}"),
        }
        // Defaults: the route port, one replica.
        assert!(matches!(
            parse(&args(&["route", "--replica", "h:1"])).unwrap(),
            Command::Route { addr, .. } if addr == "127.0.0.1:7410"
        ));
        // No replicas, or both --addr and --port: rejected.
        assert!(parse(&args(&["route"])).is_err());
        assert!(parse(&args(&[
            "route",
            "--replica",
            "h:1",
            "--addr",
            "a:2",
            "--port",
            "3"
        ]))
        .is_err());
    }

    #[test]
    fn help_and_empty_invocations() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["--help"])).unwrap(), Command::Help);
        assert!(USAGE.contains("generate"));
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse(&args(&["explode"])).is_err());
        assert!(parse(&args(&["generate", "--out", "x"])).is_err()); // missing dataset
        assert!(parse(&args(&["generate", "--dataset", "nope", "--out", "x"])).is_err());
        assert!(parse(&args(&["build", "--graph"])).is_err()); // missing value
        assert!(parse(&args(&[
            "query", "--index", "i", "--source", "x", "--target", "1"
        ]))
        .is_err());
        assert!(parse(&args(&["query", "--index", "i", "--source", "1"])).is_err()); // missing target
        assert!(parse(&args(&[
            "query", "--index", "i", "--pairs", "p", "--source", "1", "--target", "2"
        ]))
        .is_err()); // batch and single are exclusive
        assert!(parse(&args(&["generate", "dataset", "YT"])).is_err()); // not an option
        assert!(parse(&args(&[
            "query", "--index", "i", "--source", "1", "--target", "2", "--format", "xml"
        ]))
        .is_err());
    }
}
