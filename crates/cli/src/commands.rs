//! Command implementations. Each command returns its human-readable report
//! as a `String` so it can be unit-tested without a subprocess.

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qbs_core::serialize::{self, IndexFormat, IndexProfile, MapMode};
use qbs_core::{
    CacheConfig, CacheStats, Qbs, QbsConfig, QbsIndex, QueryMode, QueryOutcome, QueryRequest,
};
use qbs_gen::catalog::Catalog;
use qbs_graph::{io, Graph, VertexId};
use qbs_router::{QbsRouter, RouterConfig, RouterHandle};
use qbs_server::{
    signal, AdmissionConfig, BatchReply, ClientConfig, ProtocolError, QbsClient, QbsServer,
    ServerConfig, ServerHandle,
};

use crate::args::{ClientAction, Command, USAGE};

/// Errors produced while executing a command.
#[derive(Debug)]
pub enum CommandError {
    /// The referenced dataset is missing from the catalog (should not happen
    /// for the built-in catalog; kept for forward compatibility).
    UnknownDataset(String),
    /// A graph file could not be read or written.
    Graph(qbs_graph::GraphError),
    /// An index could not be built, loaded or queried.
    Index(qbs_core::QbsError),
    /// A network serving operation failed (handshake, framing, transport).
    Protocol(ProtocolError),
    /// Generic I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            CommandError::Graph(e) => write!(f, "graph error: {e}"),
            CommandError::Index(e) => write!(f, "index error: {e}"),
            CommandError::Protocol(e) => write!(f, "protocol error: {e}"),
            CommandError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<qbs_graph::GraphError> for CommandError {
    fn from(e: qbs_graph::GraphError) -> Self {
        CommandError::Graph(e)
    }
}

impl From<qbs_core::QbsError> for CommandError {
    fn from(e: qbs_core::QbsError) -> Self {
        CommandError::Index(e)
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

impl From<ProtocolError> for CommandError {
    fn from(e: ProtocolError) -> Self {
        CommandError::Protocol(e)
    }
}

/// Executes a parsed command and returns the text to print.
pub fn run(command: &Command) -> Result<String, CommandError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate {
            dataset,
            scale,
            out,
        } => {
            let catalog = Catalog::paper_table1();
            let spec = catalog
                .get(*dataset)
                .ok_or_else(|| CommandError::UnknownDataset(dataset.name().to_string()))?;
            let graph = spec.generate(*scale);
            io::write_binary_file(&graph, out)?;
            Ok(format!(
                "generated {} stand-in at scale {:?}: {} vertices, {} edges -> {}",
                dataset.name(),
                scale,
                graph.num_vertices(),
                graph.num_edges(),
                out.display()
            ))
        }
        Command::Build {
            graph,
            landmarks,
            sequential,
            out,
            format,
            profile,
        } => {
            let graph = load_graph(graph)?;
            let mut config = QbsConfig::with_landmark_count(*landmarks);
            if *sequential {
                config = config.sequential();
            }
            let index = QbsIndex::try_build(graph, config)?;
            serialize::save_to_file_with_profile(&index, out, *format, *profile)?;
            let stats = index.stats();
            let layout = match format {
                IndexFormat::Json => format!("{format} format"),
                IndexFormat::Binary => format!("{format} format, {profile} profile"),
            };
            Ok(format!(
                "built index over {} vertices / {} edges with {} landmarks in {:.3}s \
                 (size(L)={} bytes, size(Δ)={} bytes) -> {} ({layout})",
                stats.num_vertices,
                stats.num_edges,
                stats.num_landmarks,
                stats.total_build_time.as_secs_f64(),
                stats.labelling_paper_bytes,
                stats.delta_bytes,
                out.display()
            ))
        }
        Command::Query {
            index,
            source,
            target,
            pairs,
            threads,
            from_view,
            mmap,
            mode,
            stats,
            cache,
            json,
        } => {
            let spec = ServeSpec {
                source: *source,
                target: *target,
                pairs: pairs.as_deref(),
                mode: *mode,
                stats: *stats,
                json: *json,
            };
            // The Qbs session façade hides the backend choice: --from-view
            // opens the flat layout zero-copy (--mmap maps it, the O(1)
            // cold-start path), otherwise the owned index is materialised.
            // --from-view is an explicit request for the zero-copy path, so
            // a v1 JSON index is rejected with the migration hint rather
            // than silently materialised (which is what Qbs::open's
            // transparent fallback would do).
            let mut qbs = if *from_view {
                let map_mode = if *mmap { MapMode::Mmap } else { MapMode::Read };
                Qbs::from_view_store(serialize::open_store_from_file(index, map_mode)?)
            } else {
                Qbs::load(index)?
            };
            if let Some(n) = threads {
                qbs = qbs.with_threads(*n)?;
            }
            if let Some(capacity) = cache {
                qbs = qbs.with_cache(CacheConfig::with_capacity(*capacity));
            }
            serve_queries(&qbs, &spec)
        }
        Command::Serve { .. } => {
            let (mut handle, _qbs) = start_server(command)?;
            // The banner must reach scripts (and humans) *before* the
            // blocking wait, so it is printed here rather than returned.
            // `writeln!` (not `println!`): a closed stdout pipe must not
            // panic a running server (Rust ignores SIGPIPE).
            let _ = writeln!(
                std::io::stdout(),
                "qbs-server listening on {}",
                handle.local_addr()
            );
            std::io::stdout().flush().ok();
            // Block until Ctrl-C/SIGTERM or a client Shutdown frame; both
            // run the same graceful drain, so the mmap'd index is always
            // unmapped cleanly instead of the old hard process exit.
            let termination = signal::termination_flag();
            let latch = handle.signal();
            while !latch.is_shutdown() && !termination.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(100));
            }
            handle.shutdown();
            let stats = handle.stats();
            Ok(format!("server drained and stopped\n{stats}"))
        }
        Command::Route { replicas, .. } => {
            let mut handle = start_router(command)?;
            // Same banner discipline as `serve`: reach scripts before the
            // blocking wait, and never panic on a closed stdout pipe.
            let _ = writeln!(
                std::io::stdout(),
                "qbs-router listening on {} over {} replica(s)",
                handle.local_addr(),
                replicas.len()
            );
            std::io::stdout().flush().ok();
            let termination = signal::termination_flag();
            let latch = handle.signal();
            while !latch.is_shutdown() && !termination.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(100));
            }
            handle.shutdown();
            // The router's own counters need no replica round-trips, so
            // the drain report stays cheap even when replicas are gone.
            let stats = handle.router_stats();
            Ok(format!("router drained and stopped\n{stats}"))
        }
        Command::Client {
            addr,
            force_v1,
            trace_id,
            action,
        } => {
            let config = ClientConfig::default().force_v1(*force_v1);
            let mut client = QbsClient::connect_with(addr, config)?;
            if let Some(id) = trace_id {
                client.set_trace(qbs_core::TraceId(*id));
            }
            match action {
                ClientAction::Ping { count } => {
                    // The same log2-bucketed histogram the server shards
                    // per worker, so the quantiles printed here agree
                    // with what `--metrics` would report server-side.
                    let hist = qbs_core::LatencyHistogram::new();
                    for _ in 0..*count {
                        hist.record(client.ping()?);
                    }
                    let snap = hist.snapshot();
                    let ms = |ns: u64| ns as f64 / 1e6;
                    Ok(format!(
                        "pong from {addr}: {count} round trip(s), \
                         min {:.3}ms / p50 {:.3}ms / p90 {:.3}ms / \
                         p99 {:.3}ms / max {:.3}ms",
                        ms(snap.min),
                        ms(snap.p50()),
                        ms(snap.p90()),
                        ms(snap.p99()),
                        ms(snap.max),
                    ))
                }
                ClientAction::Metrics => {
                    let snapshot = client.metrics()?;
                    Ok(format!(
                        "server metrics for {addr}:\n{}",
                        snapshot.render_table()
                    ))
                }
                ClientAction::Shutdown => {
                    client.shutdown_server()?;
                    Ok(format!(
                        "{addr} acknowledged shutdown; in-flight batches are draining"
                    ))
                }
                ClientAction::Stats => {
                    let stats = client.stats()?;
                    Ok(format!("server stats for {addr}:\n{stats}"))
                }
                ClientAction::Query {
                    source,
                    target,
                    pairs,
                    mode,
                    stats,
                    json,
                } => {
                    let spec = ServeSpec {
                        source: *source,
                        target: *target,
                        pairs: pairs.as_deref(),
                        mode: *mode,
                        stats: *stats,
                        json: *json,
                    };
                    serve_queries_remote(&mut client, &spec)
                }
            }
        }
        Command::Stats { index } => {
            let index = serialize::load_from_file(index)?;
            let stats = index.stats();
            Ok(format!(
                "vertices:            {}\n\
                 edges:               {}\n\
                 landmarks:           {}\n\
                 size(L):             {} bytes\n\
                 size(Δ):             {} bytes\n\
                 meta-graph:          {} bytes ({} edges)\n\
                 graph adjacency:     {} bytes\n\
                 index/graph ratio:   {:.3}\n\
                 labelling entries:   {}\n\
                 build time:          {:.3}s (labelling {:.3}s, meta {:.3}s)",
                stats.num_vertices,
                stats.num_edges,
                stats.num_landmarks,
                stats.labelling_paper_bytes,
                stats.delta_bytes,
                stats.meta_graph_bytes,
                stats.meta_edges,
                stats.graph_bytes,
                stats.index_to_graph_ratio(),
                stats.labelling_entries,
                stats.total_build_time.as_secs_f64(),
                stats.labelling_time.as_secs_f64(),
                stats.meta_time.as_secs_f64(),
            ))
        }
        Command::Inspect { index } => inspect_index(index),
        Command::Convert { from, to } => {
            // An index file (recognised by its magic) converts between the
            // binary width profiles (v2 ↔ v3; a v1 JSON index migrates to
            // compact); anything else goes through the graph formats.
            if serialize::detect_format(from).is_ok() {
                return convert_index(from, to);
            }
            let graph = load_graph(from)?;
            store_graph(&graph, to)?;
            Ok(format!(
                "converted {} ({} vertices, {} edges) -> {}",
                from.display(),
                graph.num_vertices(),
                graph.num_edges(),
                to.display()
            ))
        }
    }
}

/// One parsed `query` invocation (mode, stats, output shape), shared by
/// the single and batch serving paths.
struct ServeSpec<'a> {
    source: Option<u32>,
    target: Option<u32>,
    pairs: Option<&'a Path>,
    mode: QueryMode,
    stats: bool,
    json: bool,
}

impl ServeSpec<'_> {
    /// The typed request for one pair. Path-graph requests always collect
    /// stats internally (they are free); `--stats` only controls whether
    /// the report prints them.
    fn request(&self, u: VertexId, v: VertexId) -> QueryRequest {
        let req = QueryRequest::new(u, v, self.mode);
        if self.mode == QueryMode::PathGraph {
            req.with_stats()
        } else {
            req
        }
    }
}

/// Runs a query invocation over a session — owned and view-backed sessions
/// produce bit-identical reports.
fn serve_queries(qbs: &Qbs, spec: &ServeSpec<'_>) -> Result<String, CommandError> {
    match (spec.pairs, spec.source, spec.target) {
        (Some(pairs_path), _, _) => {
            let pairs = load_pairs(pairs_path)?;
            let requests: Vec<QueryRequest> =
                pairs.iter().map(|&(u, v)| spec.request(u, v)).collect();
            let start = Instant::now();
            let outcomes = qbs.submit(&requests);
            let elapsed = start.elapsed();
            render_batch(
                &pairs,
                &outcomes,
                elapsed,
                spec,
                Some(qbs.threads()),
                qbs.cache_stats(),
            )
        }
        (None, Some(source), Some(target)) => {
            // A single bad query is a command error, exactly as before the
            // request pipeline.
            let outcome = qbs.execute(&spec.request(source, target)).into_result()?;
            if spec.json {
                return Ok(render_outcome_json(&outcome));
            }
            Ok(render_outcome_text(source, target, &outcome, true))
        }
        _ => unreachable!("argument parsing enforces single-or-batch"),
    }
}

/// The network sibling of [`serve_queries`]: the same request shaping and
/// rendering, but executed through a [`QbsClient`] connection. Admission
/// shedding renders as a `server busy:` report (an actionable outcome, not
/// a command failure), so scripts can observe and retry.
fn serve_queries_remote(
    client: &mut QbsClient,
    spec: &ServeSpec<'_>,
) -> Result<String, CommandError> {
    match (spec.pairs, spec.source, spec.target) {
        (Some(pairs_path), _, _) => {
            let pairs = load_pairs(pairs_path)?;
            let requests: Vec<QueryRequest> =
                pairs.iter().map(|&(u, v)| spec.request(u, v)).collect();
            let start = Instant::now();
            let reply = client.submit(&requests)?;
            let elapsed = start.elapsed();
            match reply {
                BatchReply::Busy(reason) => Ok(render_busy(&reason, spec.json)),
                BatchReply::Outcomes(outcomes) => {
                    render_batch(&pairs, &outcomes, elapsed, spec, None, None)
                }
            }
        }
        (None, Some(source), Some(target)) => {
            match client.submit(&[spec.request(source, target)])? {
                BatchReply::Busy(reason) => Ok(render_busy(&reason, spec.json)),
                BatchReply::Outcomes(outcomes) => {
                    let outcome = outcomes
                        .into_iter()
                        .next()
                        .ok_or(CommandError::Protocol(ProtocolError::UnexpectedFrame(
                            "empty batch",
                        )))?
                        .into_result()?;
                    if spec.json {
                        return Ok(render_outcome_json(&outcome));
                    }
                    Ok(render_outcome_text(source, target, &outcome, true))
                }
            }
        }
        _ => unreachable!("argument parsing enforces single-or-batch"),
    }
}

/// Renders an admission shed: a `server busy:` line, or (under
/// `--format json`) a parseable object so scripted consumers can
/// distinguish a retryable shed from corrupt output.
fn render_busy(reason: &qbs_server::BusyReason, json: bool) -> String {
    if json {
        let quoted =
            serde_json::to_string(&reason.to_string()).unwrap_or_else(|_| "\"busy\"".to_string());
        format!("{{\"busy\": {quoted}}}")
    } else {
        format!("server busy: {reason}\n")
    }
}

/// Opens the session and starts the TCP server for a [`Command::Serve`]
/// invocation. Split from `run` so tests can drive a real server on an
/// ephemeral port without going through the blocking wait loop.
pub fn start_server(command: &Command) -> Result<(ServerHandle, Arc<Qbs>), CommandError> {
    let Command::Serve {
        index,
        mmap,
        addr,
        threads,
        workers,
        max_inflight,
        max_batch,
        max_connections,
        cache,
        metrics_addr,
        slow_query_ms,
    } = command
    else {
        unreachable!("start_server is only called with Command::Serve");
    };
    let map_mode = if *mmap { MapMode::Mmap } else { MapMode::Read };
    let mut qbs = Qbs::open(index, map_mode)?;
    if let Some(n) = threads {
        qbs = qbs.with_threads(*n)?;
    }
    if let Some(capacity) = cache {
        qbs = qbs.with_cache(CacheConfig::with_capacity(*capacity));
    }
    let qbs = Arc::new(qbs);
    let config = ServerConfig {
        addr: addr.clone(),
        workers: workers.unwrap_or(4),
        admission: AdmissionConfig {
            max_inflight: *max_inflight,
            max_batch: *max_batch,
            max_connections: *max_connections,
        },
        metrics_addr: metrics_addr.clone(),
        slow_query: slow_query_ms.map(Duration::from_millis),
    };
    let handle = QbsServer::start(Arc::clone(&qbs), config).map_err(CommandError::Io)?;
    Ok((handle, qbs))
}

/// Starts the scatter/gather router for a [`Command::Route`] invocation.
/// Split from `run` for the same reason as [`start_server`]: tests drive a
/// real router on an ephemeral port without the blocking wait loop.
pub fn start_router(command: &Command) -> Result<RouterHandle, CommandError> {
    let Command::Route {
        addr,
        replicas,
        workers,
        max_inflight,
        max_batch,
        max_connections,
        metrics_addr,
        slow_query_ms,
    } = command
    else {
        unreachable!("start_router is only called with Command::Route");
    };
    let mut config = RouterConfig::bind(addr.clone())
        .replicas(replicas.clone())
        .workers(workers.unwrap_or(4))
        .admission(AdmissionConfig {
            max_inflight: *max_inflight,
            max_batch: *max_batch,
            max_connections: *max_connections,
        });
    if let Some(metrics_addr) = metrics_addr {
        config = config.metrics_addr(metrics_addr.clone());
    }
    if let Some(ms) = slow_query_ms {
        config = config.slow_query(Duration::from_millis(*ms));
    }
    QbsRouter::start(config).map_err(CommandError::Io)
}

/// Implements the index arm of `convert`: materialises the source index
/// (any version) and re-saves it in the *other* binary width profile, so
/// `convert` migrates v2 → v3 and v3 → v2 (and a v1 JSON index straight to
/// compact) without a rebuild.
fn convert_index(from: &Path, to: &Path) -> Result<String, CommandError> {
    let source = serialize::detect_profile(from)?;
    let target = match source {
        IndexProfile::Wide => IndexProfile::Compact,
        IndexProfile::Compact => IndexProfile::Wide,
    };
    let index = serialize::load_from_file(from)?;
    serialize::save_to_file_with_profile(&index, to, IndexFormat::Binary, target)?;
    let from_len = std::fs::metadata(from).map(|m| m.len()).unwrap_or(0);
    let to_len = std::fs::metadata(to).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "converted index {} ({source} profile, {from_len} bytes) -> {} \
         ({target} profile, {to_len} bytes)",
        from.display(),
        to.display(),
    ))
}

/// The `bytes/vertex` + `bytes/label-entry` summary shared by both binary
/// inspect arms — the size wins readable without a calculator.
fn density_lines(file_len: u64, num_vertices: u64, label_bytes: u64, label_entries: u64) -> String {
    let per_vertex = file_len as f64 / (num_vertices.max(1)) as f64;
    let per_entry = label_bytes as f64 / (label_entries.max(1)) as f64;
    format!(
        "bytes/vertex:    {per_vertex:.2} (whole file)\n\
         bytes/label-entry: {per_entry:.2} ({label_bytes} label bytes / {label_entries} entries)\n"
    )
}

/// Implements `inspect`: reports the on-disk format and, for binary files,
/// renders checksum verification status and the section table with
/// per-section shares of the file (the index is never materialised). v3
/// compact files additionally show each section's wide (v2-equivalent)
/// size and the percentage saved.
fn inspect_index(path: &Path) -> Result<String, CommandError> {
    match serialize::detect_format(path)? {
        IndexFormat::Json => Ok(format!(
            "{}: qbs-index-v1 (JSON compatibility format)\n\
             no section table; re-save with `build --format binary` (or load + save) \
             to migrate to the flat qbs-index-v2 layout\n",
            path.display()
        )),
        IndexFormat::Binary => match serialize::detect_profile(path)? {
            IndexProfile::Wide => inspect_wide(path),
            IndexProfile::Compact => inspect_compact(path),
        },
    }
}

/// The v2 (wide) arm of `inspect`.
fn inspect_wide(path: &Path) -> Result<String, CommandError> {
    let bytes = std::fs::read(path).map_err(CommandError::Io)?;
    let report = qbs_core::format::inspect_v2(qbs_core::ViewBuf::Heap(bytes))?;
    let checksum_line = if report.checksum_ok() {
        format!("{:#018x} (word-wise fnv1a-64) ok", report.stored_checksum)
    } else {
        format!(
            "MISMATCH — stored {:#018x}, computed {:#018x} (file is corrupt)",
            report.stored_checksum, report.computed_checksum
        )
    };
    let label_bytes = report
        .sections
        .iter()
        .find(|r| r.kind == qbs_core::format::SectionKind::LabelEntries)
        .map(|r| r.len)
        .unwrap_or(0);
    let mut out = format!(
        "{}: qbs-index-v2 (flat binary, wide profile)\n\
         file size:       {} bytes\n\
         vertices:        {}\n\
         landmarks:       {}\n\
         graph arcs:      {}\n\
         meta edges:      {}\n\
         delta edges:     {}\n\
         checksum:        {}\n",
        path.display(),
        report.file_len,
        report.num_vertices,
        report.num_landmarks,
        report.num_arcs,
        report.num_meta_edges,
        report.num_delta_edges,
        checksum_line,
    );
    out.push_str(&density_lines(
        report.file_len as u64,
        report.num_vertices as u64,
        label_bytes,
        label_bytes / 4,
    ));
    out.push_str(&format!(
        "\n{:<16} {:>12} {:>14} {:>10}\n",
        "section", "offset", "bytes", "% of file",
    ));
    for record in &report.sections {
        out.push_str(&format!(
            "{:<16} {:>12} {:>14} {:>9.2}%\n",
            record.kind.name(),
            record.offset,
            record.len,
            report.section_percent(record),
        ));
    }
    Ok(out)
}

/// The v3 (compact) arm of `inspect`: the v2 report plus the width
/// profile and a per-section comparison against the wide layout.
fn inspect_compact(path: &Path) -> Result<String, CommandError> {
    let bytes = std::fs::read(path).map_err(CommandError::Io)?;
    let report = qbs_core::format::inspect_v3(qbs_core::ViewBuf::Heap(bytes))?;
    let checksum_line = if report.checksum_ok() {
        format!("{:#018x} (word-wise fnv1a-64) ok", report.stored_checksum)
    } else {
        format!(
            "MISMATCH — stored {:#018x}, computed {:#018x} (file is corrupt)",
            report.stored_checksum, report.computed_checksum
        )
    };
    let counts_line = match &report.counts {
        Some(c) => format!(
            "graph arcs:      {}\n\
             label entries:   {}\n\
             delta edges:     {}\n",
            c.num_arcs, c.label_entries, c.num_delta_edges
        ),
        None => "counts:          unavailable (varint streams are corrupt)\n".to_string(),
    };
    let mut out = format!(
        "{}: qbs-index-v3 (flat binary, compact profile)\n\
         file size:       {} bytes\n\
         vertices:        {}\n\
         landmarks:       {}\n\
         meta edges:      {}\n\
         {counts_line}\
         id width:        4 bytes\n\
         dist width:      {} byte(s)\n\
         offset width:    {} byte(s)\n\
         max label dist:  {}\n\
         checksum:        {}\n",
        path.display(),
        report.file_len,
        report.num_vertices,
        report.num_landmarks,
        report.num_meta_edges,
        report.dist_width,
        report.offset_width,
        report.max_label_distance,
        checksum_line,
    );
    let label_record = report
        .sections
        .iter()
        .find(|r| r.kind == qbs_core::format::SectionKind::LabelEntries);
    out.push_str(&density_lines(
        report.file_len as u64,
        report.num_vertices as u64,
        label_record.map(|r| r.len).unwrap_or(0),
        report
            .counts
            .as_ref()
            .map(|c| c.label_entries as u64)
            .unwrap_or(0),
    ));
    out.push_str(&format!(
        "\n{:<16} {:>12} {:>14} {:>14} {:>10}\n",
        "section", "offset", "bytes", "wide bytes", "% saved",
    ));
    let mut compact_total = 0u64;
    let mut wide_total = 0u64;
    for record in &report.sections {
        let wide = report.wide_section_len(record.kind);
        compact_total += record.len;
        let (wide_cell, saved_cell) = match wide {
            Some(w) => {
                wide_total += w;
                let saved = if w > 0 {
                    100.0 * (1.0 - record.len as f64 / w as f64)
                } else {
                    0.0
                };
                (w.to_string(), format!("{saved:.2}%"))
            }
            None => ("?".to_string(), "?".to_string()),
        };
        out.push_str(&format!(
            "{:<16} {:>12} {:>14} {:>14} {:>10}\n",
            record.kind.name(),
            record.offset,
            record.len,
            wide_cell,
            saved_cell,
        ));
    }
    if wide_total > 0 {
        out.push_str(&format!(
            "total sections:  {} bytes vs {} wide-equivalent ({:.2}% saved)\n",
            compact_total,
            wide_total,
            100.0 * (1.0 - compact_total as f64 / wide_total as f64),
        ));
    }
    Ok(out)
}

/// Renders one outcome as JSON. Path-graph answers serialise the path
/// graph itself (the shape the pre-pipeline CLI emitted), distances a bare
/// number, sketches the sketch object, and per-request failures an
/// `{"error": ...}` object.
fn render_outcome_json(outcome: &QueryOutcome) -> String {
    let value = match outcome {
        QueryOutcome::Distance(d) => serde_json::to_string_pretty(d),
        QueryOutcome::PathGraph(pg) => serde_json::to_string_pretty(pg),
        QueryOutcome::PathGraphWithStats(ans) => serde_json::to_string_pretty(&ans.path_graph),
        QueryOutcome::Sketch(s) => serde_json::to_string_pretty(s),
        QueryOutcome::Error(e) => {
            return format!("{{\"error\": \"{e}\"}}");
        }
    };
    value.unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

/// Renders one outcome as text. `verbose` additionally prints the answer
/// edges and the sketch/search statistics of path-graph answers (single
/// queries and `--stats` batches).
fn render_outcome_text(
    source: VertexId,
    target: VertexId,
    outcome: &QueryOutcome,
    verbose: bool,
) -> String {
    match outcome {
        QueryOutcome::Distance(d) => format!("d({source}, {target}) = {d}\n"),
        QueryOutcome::PathGraph(_) | QueryOutcome::PathGraphWithStats(_) => {
            let spg = outcome.path_graph().expect("path-graph outcome");
            let mut out = format!(
                "SPG({source}, {target}): distance {}, {} vertices, {} edges\n",
                spg.distance(),
                spg.num_vertices(),
                spg.num_edges()
            );
            if verbose {
                for (a, b) in spg.edges() {
                    out.push_str(&format!("  {a} -- {b}\n"));
                }
                if let Some(answer) = outcome.answer() {
                    out.push_str(&format!(
                        "sketch upper bound d⊤ = {}, reverse search = {}, recover search = {}\n",
                        answer.sketch.upper_bound,
                        answer.stats.used_reverse_search,
                        answer.stats.used_recover_search
                    ));
                }
            }
            out
        }
        QueryOutcome::Sketch(s) => format!(
            "sketch({source}, {target}): d⊤ = {}, {} source hops, {} target hops, {} meta edges\n",
            s.upper_bound,
            s.source_hops.len(),
            s.target_hops.len(),
            s.meta_edges.len()
        ),
        QueryOutcome::Error(e) => format!("query ({source}, {target}): error: {e}\n"),
    }
}

/// Renders a batch result: one line per request plus throughput, the
/// thread count when known (local sessions; a remote server's threads are
/// its own) and cache counters when attached. Error outcomes render as
/// error lines — they never abort the report. Shared verbatim by the local
/// `query` and network `client` paths so their reports stay diffable.
fn render_batch(
    pairs: &[(VertexId, VertexId)],
    outcomes: &[QueryOutcome],
    elapsed: std::time::Duration,
    spec: &ServeSpec<'_>,
    threads: Option<usize>,
    cache: Option<CacheStats>,
) -> Result<String, CommandError> {
    if spec.json {
        let items: Vec<String> = outcomes.iter().map(render_outcome_json).collect();
        return Ok(format!("[\n{}\n]", items.join(",\n")));
    }
    let mut out = String::new();
    let mut failed = 0usize;
    for (&(u, v), outcome) in pairs.iter().zip(outcomes) {
        if outcome.is_error() {
            failed += 1;
        }
        out.push_str(&render_outcome_text(u, v, outcome, spec.stats));
    }
    let qps = if elapsed.as_secs_f64() > 0.0 {
        pairs.len() as f64 / elapsed.as_secs_f64()
    } else {
        f64::INFINITY
    };
    let failures = if failed > 0 {
        format!(" ({failed} failed)")
    } else {
        String::new()
    };
    let on_threads = threads
        .map(|n| format!(" on {n} threads"))
        .unwrap_or_default();
    out.push_str(&format!(
        "answered {} queries{failures} in {:.3}ms{on_threads} ({:.0} queries/s)\n",
        pairs.len(),
        elapsed.as_secs_f64() * 1e3,
        qps
    ));
    if let Some(stats) = cache {
        out.push_str(&format!("{stats}\n"));
    }
    Ok(out)
}

/// Parses a `--pairs` file: one `u v` pair per non-empty, non-comment line.
fn load_pairs(path: &Path) -> Result<Vec<(VertexId, VertexId)>, CommandError> {
    let text = std::fs::read_to_string(path)?;
    let mut pairs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<VertexId> { tok?.parse().ok() };
        match (parse(parts.next()), parse(parts.next()), parts.next()) {
            (Some(u), Some(v), None) => pairs.push((u, v)),
            _ => {
                return Err(CommandError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: expected exactly 'u v', found '{line}'", idx + 1),
                )))
            }
        }
    }
    Ok(pairs)
}

/// Loads a graph, picking the format from the extension (`.qbsg` binary,
/// anything else is treated as a whitespace edge list).
fn load_graph(path: &Path) -> Result<Graph, CommandError> {
    if path.extension().is_some_and(|e| e == "qbsg") {
        Ok(io::read_binary_file(path)?)
    } else {
        Ok(io::read_edge_list_file(path)?)
    }
}

/// Stores a graph, picking the format from the extension.
fn store_graph(graph: &Graph, path: &Path) -> Result<(), CommandError> {
    if path.extension().is_some_and(|e| e == "qbsg") {
        io::write_binary_file(graph, path)?;
    } else {
        io::write_edge_list_file(graph, path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;
    use qbs_gen::catalog::{DatasetId, Scale};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qbs_cli_test_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn full_pipeline_generate_build_query_stats() {
        let dir = temp_dir("pipeline");
        let graph_path = dir.join("douban.qbsg");
        let index_path = dir.join("douban.qbs");

        let report = run(&Command::Generate {
            dataset: DatasetId::Douban,
            scale: Scale::Tiny,
            out: graph_path.clone(),
        })
        .expect("generate");
        assert!(report.contains("Douban"));
        assert!(graph_path.exists());

        let report = run(&Command::Build {
            graph: graph_path.clone(),
            landmarks: 10,
            sequential: false,
            out: index_path.clone(),
            format: IndexFormat::Binary,
            profile: IndexProfile::Wide,
        })
        .expect("build");
        assert!(report.contains("10 landmarks"));

        let report = run(&Command::Query {
            index: index_path.clone(),
            source: Some(1),
            target: Some(5),
            pairs: None,
            threads: None,
            from_view: false,
            mmap: false,
            mode: QueryMode::PathGraph,
            stats: false,
            cache: None,
            json: false,
        })
        .expect("query");
        assert!(report.contains("SPG(1, 5)"));

        let json = run(&Command::Query {
            index: index_path.clone(),
            source: Some(1),
            target: Some(5),
            pairs: None,
            threads: None,
            from_view: false,
            mmap: false,
            mode: QueryMode::PathGraph,
            stats: false,
            cache: None,
            json: true,
        })
        .expect("json query");
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert!(parsed.get("distance").is_some());

        let report = run(&Command::Stats { index: index_path }).expect("stats");
        assert!(report.contains("landmarks:           10"));
    }

    #[test]
    fn inspect_and_format_selection() {
        let dir = temp_dir("inspect");
        let graph_path = dir.join("g.qbsg");
        run(&Command::Generate {
            dataset: DatasetId::Douban,
            scale: Scale::Tiny,
            out: graph_path.clone(),
        })
        .expect("generate");

        // Binary (default) build: inspect prints the v2 section table.
        let bin_path = dir.join("g.qbs2");
        let report = run(&Command::Build {
            graph: graph_path.clone(),
            landmarks: 6,
            sequential: false,
            out: bin_path.clone(),
            format: IndexFormat::Binary,
            profile: IndexProfile::Wide,
        })
        .expect("build binary");
        assert!(report.contains("binary format"));
        let inspect = run(&Command::Inspect {
            index: bin_path.clone(),
        })
        .expect("inspect v2");
        assert!(inspect.contains("qbs-index-v2"));
        assert!(inspect.contains("checksum"));
        assert!(inspect.contains("label-entries"));
        assert!(inspect.contains("graph-neighbors"));

        // JSON build: inspect reports v1 plus the migration hint, and the
        // query path loads it transparently.
        let json_path = dir.join("g.qbs1");
        run(&Command::Build {
            graph: graph_path,
            landmarks: 6,
            sequential: false,
            out: json_path.clone(),
            format: IndexFormat::Json,
            profile: IndexProfile::Wide,
        })
        .expect("build json");
        let inspect = run(&Command::Inspect {
            index: json_path.clone(),
        })
        .expect("inspect v1");
        assert!(inspect.contains("qbs-index-v1"));
        assert!(inspect.contains("migrate"));

        // Both formats answer identically through the query command.
        let q = |index: std::path::PathBuf| {
            run(&Command::Query {
                index,
                source: Some(1),
                target: Some(5),
                pairs: None,
                threads: None,
                from_view: false,
                mmap: false,
                mode: QueryMode::PathGraph,
                stats: false,
                cache: None,
                json: false,
            })
            .expect("query")
        };
        assert_eq!(q(bin_path), q(json_path.clone()));

        // Inspecting garbage fails cleanly.
        let junk = dir.join("junk.qbs");
        std::fs::write(&junk, b"garbage").expect("write");
        assert!(matches!(
            run(&Command::Inspect { index: junk }),
            Err(CommandError::Index(_))
        ));

        // --from-view explicitly asks for the zero-copy path, so a v1 JSON
        // index is rejected with the migration hint instead of silently
        // materialised.
        let err = run(&Command::Query {
            index: json_path,
            source: Some(1),
            target: Some(5),
            pairs: None,
            threads: None,
            from_view: true,
            mmap: false,
            mode: QueryMode::PathGraph,
            stats: false,
            cache: None,
            json: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains("re-save"), "{err}");
    }

    #[test]
    fn batch_query_drives_the_engine() {
        let dir = temp_dir("batch");
        let graph_path = dir.join("g.qbsg");
        let index_path = dir.join("g.qbs");
        run(&Command::Generate {
            dataset: DatasetId::Douban,
            scale: Scale::Tiny,
            out: graph_path.clone(),
        })
        .expect("generate");
        run(&Command::Build {
            graph: graph_path,
            landmarks: 8,
            sequential: false,
            out: index_path.clone(),
            format: IndexFormat::Binary,
            profile: IndexProfile::Wide,
        })
        .expect("build");

        let pairs_path = dir.join("pairs.txt");
        std::fs::write(&pairs_path, "# workload\n1 5\n2 9\n0 3\n").expect("write pairs");

        let report = run(&Command::Query {
            index: index_path.clone(),
            source: None,
            target: None,
            pairs: Some(pairs_path.clone()),
            threads: Some(2),
            from_view: false,
            mmap: false,
            mode: QueryMode::PathGraph,
            stats: false,
            cache: None,
            json: false,
        })
        .expect("batch query");
        assert!(report.contains("SPG(1, 5)"));
        assert!(report.contains("SPG(0, 3)"));
        assert!(report.contains("answered 3 queries"));
        assert!(report.contains("2 threads"));

        let json = run(&Command::Query {
            index: index_path.clone(),
            source: None,
            target: None,
            pairs: Some(pairs_path),
            threads: None,
            from_view: false,
            mmap: false,
            mode: QueryMode::PathGraph,
            stats: false,
            cache: None,
            json: true,
        })
        .expect("batch json");
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert!(parsed.get_index(2).is_some(), "three answers serialised");

        // Zero threads is rejected through the engine's validation.
        let bad = run(&Command::Query {
            index: index_path,
            source: Some(1),
            target: Some(5),
            pairs: None,
            threads: Some(0),
            from_view: false,
            mmap: false,
            mode: QueryMode::PathGraph,
            stats: false,
            cache: None,
            json: false,
        });
        assert!(matches!(bad, Err(CommandError::Index(_))));

        // Malformed pairs files are reported with the line number.
        let bad_pairs = dir.join("bad.txt");
        std::fs::write(&bad_pairs, "1 5\nnot a pair\n").expect("write");
        assert!(load_pairs(&bad_pairs).is_err());
    }

    #[test]
    fn query_modes_cache_and_partial_failure_batches() {
        let dir = temp_dir("modes");
        let graph_path = dir.join("g.qbsg");
        let index_path = dir.join("g.qbs");
        run(&Command::Generate {
            dataset: DatasetId::Douban,
            scale: Scale::Tiny,
            out: graph_path.clone(),
        })
        .expect("generate");
        run(&Command::Build {
            graph: graph_path,
            landmarks: 8,
            sequential: false,
            out: index_path.clone(),
            format: IndexFormat::Binary,
            profile: IndexProfile::Wide,
        })
        .expect("build");

        // A poisoned pair mid-batch fails alone: the report keeps every
        // other answer and counts the failure.
        let pairs_path = dir.join("pairs.txt");
        std::fs::write(&pairs_path, "1 5\n999999 0\n2 9\n").expect("write pairs");
        let query = |mode: QueryMode, stats: bool, cache: Option<usize>, from_view: bool| {
            run(&Command::Query {
                index: index_path.clone(),
                source: None,
                target: None,
                pairs: Some(pairs_path.clone()),
                threads: Some(2),
                from_view,
                mmap: from_view,
                mode,
                stats,
                cache,
                json: false,
            })
            .expect("batch")
        };
        let report = query(QueryMode::PathGraph, true, None, false);
        assert!(report.contains("SPG(1, 5)"));
        assert!(report.contains("error: vertex 999999 out of range"));
        assert!(report.contains("SPG(2, 9)"));
        assert!(report.contains("answered 3 queries (1 failed)"));
        assert!(report.contains("sketch upper bound"), "--stats prints d⊤");

        // Distance mode renders distances; the view-backed session renders
        // the identical report (modulo timing lines).
        let owned = query(QueryMode::Distance, false, None, false);
        assert!(owned.contains("d(1, 5) = "));
        let viewed = query(QueryMode::Distance, false, None, true);
        assert_eq!(
            owned.lines().take(3).collect::<Vec<_>>(),
            viewed.lines().take(3).collect::<Vec<_>>(),
            "owned and view-backed reports agree per line"
        );

        // Sketch mode reports the landmark summary.
        let sketch = query(QueryMode::Sketch, false, None, false);
        assert!(sketch.contains("sketch(1, 5): d⊤ = "));

        // Caching prints the counter line and keeps answers identical.
        let cached = query(QueryMode::PathGraph, false, Some(1024), false);
        assert!(cached.contains("cache: "), "{cached}");
        let uncached = query(QueryMode::PathGraph, false, None, false);
        assert_eq!(
            cached.lines().take(3).collect::<Vec<_>>(),
            uncached.lines().take(3).collect::<Vec<_>>(),
        );

        // A single out-of-range query is still a hard command error.
        let single = run(&Command::Query {
            index: index_path.clone(),
            source: Some(1),
            target: Some(999_999),
            pairs: None,
            threads: None,
            from_view: false,
            mmap: false,
            mode: QueryMode::Distance,
            stats: false,
            cache: None,
            json: false,
        });
        assert!(matches!(single, Err(CommandError::Index(_))));

        // JSON batch with an error slot stays valid JSON.
        let json = run(&Command::Query {
            index: index_path,
            source: None,
            target: None,
            pairs: Some(pairs_path),
            threads: None,
            from_view: false,
            mmap: false,
            mode: QueryMode::Distance,
            stats: false,
            cache: None,
            json: true,
        })
        .expect("json batch");
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert!(parsed.get_index(1).is_some(), "error slot serialised");
    }

    #[test]
    fn serve_and_client_roundtrip_over_loopback() {
        let dir = temp_dir("serve");
        let graph_path = dir.join("g.qbsg");
        let index_path = dir.join("g.qbs2");
        run(&Command::Generate {
            dataset: DatasetId::Douban,
            scale: Scale::Tiny,
            out: graph_path.clone(),
        })
        .expect("generate");
        run(&Command::Build {
            graph: graph_path,
            landmarks: 8,
            sequential: false,
            out: index_path.clone(),
            format: IndexFormat::Binary,
            profile: IndexProfile::Wide,
        })
        .expect("build");
        let pairs_path = dir.join("pairs.txt");
        std::fs::write(&pairs_path, "1 5\n999999 0\n2 9\n0 3\n").expect("write pairs");

        // Start a real server on an ephemeral port (mmap-backed session,
        // tight admission bounds so the sheds are testable).
        let serve = Command::Serve {
            index: index_path.clone(),
            mmap: true,
            addr: "127.0.0.1:0".into(),
            threads: Some(2),
            workers: Some(2),
            max_inflight: 64,
            max_batch: 4,
            max_connections: 8,
            cache: Some(1024),
            metrics_addr: None,
            slow_query_ms: None,
        };
        let (mut handle, qbs) = start_server(&serve).expect("start server");
        assert_eq!(qbs.backend().name(), "view", "serve --mmap uses the view");
        let addr = handle.local_addr().to_string();

        // Remote batch answers line-for-line identical to the local query
        // path (poisoned pair included); only the summary/thread suffix
        // lines differ.
        let client_batch = |mode: QueryMode| {
            run(&Command::Client {
                addr: addr.clone(),
                force_v1: false,
                trace_id: None,
                action: ClientAction::Query {
                    source: None,
                    target: None,
                    pairs: Some(pairs_path.clone()),
                    mode,
                    stats: false,
                    json: false,
                },
            })
            .expect("client batch")
        };
        let remote = client_batch(QueryMode::PathGraph);
        let local = run(&Command::Query {
            index: index_path.clone(),
            source: None,
            target: None,
            pairs: Some(pairs_path.clone()),
            threads: Some(2),
            from_view: true,
            mmap: true,
            mode: QueryMode::PathGraph,
            stats: false,
            cache: None,
            json: false,
        })
        .expect("local batch");
        let answers = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| !l.starts_with("answered") && !l.starts_with("cache:"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(answers(&remote), answers(&local), "served answers diverged");
        assert!(remote.contains("error: vertex 999999 out of range"));
        assert!(remote.contains("answered 4 queries (1 failed)"));

        // An over-limit batch (5 > --max-batch 4) gets the typed busy
        // report, and the connection-level state stays serviceable.
        std::fs::write(dir.join("big.txt"), "1 2\n3 4\n5 6\n7 8\n0 1\n").expect("write");
        let busy = run(&Command::Client {
            addr: addr.clone(),
            force_v1: false,
            trace_id: None,
            action: ClientAction::Query {
                source: None,
                target: None,
                pairs: Some(dir.join("big.txt")),
                mode: QueryMode::Distance,
                stats: false,
                json: false,
            },
        })
        .expect("busy report");
        assert!(busy.contains("server busy:"), "{busy}");
        assert!(busy.contains("exceeds the 4-request cap"), "{busy}");

        // Single remote query, JSON batch, ping, server stats.
        let single = run(&Command::Client {
            addr: addr.clone(),
            force_v1: false,
            trace_id: None,
            action: ClientAction::Query {
                source: Some(1),
                target: Some(5),
                pairs: None,
                mode: QueryMode::Distance,
                stats: false,
                json: false,
            },
        })
        .expect("single");
        assert!(single.starts_with("d(1, 5) = "), "{single}");
        let json = run(&Command::Client {
            addr: addr.clone(),
            force_v1: false,
            trace_id: None,
            action: ClientAction::Query {
                source: None,
                target: None,
                pairs: Some(pairs_path.clone()),
                mode: QueryMode::Distance,
                stats: false,
                json: true,
            },
        })
        .expect("json batch");
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert!(parsed.get_index(3).is_some(), "four slots serialised");

        let pong = run(&Command::Client {
            addr: addr.clone(),
            force_v1: false,
            trace_id: None,
            action: ClientAction::Ping { count: 3 },
        })
        .expect("ping");
        assert!(pong.starts_with("pong from "), "{pong}");
        assert!(
            pong.contains("3 round trip(s)") && pong.contains("p50"),
            "--ping reports a min/p50/max summary: {pong}"
        );

        let stats = run(&Command::Client {
            addr: addr.clone(),
            force_v1: false,
            trace_id: None,
            action: ClientAction::Stats,
        })
        .expect("stats");
        assert!(stats.contains("admission:"), "{stats}");
        assert!(stats.contains("view"), "{stats}");
        assert!(
            stats.contains("cache:"),
            "--cache attaches a cache: {stats}"
        );

        // Shutdown via the protocol drains the server; afterwards the
        // port refuses connections.
        let ack = run(&Command::Client {
            addr: addr.clone(),
            force_v1: false,
            trace_id: None,
            action: ClientAction::Shutdown,
        })
        .expect("shutdown");
        assert!(ack.contains("acknowledged shutdown"), "{ack}");
        handle.shutdown();
        let refused = run(&Command::Client {
            addr: addr.clone(),
            force_v1: false,
            trace_id: None,
            action: ClientAction::Ping { count: 1 },
        });
        assert!(matches!(refused, Err(CommandError::Protocol(_))));
    }

    #[test]
    fn route_and_client_roundtrip_over_loopback() {
        let dir = temp_dir("route");
        let graph_path = dir.join("g.qbsg");
        let index_path = dir.join("g.qbs2");
        run(&Command::Generate {
            dataset: DatasetId::Douban,
            scale: Scale::Tiny,
            out: graph_path.clone(),
        })
        .expect("generate");
        run(&Command::Build {
            graph: graph_path,
            landmarks: 8,
            sequential: false,
            out: index_path.clone(),
            format: IndexFormat::Binary,
            profile: IndexProfile::Wide,
        })
        .expect("build");
        let pairs_path = dir.join("pairs.txt");
        std::fs::write(&pairs_path, "1 5\n999999 0\n2 9\n0 3\n").expect("write pairs");

        // Two replicas on ephemeral ports, then a router spanning them.
        let serve = |_| Command::Serve {
            index: index_path.clone(),
            mmap: true,
            addr: "127.0.0.1:0".into(),
            threads: Some(2),
            workers: Some(2),
            max_inflight: 256,
            max_batch: 256,
            max_connections: 32,
            cache: None,
            metrics_addr: None,
            slow_query_ms: None,
        };
        let replicas: Vec<(ServerHandle, Arc<Qbs>)> = (0..2)
            .map(|i| start_server(&serve(i)).expect("start replica"))
            .collect();
        let route = Command::Route {
            addr: "127.0.0.1:0".into(),
            replicas: replicas
                .iter()
                .map(|(h, _)| h.local_addr().to_string())
                .collect(),
            workers: Some(2),
            max_inflight: 256,
            max_batch: 256,
            max_connections: 32,
            metrics_addr: None,
            slow_query_ms: None,
        };
        let mut router = start_router(&route).expect("start router");
        let addr = router.local_addr().to_string();

        // A routed batch renders line-for-line like a local query (the
        // poisoned pair included) — the bit-identity contract, end to end
        // through the CLI.
        let routed = run(&Command::Client {
            addr: addr.clone(),
            force_v1: false,
            trace_id: None,
            action: ClientAction::Query {
                source: None,
                target: None,
                pairs: Some(pairs_path.clone()),
                mode: QueryMode::PathGraph,
                stats: false,
                json: false,
            },
        })
        .expect("routed batch");
        let local = run(&Command::Query {
            index: index_path.clone(),
            source: None,
            target: None,
            pairs: Some(pairs_path),
            threads: Some(2),
            from_view: true,
            mmap: true,
            mode: QueryMode::PathGraph,
            stats: false,
            cache: None,
            json: false,
        })
        .expect("local batch");
        let answers = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| !l.starts_with("answered") && !l.starts_with("cache:"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(answers(&routed), answers(&local), "routed answers diverged");
        assert!(routed.contains("error: vertex 999999 out of range"));

        // `--stats` against the router renders the aggregated router
        // section alongside the merged engine counters.
        let stats = run(&Command::Client {
            addr: addr.clone(),
            force_v1: false,
            trace_id: None,
            action: ClientAction::Stats,
        })
        .expect("stats");
        assert!(stats.contains("router:"), "{stats}");
        assert!(stats.contains("replica 127.0.0.1:"), "{stats}");

        // Ping travels through the router reactor like any other frame.
        let pong = run(&Command::Client {
            addr,
            force_v1: false,
            trace_id: None,
            action: ClientAction::Ping { count: 2 },
        })
        .expect("ping");
        assert!(pong.contains("2 round trip(s)"), "{pong}");

        router.shutdown();
        for (mut handle, _) in replicas {
            handle.shutdown();
        }
    }

    #[test]
    fn convert_between_formats_roundtrips() {
        let dir = temp_dir("convert");
        let bin = dir.join("g.qbsg");
        let txt = dir.join("g.edges");
        run(&Command::Generate {
            dataset: DatasetId::Dblp,
            scale: Scale::Tiny,
            out: bin.clone(),
        })
        .expect("generate");
        run(&Command::Convert {
            from: bin.clone(),
            to: txt.clone(),
        })
        .expect("to edge list");
        run(&Command::Convert {
            from: txt.clone(),
            to: dir.join("g2.qbsg"),
        })
        .expect("back to binary");
        let a = qbs_graph::io::read_binary_file(&bin).expect("read a");
        let b = qbs_graph::io::read_binary_file(dir.join("g2.qbsg")).expect("read b");
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn compact_profile_build_inspect_convert_roundtrip() {
        let dir = temp_dir("compact");
        let graph_path = dir.join("g.qbsg");
        run(&Command::Generate {
            dataset: DatasetId::Douban,
            scale: Scale::Tiny,
            out: graph_path.clone(),
        })
        .expect("generate");

        // Build straight into the compact profile.
        let v3_path = dir.join("g.qbs3");
        let report = run(&Command::Build {
            graph: graph_path.clone(),
            landmarks: 8,
            sequential: false,
            out: v3_path.clone(),
            format: IndexFormat::Binary,
            profile: IndexProfile::Compact,
        })
        .expect("build compact");
        assert!(report.contains("compact profile"), "{report}");

        // Inspect renders the width profile, the wide comparison and the
        // satellite density lines.
        let inspect = run(&Command::Inspect {
            index: v3_path.clone(),
        })
        .expect("inspect v3");
        assert!(inspect.contains("qbs-index-v3"), "{inspect}");
        assert!(inspect.contains("dist width"), "{inspect}");
        assert!(inspect.contains("wide bytes"), "{inspect}");
        assert!(inspect.contains("% saved"), "{inspect}");
        assert!(inspect.contains("bytes/vertex"), "{inspect}");
        assert!(inspect.contains("bytes/label-entry"), "{inspect}");

        // The wide arm prints the density summary too.
        let v2_path = dir.join("g.qbs2");
        run(&Command::Build {
            graph: graph_path,
            landmarks: 8,
            sequential: false,
            out: v2_path.clone(),
            format: IndexFormat::Binary,
            profile: IndexProfile::Wide,
        })
        .expect("build wide");
        let inspect_v2 = run(&Command::Inspect {
            index: v2_path.clone(),
        })
        .expect("inspect v2");
        assert!(inspect_v2.contains("wide profile"), "{inspect_v2}");
        assert!(inspect_v2.contains("bytes/vertex"), "{inspect_v2}");
        assert!(inspect_v2.contains("bytes/label-entry"), "{inspect_v2}");

        // The compact file is smaller than the wide one.
        let wide_len = std::fs::metadata(&v2_path).unwrap().len();
        let compact_len = std::fs::metadata(&v3_path).unwrap().len();
        assert!(
            compact_len < wide_len,
            "compact {compact_len} vs wide {wide_len}"
        );

        // convert flips the profile in both directions; answers survive.
        let back_to_wide = dir.join("g_back.qbs2");
        let report = run(&Command::Convert {
            from: v3_path.clone(),
            to: back_to_wide.clone(),
        })
        .expect("convert v3 -> v2");
        assert!(report.contains("wide profile"), "{report}");
        assert_eq!(
            serialize::detect_profile(&back_to_wide).unwrap(),
            IndexProfile::Wide
        );
        let to_compact = dir.join("g_conv.qbs3");
        let report = run(&Command::Convert {
            from: v2_path,
            to: to_compact.clone(),
        })
        .expect("convert v2 -> v3");
        assert!(report.contains("compact profile"), "{report}");
        assert_eq!(
            serialize::detect_profile(&to_compact).unwrap(),
            IndexProfile::Compact
        );

        // Every file answers the same query identically (v3 ones serve
        // through the compact store under Qbs::open/load).
        let q = |index: std::path::PathBuf| {
            run(&Command::Query {
                index,
                source: Some(1),
                target: Some(5),
                pairs: None,
                threads: None,
                from_view: false,
                mmap: false,
                mode: QueryMode::PathGraph,
                stats: false,
                cache: None,
                json: false,
            })
            .expect("query")
        };
        let wide_answer = q(back_to_wide);
        assert_eq!(wide_answer, q(v3_path));
        assert_eq!(wide_answer, q(to_compact));
    }

    #[test]
    fn helpful_errors_for_missing_files_and_bad_queries() {
        let dir = temp_dir("errors");
        assert!(matches!(
            run(&Command::Stats {
                index: dir.join("missing.qbs")
            }),
            Err(CommandError::Index(_))
        ));
        assert!(matches!(
            run(&Command::Build {
                graph: dir.join("missing.qbsg"),
                landmarks: 4,
                sequential: true,
                out: dir.join("out.qbs"),
                format: IndexFormat::Binary,
                profile: IndexProfile::Wide,
            }),
            Err(CommandError::Graph(_))
        ));

        // Out-of-range query vertices surface as index errors.
        let graph_path = dir.join("tiny.qbsg");
        let index_path = dir.join("tiny.qbs");
        run(&Command::Generate {
            dataset: DatasetId::Douban,
            scale: Scale::Tiny,
            out: graph_path.clone(),
        })
        .expect("generate");
        run(&Command::Build {
            graph: graph_path,
            landmarks: 4,
            sequential: true,
            out: index_path.clone(),
            format: IndexFormat::Binary,
            profile: IndexProfile::Wide,
        })
        .expect("build");
        assert!(matches!(
            run(&Command::Query {
                index: index_path,
                source: Some(0),
                target: Some(u32::MAX),
                pairs: None,
                threads: None,
                from_view: false,
                mmap: false,
                mode: QueryMode::PathGraph,
                stats: false,
                cache: None,
                json: false
            }),
            Err(CommandError::Index(_))
        ));
        let rendered = format!("{}", CommandError::UnknownDataset("X".into()));
        assert!(rendered.contains("unknown dataset"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(&Command::Help).unwrap().contains("qbs-cli"));
    }
}
