//! # qbs-cli
//!
//! Library backing the `qbs-cli` binary: a small command layer over the QbS
//! workspace so the index can be used without writing Rust —
//!
//! ```text
//! qbs-cli generate --dataset YT --scale small --out youtube.qbsg
//! qbs-cli build    --graph youtube.qbsg --landmarks 20 --out youtube.qbs
//! qbs-cli query    --index youtube.qbs --source 17 --target 1234 --format json
//! qbs-cli stats    --index youtube.qbs
//! qbs-cli convert  --from edges.txt --to graph.qbsg
//! ```
//!
//! Every command is a plain function returning its report as a `String`, so
//! the whole surface is unit-testable without spawning processes; `main.rs`
//! only parses arguments and prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};
pub use commands::{run, CommandError};
