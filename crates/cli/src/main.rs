//! `qbs-cli`: thin binary wrapper around [`qbs_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match qbs_cli::parse(&args) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", qbs_cli::args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match qbs_cli::run(&command) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
