//! `qbs-cli`: thin binary wrapper around [`qbs_cli`].

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match qbs_cli::parse(&args) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", qbs_cli::args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match qbs_cli::run(&command) {
        Ok(report) => {
            // Rust ignores SIGPIPE, so a downstream `| head` closing early
            // surfaces as a BrokenPipe write error here; that is not a
            // failure of the command (and must not panic like `println!`
            // would). Any *other* write failure (ENOSPC on a redirect,
            // ...) means the report was not delivered — exit non-zero so
            // scripts do not proceed on truncated output.
            match writeln!(std::io::stdout(), "{report}") {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: cannot write report to stdout: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
