//! A sharded LRU answer cache for the online serving path.
//!
//! Shortest-path workloads on social and web graphs are heavily skewed —
//! a small set of (celebrity, celebrity) pairs dominates the traffic — so
//! an answer cache in front of the engine converts the hottest queries
//! into hash lookups. The design points:
//!
//! * **Keyed on normalised `(u, v, mode)`.** Distance is symmetric
//!   (`d(u, v) = d(v, u)`), so both orientations share one entry; path
//!   graphs and sketches record their orientation (source/target, hop
//!   direction, search statistics), so each direction caches separately —
//!   that is what keeps a cache hit *bit-identical* to a fresh answer.
//! * **Sketch-upper-bound admission hints.** Every execution already
//!   computes the landmark upper bound `d⊤ ≥ d_G(u, v)` (Corollary 4.6);
//!   it is a free, conservative proxy for how much search the answer cost.
//!   Answers whose `d⊤` falls below [`CacheConfig::admission_threshold`]
//!   are *not* admitted: an adjacent pair re-computes in microseconds and
//!   would only evict entries worth keeping.
//! * **Sharded LRU.** Keys hash onto [`CacheConfig::shards`] independent
//!   mutex-protected shards, each an intrusive doubly-linked LRU over a
//!   slab — engine workers on different shards never contend.
//!
//! The cache stores the canonical answer body (path-graph entries keep
//! their sketch and statistics), so one entry serves stats and non-stats
//! requests alike; per-request shaping happens on the way out, exactly as
//! on the fresh path.
//!
//! Keys carry **no store identity**: a cache is only valid for one
//! logical index. Share one (via `Arc`) across engines over the *same*
//! index — never across different graphs or landmark sets.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qbs_graph::{Distance, VertexId};

use crate::request::{AnswerBody, QueryMode, QueryOutcome, QueryRequest};

/// Configuration of an [`AnswerCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Target number of cached answers across all shards. The per-shard
    /// budget is `ceil(capacity / shards)`, so the enforced total is
    /// rounded **up** to the next multiple of the shard count — size
    /// memory budgets against `shards * ceil(capacity / shards)`.
    pub capacity: usize,
    /// Number of independent LRU shards (clamped to at least 1 and at most
    /// `capacity`).
    pub shards: usize,
    /// Minimum sketch upper bound `d⊤` an answer needs to be admitted.
    /// `0` admits everything; the default of `2` keeps trivially cheap
    /// answers (same-vertex and label-adjacent pairs) out of the cache.
    pub admission_threshold: Distance,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 8_192,
            shards: 8,
            admission_threshold: 2,
        }
    }
}

impl CacheConfig {
    /// A config with the given total capacity and default sharding and
    /// admission policy.
    pub fn with_capacity(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            ..CacheConfig::default()
        }
    }

    /// Sets the admission threshold (minimum `d⊤`).
    pub fn admit_above(mut self, threshold: Distance) -> Self {
        self.admission_threshold = threshold;
        self
    }
}

/// Counter snapshot of a cache (see [`AnswerCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Answers admitted into the cache.
    pub insertions: u64,
    /// Answers refused by the admission policy.
    pub rejected: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The one-line report shared by the CLI (`query --cache`, `client
/// --stats`) and the server logs — the single place the counters are
/// formatted.
impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cache: {} hits / {} misses ({:.0}% hit rate), {} entries, {} evictions",
            self.hits,
            self.misses,
            self.hit_ratio() * 100.0,
            self.len,
            self.evictions
        )
    }
}

/// Cache key: normalised endpoints plus the query mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    u: VertexId,
    v: VertexId,
    mode: QueryMode,
}

impl CacheKey {
    /// Distance answers are orientation-free, so their key is the sorted
    /// pair; path-graph and sketch answers keep their orientation (their
    /// payloads record source/target, so serving a reversed hit would not
    /// be bit-identical).
    fn for_request(req: &QueryRequest) -> CacheKey {
        let (u, v) = match req.mode {
            QueryMode::Distance => (req.source.min(req.target), req.source.max(req.target)),
            QueryMode::PathGraph | QueryMode::Sketch => (req.source, req.target),
        };
        CacheKey {
            u,
            v,
            mode: req.mode,
        }
    }

    fn shard_of(&self, shards: usize) -> usize {
        let mut hasher = DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) % shards
    }
}

/// Slab slot of one shard's intrusive LRU list. The body is behind an
/// `Arc` so a hit clones a pointer under the shard mutex and the (possibly
/// large) answer clone happens after the lock is released — concurrent
/// readers of one hot key never serialise on the deep copy.
struct Node {
    key: CacheKey,
    body: Arc<AnswerBody>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// One mutex-protected LRU shard: a slab of nodes threaded into a
/// doubly-linked recency list plus a key → slot map. All operations are
/// `O(1)`.
struct Shard {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    evictions: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            evictions: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<AnswerBody>> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        Some(Arc::clone(&self.slab[idx].body))
    }

    fn insert(&mut self, key: CacheKey, body: Arc<AnswerBody>) {
        if let Some(&idx) = self.map.get(&key) {
            // Same key computed twice (e.g. two workers racing the same
            // miss): refresh the entry.
            self.slab[idx].body = body;
            self.touch(idx);
            return;
        }
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let old = self.slab[lru].key;
            self.map.remove(&old);
            self.free.push(lru);
            self.evictions += 1;
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Node {
                    key,
                    body,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Node {
                    key,
                    body,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A thread-safe, sharded LRU cache of query answers (see the module docs
/// for the key, admission and identity rules).
pub struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    admission_threshold: Distance,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    rejected: AtomicU64,
}

impl std::fmt::Debug for AnswerCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl AnswerCache {
    /// Creates a cache from a configuration. Shard count is clamped into
    /// `1..=capacity.max(1)`; capacity is split evenly across shards (each
    /// shard holds at least one entry when the total capacity is nonzero).
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.clamp(1, config.capacity.max(1));
        let per_shard = if config.capacity == 0 {
            0
        } else {
            config.capacity.div_ceil(shards)
        };
        AnswerCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            admission_threshold: config.admission_threshold,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[key.shard_of(self.shards.len())]
    }

    /// Looks the request up, shaping a hit into the outcome the request
    /// asked for. Counts a hit or a miss. The critical section is `O(1)`:
    /// only the `Arc` handle is cloned under the shard lock; the answer
    /// itself is shaped (cloned) after the lock is released.
    pub fn lookup(&self, req: &QueryRequest) -> Option<QueryOutcome> {
        self.lookup_body(req).map(|body| body.shape(&req.opts))
    }

    /// The un-shaped half of [`AnswerCache::lookup`]: returns the cached
    /// canonical body, counting one hit or one miss. The batch planner
    /// uses this to shape one cached body into every coalesced slot while
    /// still charging the counters exactly once per distinct key.
    pub(crate) fn lookup_body(&self, req: &QueryRequest) -> Option<Arc<AnswerBody>> {
        let key = CacheKey::for_request(req);
        let body = {
            let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
            shard.get(&key)
        };
        match &body {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        body
    }

    /// Offers a freshly computed answer for admission. `hint` is the
    /// query's sketch upper bound `d⊤`; answers below the admission
    /// threshold are rejected (counted, not stored). The deep copy of the
    /// body happens before the shard lock is taken.
    pub(crate) fn admit(&self, req: &QueryRequest, body: &AnswerBody, hint: Distance) {
        if hint < self.admission_threshold {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let key = CacheKey::for_request(req);
        let body = Arc::new(body.clone());
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        shard.insert(key, body);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    /// A consistent snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evictions: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").evictions)
                .sum(),
            len: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryAnswer;
    use crate::request::execute_cached_on;
    use crate::search::SearchStats;
    use crate::sketch::Sketch;
    use crate::workspace::QueryWorkspace;
    use crate::{QbsConfig, QbsIndex};
    use qbs_graph::fixtures::figure4_graph;
    use qbs_graph::PathGraph;

    fn index() -> QbsIndex {
        QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        )
    }

    fn distance_body(d: Distance) -> AnswerBody {
        AnswerBody::Distance(d)
    }

    #[test]
    fn hits_are_bit_identical_to_fresh_answers() {
        let index = index();
        let cache = AnswerCache::new(CacheConfig::default().admit_above(0));
        let mut ws = QueryWorkspace::new();
        for mode in QueryMode::ALL {
            for opts in [
                QueryRequest::new(6, 11, mode),
                QueryRequest::new(6, 11, mode).with_stats(),
            ] {
                let fresh = crate::request::execute_on(&index, &mut ws, &opts);
                let miss_then_fill = execute_cached_on(&index, &mut ws, &opts, Some(&cache));
                let hit = execute_cached_on(&index, &mut ws, &opts, Some(&cache));
                assert_eq!(fresh, miss_then_fill, "{mode} fill");
                assert_eq!(fresh, hit, "{mode} hit");
            }
        }
        assert!(cache.stats().hits >= 3, "{:?}", cache.stats());
    }

    #[test]
    fn distance_keys_are_symmetric_but_path_keys_are_not() {
        let index = index();
        let cache = AnswerCache::new(CacheConfig::default().admit_above(0));
        let mut ws = QueryWorkspace::new();
        execute_cached_on(
            &index,
            &mut ws,
            &QueryRequest::distance(6, 11),
            Some(&cache),
        );
        let before = cache.stats();
        let reversed = execute_cached_on(
            &index,
            &mut ws,
            &QueryRequest::distance(11, 6),
            Some(&cache),
        );
        assert_eq!(reversed.distance(), Some(5));
        assert_eq!(cache.stats().hits, before.hits + 1, "distance is symmetric");

        execute_cached_on(
            &index,
            &mut ws,
            &QueryRequest::path_graph(6, 11),
            Some(&cache),
        );
        let before = cache.stats();
        let rev = execute_cached_on(
            &index,
            &mut ws,
            &QueryRequest::path_graph(11, 6),
            Some(&cache),
        );
        assert_eq!(
            cache.stats().misses,
            before.misses + 1,
            "paths keep direction"
        );
        assert_eq!(rev.path_graph().unwrap().source(), 11);
    }

    #[test]
    fn admission_threshold_rejects_cheap_answers() {
        let index = index();
        // Figure 4: d(4, 2) = 1 with landmark 2 adjacent, so d⊤ = 1.
        let cache = AnswerCache::new(CacheConfig::default().admit_above(3));
        let mut ws = QueryWorkspace::new();
        let cheap = QueryRequest::distance(4, 2);
        execute_cached_on(&index, &mut ws, &cheap, Some(&cache));
        assert_eq!(cache.len(), 0, "cheap answer not admitted");
        assert_eq!(cache.stats().rejected, 1);

        let costly = QueryRequest::distance(6, 11); // d⊤ = 5
        execute_cached_on(&index, &mut ws, &costly, Some(&cache));
        assert_eq!(cache.len(), 1, "costly answer admitted");
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn uncached_requests_bypass_the_cache() {
        let index = index();
        let cache = AnswerCache::new(CacheConfig::default().admit_above(0));
        let mut ws = QueryWorkspace::new();
        let req = QueryRequest::distance(6, 11).uncached();
        execute_cached_on(&index, &mut ws, &req, Some(&cache));
        execute_cached_on(&index, &mut ws, &req, Some(&cache));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 0, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut shard = Shard::new(3);
        let key = |u: VertexId| CacheKey {
            u,
            v: u + 1,
            mode: QueryMode::Distance,
        };
        for u in 0..3 {
            shard.insert(key(u), Arc::new(distance_body(u)));
        }
        // Touch 0 so 1 becomes the LRU victim.
        assert_eq!(shard.get(&key(0)).as_deref(), Some(&distance_body(0)));
        shard.insert(key(3), Arc::new(distance_body(3)));
        assert_eq!(shard.map.len(), 3);
        assert!(shard.get(&key(1)).is_none(), "1 was evicted");
        assert!(shard.get(&key(0)).is_some());
        assert!(shard.get(&key(2)).is_some());
        assert!(shard.get(&key(3)).is_some());
        assert_eq!(shard.evictions, 1);

        // Re-inserting an existing key refreshes instead of duplicating.
        shard.insert(key(2), Arc::new(distance_body(99)));
        assert_eq!(shard.map.len(), 3);
        assert_eq!(shard.get(&key(2)).as_deref(), Some(&distance_body(99)));
    }

    #[test]
    fn capacity_is_enforced_across_shards() {
        let cache = AnswerCache::new(CacheConfig {
            capacity: 16,
            shards: 4,
            admission_threshold: 0,
        });
        let answer = AnswerBody::PathGraph(Box::new(QueryAnswer {
            path_graph: PathGraph::trivial(0),
            sketch: Sketch::unreachable(0, 0),
            stats: SearchStats::default(),
        }));
        for u in 0..200u32 {
            let req = QueryRequest::path_graph(u, u + 1);
            cache.admit(&req, &answer, 10);
        }
        // div_ceil split: every shard holds at most capacity/shards entries.
        assert!(cache.len() <= 16, "len = {}", cache.len());
        assert!(cache.stats().evictions >= 184 - 16, "{:?}", cache.stats());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn degenerate_configs_are_safe() {
        // Zero capacity: never stores, never panics.
        let cache = AnswerCache::new(CacheConfig {
            capacity: 0,
            shards: 8,
            admission_threshold: 0,
        });
        cache.admit(&QueryRequest::distance(0, 1), &distance_body(1), 10);
        assert!(cache.is_empty());
        assert!(cache.lookup(&QueryRequest::distance(0, 1)).is_none());

        // More shards than capacity: clamped.
        let cache = AnswerCache::new(CacheConfig {
            capacity: 2,
            shards: 64,
            admission_threshold: 0,
        });
        cache.admit(&QueryRequest::distance(0, 1), &distance_body(1), 10);
        assert_eq!(cache.len(), 1);
        assert!(format!("{cache:?}").contains("stats"));
        assert_eq!(CacheConfig::with_capacity(7).capacity, 7);
        assert!(CacheStats::default().hit_ratio() == 0.0);
    }
}
