//! Pair-coverage analysis (Figure 8).
//!
//! For a workload of query pairs, the paper classifies each pair by how its
//! shortest paths relate to the landmarks:
//!
//! * **Case (i)** — *all* shortest paths between the pair pass through at
//!   least one landmark (`d_{G⁻}(u, v) > d_G(u, v)`);
//! * **Case (ii)** — *some but not all* shortest paths pass through a
//!   landmark (`d_{G⁻} = d_G` and the sketch bound `d⊤` is also tight);
//! * **uncovered** — no shortest path passes any landmark (`d⊤ > d_G`).
//!
//! The sum of the two covered ratios is the *pair coverage ratio*, which
//! §6.3 uses to explain when sketching can guide queries effectively.

use serde::{Deserialize, Serialize};

use qbs_graph::VertexId;

use crate::query::QbsIndex;

/// Classification of one query pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairCoverage {
    /// All shortest paths pass through at least one landmark (case i).
    AllThroughLandmarks,
    /// Some but not all shortest paths pass through a landmark (case ii).
    SomeThroughLandmarks,
    /// No shortest path passes any landmark.
    NoneThroughLandmarks,
    /// The endpoints are disconnected (or identical); excluded from ratios.
    NotApplicable,
}

/// Aggregated coverage counts over a workload — one bar of Figure 8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Pairs where all shortest paths pass a landmark.
    pub all_through: usize,
    /// Pairs where some but not all shortest paths pass a landmark.
    pub some_through: usize,
    /// Pairs where no shortest path passes a landmark.
    pub none_through: usize,
    /// Disconnected or trivial pairs.
    pub not_applicable: usize,
}

impl CoverageReport {
    /// Total number of classified pairs.
    pub fn total(&self) -> usize {
        self.all_through + self.some_through + self.none_through + self.not_applicable
    }

    /// Fraction of applicable pairs in case (i) (the light bars of Figure 8).
    pub fn all_through_ratio(&self) -> f64 {
        self.ratio(self.all_through)
    }

    /// Fraction of applicable pairs in case (ii) (the grey bars of Figure 8).
    pub fn some_through_ratio(&self) -> f64 {
        self.ratio(self.some_through)
    }

    /// The pair coverage ratio: case (i) plus case (ii).
    pub fn pair_coverage_ratio(&self) -> f64 {
        self.all_through_ratio() + self.some_through_ratio()
    }

    fn ratio(&self, count: usize) -> f64 {
        let applicable = self.all_through + self.some_through + self.none_through;
        if applicable == 0 {
            0.0
        } else {
            count as f64 / applicable as f64
        }
    }
}

/// Classifies a single pair using one guided search.
pub fn classify_pair(index: &QbsIndex, u: VertexId, v: VertexId) -> PairCoverage {
    if u == v {
        return PairCoverage::NotApplicable;
    }
    let Ok(answer) = index.query_with_stats(u, v) else {
        return PairCoverage::NotApplicable;
    };
    if !answer.path_graph.is_reachable() {
        return PairCoverage::NotApplicable;
    }
    let stats = answer.stats;
    if stats.sparsified_distance > stats.distance {
        // The sparsified graph cannot realise the distance: every shortest
        // path needs a landmark.
        PairCoverage::AllThroughLandmarks
    } else if stats.upper_bound == stats.distance {
        PairCoverage::SomeThroughLandmarks
    } else {
        PairCoverage::NoneThroughLandmarks
    }
}

/// Classifies a whole workload.
pub fn classify_workload(index: &QbsIndex, pairs: &[(VertexId, VertexId)]) -> CoverageReport {
    let mut report = CoverageReport::default();
    for &(u, v) in pairs {
        match classify_pair(index, u, v) {
            PairCoverage::AllThroughLandmarks => report.all_through += 1,
            PairCoverage::SomeThroughLandmarks => report.some_through += 1,
            PairCoverage::NoneThroughLandmarks => report.none_through += 1,
            PairCoverage::NotApplicable => report.not_applicable += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QbsConfig;
    use qbs_graph::fixtures::figure4_graph;

    fn figure4_index() -> QbsIndex {
        QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        )
    }

    #[test]
    fn classifies_the_three_cases_on_figure4() {
        let index = figure4_index();
        // (4, 12): only path is 4-3-12 through landmark 3 → case (i).
        assert_eq!(
            classify_pair(&index, 4, 12),
            PairCoverage::AllThroughLandmarks
        );
        // (6, 11): some shortest paths use landmarks, one avoids them → (ii).
        assert_eq!(
            classify_pair(&index, 6, 11),
            PairCoverage::SomeThroughLandmarks
        );
        // (7, 9): the unique shortest path 7-8-9 avoids all landmarks.
        assert_eq!(
            classify_pair(&index, 7, 9),
            PairCoverage::NoneThroughLandmarks
        );
        // Trivial and disconnected pairs are excluded.
        assert_eq!(classify_pair(&index, 5, 5), PairCoverage::NotApplicable);
        assert_eq!(classify_pair(&index, 0, 5), PairCoverage::NotApplicable);
    }

    #[test]
    fn workload_report_aggregates_and_normalises() {
        let index = figure4_index();
        let pairs = [(4u32, 12u32), (6, 11), (7, 9), (5, 5), (0, 5)];
        let report = classify_workload(&index, &pairs);
        assert_eq!(report.all_through, 1);
        assert_eq!(report.some_through, 1);
        assert_eq!(report.none_through, 1);
        assert_eq!(report.not_applicable, 2);
        assert_eq!(report.total(), 5);
        assert!((report.all_through_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.pair_coverage_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn more_landmarks_never_reduce_coverage_on_figure4() {
        // Figure 8's monotone trend, checked exhaustively on the example.
        let g = figure4_graph();
        let pairs: Vec<(u32, u32)> = (1..15u32)
            .flat_map(|u| (1..15u32).map(move |v| (u, v)))
            .filter(|(u, v)| u != v)
            .collect();
        let small = QbsIndex::build(g.clone(), QbsConfig::with_explicit_landmarks(vec![1, 2]));
        let large = QbsIndex::build(g, QbsConfig::with_explicit_landmarks(vec![1, 2, 3, 9]));
        let r_small = classify_workload(&small, &pairs);
        let r_large = classify_workload(&large, &pairs);
        assert!(r_large.pair_coverage_ratio() >= r_small.pair_coverage_ratio());
    }

    #[test]
    fn empty_workload_has_zero_ratios() {
        let report = CoverageReport::default();
        assert_eq!(report.total(), 0);
        assert_eq!(report.pair_coverage_ratio(), 0.0);
    }
}
