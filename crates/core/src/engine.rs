//! Concurrent batch query execution over a pool of reusable workspaces.
//!
//! A [`QueryEngine`] is the serving-side companion of the index: it owns a
//! pool of [`QueryWorkspace`]s and fans batches of queries out over a
//! scoped worker pool. Each worker checks one workspace out of the pool for
//! the whole batch and pulls query indices from a shared atomic cursor in
//! small chunks — a work-stealing discipline (idle workers keep claiming
//! whatever work remains) that keeps all cores busy even when per-query
//! cost is highly skewed, which it is: a query whose endpoints are far
//! apart expands orders of magnitude more frontier than an adjacent pair.
//!
//! The engine is generic over its [`IndexStore`] backend:
//! `QueryEngine<'_, QbsIndex>` (the default) serves the owned index, while
//! `QueryEngine<'_, ViewStore>` serves **straight from a mapped index
//! file** — a cold shard process maps one immutable file, wraps it in a
//! [`crate::store::ViewStore`], and answers its first query without ever
//! materialising the owned structures. Answers are bit-identical across
//! backends.
//!
//! Because workspaces are returned to the pool after every batch, the
//! steady state of a long-running engine performs **zero workspace
//! allocations**: the per-vertex scratch arrays are allocated once per
//! worker and reset per query by epoch bumping (see
//! [`crate::workspace`]). The only remaining heap traffic is the storage
//! owned by the returned answers.
//!
//! ```
//! use qbs_core::{QbsConfig, QbsIndex, QueryEngine};
//! use qbs_graph::fixtures::figure4_graph;
//!
//! let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
//! let engine = QueryEngine::new(&index);
//! let answers = engine.query_batch(&[(6, 11), (4, 12), (7, 9)]).unwrap();
//! assert_eq!(answers.len(), 3);
//! assert_eq!(answers[0].path_graph, index.query(6, 11).unwrap());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use qbs_graph::{Distance, VertexId};

use crate::query::{self, QbsIndex, QueryAnswer};
use crate::store::IndexStore;
use crate::workspace::QueryWorkspace;
use crate::QbsError;

/// How many query indices a worker claims per cursor fetch. Small enough
/// that skewed batches still balance, large enough that the atomic is not
/// contended on microsecond queries.
const CLAIM_CHUNK: usize = 16;

/// A concurrent batch query engine over a borrowed [`IndexStore`].
pub struct QueryEngine<'idx, S: IndexStore = QbsIndex> {
    store: &'idx S,
    threads: usize,
    /// Checked-out-and-returned pool of per-worker workspaces. Check-in
    /// drops workspaces beyond `threads`, so even when multiple callers run
    /// batches on the same engine concurrently (each batch spawns its own
    /// scoped workers), the retained memory stays bounded at `threads`
    /// workspaces; the surplus is freed instead of pooled.
    workspaces: Mutex<Vec<QueryWorkspace>>,
}

impl<'idx, S: IndexStore> QueryEngine<'idx, S> {
    /// Creates an engine using all available parallelism.
    pub fn new(store: &'idx S) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build(store, threads)
    }

    /// Creates an engine with an explicit worker count.
    ///
    /// Fails with [`QbsError::ThreadPool`] when `threads` is zero.
    pub fn with_threads(store: &'idx S, threads: usize) -> crate::Result<Self> {
        if threads == 0 {
            return Err(QbsError::ThreadPool(
                "QueryEngine requires at least one worker thread".into(),
            ));
        }
        Ok(Self::build(store, threads))
    }

    fn build(store: &'idx S, threads: usize) -> Self {
        QueryEngine {
            store,
            threads,
            workspaces: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped storage backend.
    pub fn store(&self) -> &'idx S {
        self.store
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of pooled workspaces currently available (grows towards the
    /// worker count as batches run; exposed for tests and monitoring).
    pub fn pooled_workspaces(&self) -> usize {
        self.workspaces
            .lock()
            .expect("workspace pool poisoned")
            .len()
    }

    /// Answers a single query on a pooled workspace.
    pub fn query(&self, source: VertexId, target: VertexId) -> crate::Result<QueryAnswer> {
        let mut ws = self.checkout();
        let result = query::query_on(self.store, &mut ws, source, target);
        self.checkin(ws);
        result
    }

    /// Answers a batch of queries, in input order.
    ///
    /// Vertices are validated up front, so the parallel phase is
    /// infallible; an out-of-range pair fails the whole batch with
    /// [`QbsError::VertexOutOfRange`] before any search runs. Answers are
    /// bit-identical to calling [`QbsIndex::query`] per pair — on any
    /// backend.
    pub fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> crate::Result<Vec<QueryAnswer>> {
        self.run_batch(pairs, |store, ws, (u, v)| {
            query::query_on(store, ws, u, v)
                .expect("batch pairs validated before the parallel phase")
        })
    }

    /// Computes only the distances of a batch of queries, in input order —
    /// the cheapest serving path (no path-graph materialisation at all).
    pub fn distance_batch(&self, pairs: &[(VertexId, VertexId)]) -> crate::Result<Vec<Distance>> {
        self.run_batch(pairs, |store, ws, (u, v)| {
            query::distance_on(store, ws, u, v)
                .expect("batch pairs validated before the parallel phase")
        })
    }

    /// Shared batch driver: validates, then fans `op` out over the workers.
    fn run_batch<R: Send + Sync>(
        &self,
        pairs: &[(VertexId, VertexId)],
        op: impl Fn(&S, &mut QueryWorkspace, (VertexId, VertexId)) -> R + Sync,
    ) -> crate::Result<Vec<R>> {
        let n = self.store.num_vertices() as u64;
        for &(u, v) in pairs {
            if u as u64 >= n || v as u64 >= n {
                return Err(QbsError::VertexOutOfRange {
                    vertex: if u as u64 >= n { u as u64 } else { v as u64 },
                    num_vertices: n,
                });
            }
        }

        let workers = self.threads.min(pairs.len().div_ceil(CLAIM_CHUNK)).max(1);
        if workers == 1 {
            let mut ws = self.checkout();
            let out = pairs
                .iter()
                .map(|&pair| op(self.store, &mut ws, pair))
                .collect();
            self.checkin(ws);
            return Ok(out);
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<R>> = (0..pairs.len()).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ws = self.checkout();
                    loop {
                        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                        if start >= pairs.len() {
                            break;
                        }
                        let end = (start + CLAIM_CHUNK).min(pairs.len());
                        for idx in start..end {
                            let answer = op(self.store, &mut ws, pairs[idx]);
                            slots[idx]
                                .set(answer)
                                .unwrap_or_else(|_| panic!("slot {idx} filled twice"));
                        }
                    }
                    self.checkin(ws);
                });
            }
        });

        Ok(slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled by the workers"))
            .collect())
    }

    fn checkout(&self) -> QueryWorkspace {
        self.workspaces
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_else(|| QueryWorkspace::for_vertices(self.store.num_vertices()))
    }

    fn checkin(&self, ws: QueryWorkspace) {
        let mut pool = self.workspaces.lock().expect("workspace pool poisoned");
        // Bound retained memory at one workspace per configured worker;
        // surplus workspaces (possible when several batches run on this
        // engine concurrently) are dropped rather than pooled.
        if pool.len() < self.threads {
            pool.push(ws);
        }
    }
}

impl<'idx> QueryEngine<'idx, QbsIndex> {
    /// The wrapped index (alias of [`QueryEngine::store`] for the owned
    /// backend).
    pub fn index(&self) -> &'idx QbsIndex {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QbsConfig;
    use crate::store::ViewStore;
    use qbs_graph::fixtures::{figure3_graph, figure4_graph};

    fn all_pairs(n: u32) -> Vec<(VertexId, VertexId)> {
        let mut pairs = Vec::new();
        for u in 0..n {
            for v in 0..n {
                pairs.push((u, v));
            }
        }
        pairs
    }

    #[test]
    fn batch_answers_match_single_queries_in_order() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let engine = QueryEngine::with_threads(&index, 4).expect("engine");
        let pairs = all_pairs(15);
        let answers = engine.query_batch(&pairs).expect("batch");
        assert_eq!(answers.len(), pairs.len());
        for (&(u, v), answer) in pairs.iter().zip(&answers) {
            let expected = index.query_with_stats(u, v).expect("single query");
            assert_eq!(
                answer.path_graph, expected.path_graph,
                "answer of ({u},{v})"
            );
            assert_eq!(answer.stats, expected.stats, "stats of ({u},{v})");
        }
    }

    #[test]
    fn view_backed_engine_matches_owned_engine() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let store = ViewStore::new(index.as_view());
        let owned_engine = QueryEngine::with_threads(&index, 2).expect("engine");
        let view_engine = QueryEngine::with_threads(&store, 2).expect("view engine");
        let pairs = all_pairs(15);
        let owned = owned_engine.query_batch(&pairs).expect("owned batch");
        let viewed = view_engine.query_batch(&pairs).expect("view batch");
        for ((a, b), &(u, v)) in owned.iter().zip(&viewed).zip(&pairs) {
            assert_eq!(a, b, "batch answer of ({u},{v}) diverged across backends");
        }
        assert_eq!(
            owned_engine
                .distance_batch(&pairs)
                .expect("owned distances"),
            view_engine.distance_batch(&pairs).expect("view distances"),
        );
        assert_eq!(view_engine.store().view().num_landmarks(), 3);
    }

    #[test]
    fn distance_batch_matches_query_batch() {
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(2));
        let engine = QueryEngine::with_threads(&index, 2).expect("engine");
        let pairs = all_pairs(8);
        let answers = engine.query_batch(&pairs).expect("batch");
        let distances = engine.distance_batch(&pairs).expect("distances");
        for ((answer, d), &(u, v)) in answers.iter().zip(&distances).zip(&pairs) {
            assert_eq!(answer.path_graph.distance(), *d, "distance of ({u},{v})");
        }
    }

    #[test]
    fn workspace_pool_is_bounded_and_reused() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let engine = QueryEngine::with_threads(&index, 3).expect("engine");
        assert_eq!(engine.pooled_workspaces(), 0);
        for _ in 0..5 {
            engine.query_batch(&all_pairs(15)).expect("batch");
        }
        let pooled = engine.pooled_workspaces();
        assert!((1..=3).contains(&pooled), "pool holds {pooled} workspaces");
        let total_served: u64 = {
            let pool = engine.workspaces.lock().unwrap();
            pool.iter().map(|ws| ws.queries_served()).sum()
        };
        assert_eq!(total_served, 5 * 15 * 15, "workspaces were actually reused");
    }

    #[test]
    fn batch_validates_vertices_up_front() {
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(2));
        let engine = QueryEngine::new(&index);
        let err = engine.query_batch(&[(0, 1), (99, 0)]).unwrap_err();
        assert!(matches!(err, QbsError::VertexOutOfRange { vertex: 99, .. }));
        assert!(engine.query(0, 99).is_err());
        assert_eq!(engine.query(3, 7).unwrap().path_graph.distance(), 4);
    }

    #[test]
    fn zero_threads_is_rejected() {
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(2));
        assert!(matches!(
            QueryEngine::with_threads(&index, 0),
            Err(QbsError::ThreadPool(_))
        ));
        assert!(QueryEngine::new(&index).threads() >= 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(2));
        let engine = QueryEngine::new(&index);
        assert!(engine.query_batch(&[]).expect("empty").is_empty());
        assert_eq!(engine.index().graph().num_vertices(), 8);
    }
}
