//! Concurrent batch query execution over a pool of reusable workspaces.
//!
//! A [`QueryEngine`] is the serving-side companion of the index: it owns a
//! pool of [`QueryWorkspace`]s and fans batches of queries out over a
//! scoped worker pool. Each worker checks one workspace out of the pool for
//! the whole batch and pulls query indices from a shared atomic cursor in
//! small chunks — a work-stealing discipline (idle workers keep claiming
//! whatever work remains) that keeps all cores busy even when per-query
//! cost is highly skewed, which it is: a query whose endpoints are far
//! apart expands orders of magnitude more frontier than an adjacent pair.
//!
//! The engine is generic over its [`IndexStore`] backend:
//! `QueryEngine<'_, QbsIndex>` (the default) serves the owned index, while
//! `QueryEngine<'_, ViewStore>` serves **straight from a mapped index
//! file** — a cold shard process maps one immutable file, wraps it in a
//! [`crate::store::ViewStore`], and answers its first query without ever
//! materialising the owned structures. Answers are bit-identical across
//! backends.
//!
//! Because workspaces are returned to the pool after every batch, the
//! steady state of a long-running engine performs **zero workspace
//! allocations**: the per-vertex scratch arrays are allocated once per
//! worker and reset per query by epoch bumping (see
//! [`crate::workspace`]). The only remaining heap traffic is the storage
//! owned by the returned answers.
//!
//! The serving entry point is the typed request pipeline
//! ([`crate::request`]): [`QueryEngine::submit`] executes a heterogeneous
//! batch of [`QueryRequest`]s — distance, path-graph and sketch modes mix
//! freely — with **per-request** outcomes, so one out-of-range pair yields
//! one [`QueryOutcome::Error`] slot instead of poisoning the batch. An
//! optional sharded LRU [`AnswerCache`] slots in front of the executor
//! ([`QueryEngine::with_answer_cache`]). This is the *only* batch surface:
//! the old homogeneous `query_batch`/`distance_batch` wrappers (whole-batch
//! failure, no cache) are gone — build `QueryRequest`s instead.
//!
//! ```
//! use qbs_core::request::QueryRequest;
//! use qbs_core::{QbsConfig, QbsIndex, QueryEngine};
//! use qbs_graph::fixtures::figure4_graph;
//!
//! let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
//! let engine = QueryEngine::new(&index);
//! // Heterogeneous batch: a distance probe, a full answer, a bad request.
//! let outcomes = engine.submit(&[
//!     QueryRequest::distance(6, 11),
//!     QueryRequest::path_graph(4, 12),
//!     QueryRequest::distance(6, 999),
//! ]);
//! assert_eq!(outcomes[0].distance(), Some(5));
//! assert!(outcomes[1].path_graph().is_some());
//! assert!(outcomes[2].is_error()); // that slot only — the batch survived
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use qbs_graph::VertexId;

use crate::cache::{AnswerCache, CacheConfig, CacheStats};
use crate::obs::{AtomicStageNanos, Metrics, Stage, StageNanos};
use crate::plan::{self, PlannerCounters, PlannerStats};
use crate::query::{self, QbsIndex, QueryAnswer};
use crate::request::{execute_cached_on, QueryOutcome, QueryRequest};
use crate::store::IndexStore;
use crate::workspace::QueryWorkspace;
use crate::QbsError;

/// How many query indices a worker claims per cursor fetch. Small enough
/// that skewed batches still balance, large enough that the atomic is not
/// contended on microsecond queries.
pub(crate) const CLAIM_CHUNK: usize = 16;

/// A concurrent batch query engine over a borrowed [`IndexStore`].
pub struct QueryEngine<'idx, S: IndexStore = QbsIndex> {
    store: &'idx S,
    threads: usize,
    /// Checked-out-and-returned pool of per-worker workspaces. Check-in
    /// drops workspaces beyond `threads`, so even when multiple callers run
    /// batches on the same engine concurrently (each batch spawns its own
    /// scoped workers), the retained memory stays bounded at `threads`
    /// workspaces; the surplus is freed instead of pooled.
    workspaces: Mutex<Vec<QueryWorkspace>>,
    /// Optional answer cache consulted by the request pipeline
    /// ([`QueryEngine::submit`] / [`QueryEngine::execute`]). `Arc` so a
    /// session façade (or several engines over the same store) can share
    /// one cache.
    cache: Option<Arc<AnswerCache>>,
    /// Whether [`QueryEngine::submit`] runs the batch execution planner
    /// (`true` by default; see [`crate::plan`]).
    planner: bool,
    /// Planner effectiveness counters. `Arc` for the same reason as the
    /// cache: the session façade accumulates across transient engines.
    counters: Arc<PlannerCounters>,
    /// Observability registry fed with per-stage request timings. `Arc`
    /// for the same reason as the planner counters; `None` on standalone
    /// engines, which stay uninstrumented.
    metrics: Option<Arc<Metrics>>,
    /// Per-stage sums of the batch(es) executed since the last
    /// [`QueryEngine::take_batch_obs`] — the slow-query log's breakdown.
    batch_ns: AtomicStageNanos,
}

impl<'idx, S: IndexStore> QueryEngine<'idx, S> {
    /// Creates an engine using all available parallelism.
    pub fn new(store: &'idx S) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build(store, threads)
    }

    /// Creates an engine with an explicit worker count.
    ///
    /// Fails with [`QbsError::ThreadPool`] when `threads` is zero.
    pub fn with_threads(store: &'idx S, threads: usize) -> crate::Result<Self> {
        if threads == 0 {
            return Err(QbsError::ThreadPool(
                "QueryEngine requires at least one worker thread".into(),
            ));
        }
        Ok(Self::build(store, threads))
    }

    fn build(store: &'idx S, threads: usize) -> Self {
        QueryEngine {
            store,
            threads,
            workspaces: Mutex::new(Vec::new()),
            cache: None,
            planner: true,
            counters: Arc::new(PlannerCounters::default()),
            metrics: None,
            batch_ns: AtomicStageNanos::default(),
        }
    }

    /// Builds an engine that already owns a warm workspace pool and
    /// (optionally) a shared cache plus planner counters — the session
    /// façade's way of keeping its steady state across transient engines.
    pub(crate) fn with_pool(
        store: &'idx S,
        threads: usize,
        pool: Vec<QueryWorkspace>,
        cache: Option<Arc<AnswerCache>>,
        counters: Arc<PlannerCounters>,
        metrics: Option<Arc<Metrics>>,
    ) -> Self {
        QueryEngine {
            store,
            threads,
            workspaces: Mutex::new(pool),
            cache,
            planner: true,
            counters,
            metrics,
            batch_ns: AtomicStageNanos::default(),
        }
    }

    /// Takes the workspace pool back out of the engine (façade pool
    /// handoff; see [`QueryEngine::with_pool`]).
    pub(crate) fn into_pool(self) -> Vec<QueryWorkspace> {
        self.workspaces
            .into_inner()
            .expect("workspace pool poisoned")
    }

    /// Attaches a fresh answer cache with the given configuration
    /// (builder style). See [`crate::cache`] for the admission and
    /// identity rules.
    pub fn with_answer_cache(mut self, config: CacheConfig) -> Self {
        self.cache = Some(Arc::new(AnswerCache::new(config)));
        self
    }

    /// Attaches an existing (possibly shared) answer cache.
    ///
    /// Cache keys are `(u, v, mode)` with **no store identity**, so every
    /// engine sharing one cache MUST serve the same logical index
    /// (identical graph + landmark set — e.g. the owned index and a view
    /// of its own serialised bytes, or several engines over one store).
    /// Sharing a cache across *different* indexes silently serves answers
    /// from the wrong graph.
    pub fn with_shared_cache(mut self, cache: Arc<AnswerCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables or disables the batch execution planner (enabled by
    /// default). With the planner off, [`QueryEngine::submit`] executes
    /// every slot independently — the pre-planner behaviour, kept for
    /// differential testing and benchmarking; outcomes are bit-identical
    /// either way.
    pub fn with_planner(mut self, enabled: bool) -> Self {
        self.planner = enabled;
        self
    }

    /// Snapshot of the planner's effectiveness counters (coalesced
    /// duplicate slots, memoized label fetches, reused forward-BFS
    /// levels). All zero while the planner is disabled.
    pub fn planner_stats(&self) -> PlannerStats {
        self.counters.snapshot()
    }

    pub(crate) fn planner_counters(&self) -> &PlannerCounters {
        &self.counters
    }

    /// The metrics registry, when attached *and* recording — the one
    /// check instrumented paths branch on.
    pub(crate) fn obs(&self) -> Option<&Metrics> {
        self.metrics.as_deref().filter(|m| m.is_enabled())
    }

    /// Per-batch stage accumulator (slow-query breakdown sink).
    pub(crate) fn batch_obs(&self) -> &AtomicStageNanos {
        &self.batch_ns
    }

    /// Takes the per-stage time sums accumulated since the last call —
    /// the whole-batch breakdown the serving layer attaches to slow-query
    /// log lines. All zero while uninstrumented.
    pub fn take_batch_obs(&self) -> StageNanos {
        self.batch_ns.take()
    }

    /// Executes one request on `ws` with stage instrumentation, flushing
    /// the request's stage figures into the metrics registry. The shared
    /// per-request execution body of [`QueryEngine::execute`] and the
    /// non-planned [`QueryEngine::submit`] path.
    pub(crate) fn execute_observed(
        &self,
        ws: &mut QueryWorkspace,
        request: &QueryRequest,
    ) -> QueryOutcome {
        let metrics = self.obs();
        ws.obs.enabled = metrics.is_some();
        let t = ws.obs.start();
        let outcome = execute_cached_on(self.store, ws, request, self.cache.as_deref());
        ws.obs.stop(Stage::Execute, t);
        if let Some(m) = metrics {
            let ns = ws.obs.take();
            m.record_request(request.mode, &ns);
            self.batch_ns.add(&ns);
            ws.obs.enabled = false;
        }
        outcome
    }

    pub(crate) fn cache_ref(&self) -> Option<&AnswerCache> {
        self.cache.as_deref()
    }

    /// The attached answer cache, if any.
    pub fn answer_cache(&self) -> Option<&Arc<AnswerCache>> {
        self.cache.as_ref()
    }

    /// Counter snapshot of the attached cache (`None` when the engine runs
    /// uncached).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The wrapped storage backend.
    pub fn store(&self) -> &'idx S {
        self.store
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of pooled workspaces currently available (grows towards the
    /// worker count as batches run; exposed for tests and monitoring).
    pub fn pooled_workspaces(&self) -> usize {
        self.workspaces
            .lock()
            .expect("workspace pool poisoned")
            .len()
    }

    /// Answers a single query on a pooled workspace.
    pub fn query(&self, source: VertexId, target: VertexId) -> crate::Result<QueryAnswer> {
        let mut ws = self.checkout();
        let result = query::query_on(self.store, &mut ws, source, target);
        self.checkin(ws);
        result
    }

    /// Executes a single typed request on a pooled workspace, through the
    /// cache when one is attached.
    pub fn execute(&self, request: &QueryRequest) -> QueryOutcome {
        let mut ws = self.checkout();
        let outcome = self.execute_observed(&mut ws, request);
        self.checkin(ws);
        outcome
    }

    /// Executes a heterogeneous batch of typed requests, in input order —
    /// the serving entry point of the request pipeline, and the only
    /// batch API.
    ///
    /// `submit` never fails as a whole: each slot resolves independently,
    /// so a request with an out-of-range endpoint yields
    /// [`QueryOutcome::Error`] *for that slot only* while every other
    /// request is answered normally. Distance, path-graph and sketch
    /// requests mix freely in one batch, and requests with
    /// [`crate::request::QueryOptions::use_cache`] go through the attached
    /// answer cache. Outcomes are bit-identical across storage backends.
    ///
    /// Batches of two or more requests run through the batch execution
    /// planner ([`crate::plan`]): duplicate requests are coalesced onto
    /// one computation, endpoint labels are memoized per batch, and
    /// same-source distance runs share one forward BFS — all without
    /// changing a single answered bit (disable with
    /// [`QueryEngine::with_planner`] to compare).
    pub fn submit(&self, requests: &[QueryRequest]) -> Vec<QueryOutcome> {
        if self.planner && requests.len() >= 2 {
            return plan::submit_planned(self, requests);
        }
        self.fan_out(requests, |_store, ws, req| self.execute_observed(ws, req))
    }

    /// Shared batch driver: fans `op` out over the scoped worker pool with
    /// the chunked work-stealing cursor, one result slot per item, in
    /// input order. `op` must be infallible — per-item failures are
    /// values (see [`QueryOutcome`]), not panics.
    fn fan_out<T: Sync, R: Send + Sync>(
        &self,
        items: &[T],
        op: impl Fn(&S, &mut QueryWorkspace, &T) -> R + Sync,
    ) -> Vec<R> {
        let workers = self.threads.min(items.len().div_ceil(CLAIM_CHUNK)).max(1);
        if workers == 1 {
            let mut ws = self.checkout();
            let out = items
                .iter()
                .map(|item| op(self.store, &mut ws, item))
                .collect();
            self.checkin(ws);
            return out;
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<R>> = (0..items.len()).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ws = self.checkout();
                    loop {
                        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + CLAIM_CHUNK).min(items.len());
                        for idx in start..end {
                            let answer = op(self.store, &mut ws, &items[idx]);
                            slots[idx]
                                .set(answer)
                                .unwrap_or_else(|_| panic!("slot {idx} filled twice"));
                        }
                    }
                    self.checkin(ws);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled by the workers"))
            .collect()
    }

    pub(crate) fn checkout(&self) -> QueryWorkspace {
        self.workspaces
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_else(|| QueryWorkspace::for_vertices(self.store.num_vertices()))
    }

    pub(crate) fn checkin(&self, ws: QueryWorkspace) {
        let mut pool = self.workspaces.lock().expect("workspace pool poisoned");
        // Bound retained memory at one workspace per configured worker;
        // surplus workspaces (possible when several batches run on this
        // engine concurrently) are dropped rather than pooled.
        if pool.len() < self.threads {
            pool.push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QbsConfig;
    use crate::store::ViewStore;
    use qbs_graph::fixtures::{figure3_graph, figure4_graph};

    fn all_pairs(n: u32) -> Vec<(VertexId, VertexId)> {
        let mut pairs = Vec::new();
        for u in 0..n {
            for v in 0..n {
                pairs.push((u, v));
            }
        }
        pairs
    }

    fn path_graph_requests(pairs: &[(VertexId, VertexId)]) -> Vec<QueryRequest> {
        pairs
            .iter()
            .map(|&(u, v)| QueryRequest::path_graph(u, v).with_stats())
            .collect()
    }

    #[test]
    fn batch_answers_match_single_queries_in_order() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let engine = QueryEngine::with_threads(&index, 4).expect("engine");
        let pairs = all_pairs(15);
        let outcomes = engine.submit(&path_graph_requests(&pairs));
        assert_eq!(outcomes.len(), pairs.len());
        for (&(u, v), outcome) in pairs.iter().zip(&outcomes) {
            let answer = outcome.answer().expect("in-range pair");
            let expected = index.query_with_stats(u, v).expect("single query");
            assert_eq!(
                answer.path_graph, expected.path_graph,
                "answer of ({u},{v})"
            );
            assert_eq!(answer.stats, expected.stats, "stats of ({u},{v})");
        }
    }

    #[test]
    fn view_backed_engine_matches_owned_engine() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let store = ViewStore::new(index.as_view());
        let owned_engine = QueryEngine::with_threads(&index, 2).expect("engine");
        let view_engine = QueryEngine::with_threads(&store, 2).expect("view engine");
        let pairs = all_pairs(15);
        let requests = path_graph_requests(&pairs);
        let owned = owned_engine.submit(&requests);
        let viewed = view_engine.submit(&requests);
        for ((a, b), &(u, v)) in owned.iter().zip(&viewed).zip(&pairs) {
            assert_eq!(a, b, "batch answer of ({u},{v}) diverged across backends");
        }
        let distances: Vec<QueryRequest> = pairs
            .iter()
            .map(|&(u, v)| QueryRequest::distance(u, v))
            .collect();
        assert_eq!(
            owned_engine.submit(&distances),
            view_engine.submit(&distances),
        );
        assert_eq!(view_engine.store().view().num_landmarks(), 3);
    }

    #[test]
    fn distance_requests_match_path_graph_answers() {
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(2));
        let engine = QueryEngine::with_threads(&index, 2).expect("engine");
        let pairs = all_pairs(8);
        let answers = engine.submit(&path_graph_requests(&pairs));
        let distances: Vec<QueryRequest> = pairs
            .iter()
            .map(|&(u, v)| QueryRequest::distance(u, v))
            .collect();
        let distances = engine.submit(&distances);
        for ((answer, d), &(u, v)) in answers.iter().zip(&distances).zip(&pairs) {
            assert_eq!(
                answer.answer().expect("in range").path_graph.distance(),
                d.distance().expect("in range"),
                "distance of ({u},{v})"
            );
        }
    }

    #[test]
    fn workspace_pool_is_bounded_and_reused() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let engine = QueryEngine::with_threads(&index, 3).expect("engine");
        assert_eq!(engine.pooled_workspaces(), 0);
        for _ in 0..5 {
            engine.submit(&path_graph_requests(&all_pairs(15)));
        }
        let pooled = engine.pooled_workspaces();
        assert!((1..=3).contains(&pooled), "pool holds {pooled} workspaces");
        let total_served: u64 = {
            let pool = engine.workspaces.lock().unwrap();
            pool.iter().map(|ws| ws.queries_served()).sum()
        };
        assert_eq!(total_served, 5 * 15 * 15, "workspaces were actually reused");
    }

    #[test]
    fn out_of_range_requests_fail_their_slot_only() {
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(2));
        let engine = QueryEngine::new(&index);
        let outcomes = engine.submit(&[
            QueryRequest::path_graph(0, 1),
            QueryRequest::path_graph(99, 0),
        ]);
        assert!(!outcomes[0].is_error(), "good slot unaffected");
        assert!(outcomes[1].is_error(), "bad slot fails alone");
        assert!(engine.query(0, 99).is_err());
        assert_eq!(engine.query(3, 7).unwrap().path_graph.distance(), 4);
    }

    #[test]
    fn zero_threads_is_rejected() {
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(2));
        assert!(matches!(
            QueryEngine::with_threads(&index, 0),
            Err(QbsError::ThreadPool(_))
        ));
        assert!(QueryEngine::new(&index).threads() >= 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(2));
        let engine = QueryEngine::new(&index);
        assert!(engine.submit(&[]).is_empty());
        assert_eq!(engine.store().graph().num_vertices(), 8);
    }

    #[test]
    fn submit_mixes_modes_and_isolates_per_request_errors() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let engine = QueryEngine::with_threads(&index, 3).expect("engine");
        let requests = vec![
            QueryRequest::distance(6, 11),
            QueryRequest::path_graph(6, 11).with_stats(),
            QueryRequest::new(99, 0, crate::request::QueryMode::Sketch),
            QueryRequest::sketch(6, 11),
            QueryRequest::path_graph(4, 12),
        ];
        let outcomes = engine.submit(&requests);
        assert_eq!(outcomes.len(), 5);
        assert_eq!(outcomes[0].distance(), Some(5));
        assert_eq!(
            outcomes[1].answer().unwrap().path_graph,
            index.query(6, 11).unwrap()
        );
        assert!(outcomes[2].is_error(), "poisoned slot fails alone");
        assert_eq!(outcomes[3].sketch().unwrap(), &index.sketch(6, 11).unwrap());
        assert_eq!(
            outcomes[4].path_graph().unwrap(),
            &index.query(4, 12).unwrap()
        );
    }

    #[test]
    fn engine_cache_serves_bit_identical_answers() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let uncached = QueryEngine::with_threads(&index, 2).expect("engine");
        let cached = QueryEngine::with_threads(&index, 2)
            .expect("engine")
            .with_answer_cache(crate::cache::CacheConfig::default().admit_above(0));
        assert!(uncached.cache_stats().is_none());

        let requests: Vec<QueryRequest> = all_pairs(15)
            .into_iter()
            .map(|(u, v)| QueryRequest::path_graph(u, v).with_stats())
            .collect();
        let cold = cached.submit(&requests);
        let warm = cached.submit(&requests);
        let fresh = uncached.submit(&requests);
        assert_eq!(cold, fresh, "cold cached run matches uncached run");
        assert_eq!(warm, fresh, "warm cache hits are bit-identical");
        let stats = cached.cache_stats().expect("cache attached");
        assert!(stats.hits > 0, "{stats:?}");
        assert!(cached.answer_cache().is_some());
    }
}
