//! Error type for index construction, persistence and queries.

use std::fmt;

/// Errors surfaced by the QbS index.
#[derive(Debug)]
pub enum QbsError {
    /// A requested vertex does not exist in the indexed graph.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: u64,
        /// Number of vertices in the indexed graph.
        num_vertices: u64,
    },
    /// The landmark configuration is unusable (empty, duplicated or out of
    /// range landmarks).
    InvalidLandmarks(String),
    /// A serialised index could not be decoded.
    Corrupt(String),
    /// A dedicated thread pool (parallel labelling, batch query engine)
    /// could not be created or was misconfigured.
    ThreadPool(String),
    /// Underlying I/O failure while persisting or loading an index.
    Io(std::io::Error),
}

impl fmt::Display for QbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QbsError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for indexed graph with {num_vertices} vertices"
            ),
            QbsError::InvalidLandmarks(msg) => write!(f, "invalid landmark set: {msg}"),
            QbsError::Corrupt(msg) => write!(f, "corrupt index data: {msg}"),
            QbsError::ThreadPool(msg) => write!(f, "thread pool error: {msg}"),
            QbsError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for QbsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QbsError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for QbsError {
    fn from(err: std::io::Error) -> Self {
        QbsError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QbsError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex 9"));
        let e = QbsError::InvalidLandmarks("empty".into());
        assert!(e.to_string().contains("empty"));
        let e = QbsError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = QbsError::ThreadPool("no threads".into());
        assert!(e.to_string().contains("thread pool"));
    }

    #[test]
    fn io_conversion_keeps_source() {
        let e: QbsError = std::io::Error::other("disk").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
