//! `qbs-index-v2`: the zero-copy flat binary index format.
//!
//! The v1 persistence path ([`crate::serialize`]) round-trips the whole
//! index through JSON, which costs `O(index)` text parsing plus a full heap
//! reconstruction on every load. Production deployments build once and
//! reload on every restart or shard spawn, so load time is a serving-path
//! cost, not a build-path one. v2 fixes this with a flat little-endian
//! layout that is read by **one buffer acquisition plus typed views over
//! byte ranges** — no parsing, no per-vertex allocation.
//!
//! # File layout
//!
//! Everything is little-endian. Every section starts on an 8-byte boundary
//! (zero padding in between), so the [`ViewBuf::Mmap`] backend — whose
//! mapping is page-aligned — could cast sections to typed slices directly.
//! The [`ViewBuf::Heap`] backend makes no base-pointer alignment
//! guarantee, so all in-tree accessors decode via `from_le_bytes`, which
//! is alignment-agnostic and therefore correct on both. See
//! `docs/index-format.md` for the normative specification.
//!
//! ```text
//! header (48 bytes)
//!   magic            8 bytes  "QBSIDX2\0"
//!   version          u32      2
//!   section_count    u32      10
//!   num_vertices     u64
//!   num_landmarks    u64
//!   file_size        u64      total file length in bytes
//!   reserved         u64      0
//! section table (10 × 24 bytes, in SectionKind order)
//!   kind             u32
//!   reserved         u32      0
//!   offset           u64      absolute, 8-byte aligned
//!   len              u64      payload bytes (padding excluded)
//! sections
//!   LANDMARKS        |R| × u32 vertex ids, column order
//!   LABEL_OFFSETS    (|V|+1) × u64 CSR offsets into LABEL_ENTRIES
//!   LABEL_ENTRIES    Σ|L(v)| × u32, low 16 bits landmark index, high 16
//!                    bits distance
//!   GRAPH_OFFSETS    (|V|+1) × u64 CSR offsets into GRAPH_NEIGHBORS
//!   GRAPH_NEIGHBORS  2|E| × u32 neighbour ids
//!   META_EDGES       |E_R| × (u32 i, u32 j, u32 σ) with i < j
//!   META_APSP        |R|² × u32 row-major landmark distance matrix
//!   DELTA_OFFSETS    (|E_R|+1) × u64 CSR offsets into DELTA_EDGES
//!   DELTA_EDGES      Σ|Δ_k| × (u32, u32) edge endpoints
//!   CHECKSUM         u64 word-wise FNV-1a 64 over file[0 .. checksum_offset)
//! ```
//!
//! # Loader abstraction
//!
//! [`IndexView`] wraps a [`ViewBuf`] — an owned heap buffer or a read-only
//! file mapping — and exposes typed accessors over the sections; every
//! accessor goes through [`ViewBuf::as_slice`], so the backends are
//! interchangeable. Two consumers sit on top:
//!
//! * [`crate::QbsIndex::from_view`] materialises the runtime structures
//!   from a validated view with a handful of bulk array builds (one per
//!   section), never a per-vertex or per-label allocation;
//! * [`crate::store::ViewStore`] serves queries **straight from the
//!   view** with no materialisation at all, via the
//!   [`crate::store::IndexStore`] abstraction.
//!
//! All structural validation happens in [`IndexView::parse`], so a corrupt
//! or truncated file is reported as [`QbsError::Corrupt`] instead of
//! panicking; [`IndexView::parse_trusted`] defers the `O(file)` integrity
//! scans for the map-speed serving cold start (see
//! [`crate::serialize::MapMode`]).
//!
//! # Compact profile (v3)
//!
//! This module also implements `qbs-index-v3`, the **compact profile**:
//! the same ten-section skeleton, but with a header-declared width profile
//! (1/2/4-byte distances, 4/8-byte CSR byte-offsets), front-coded LEB128
//! label and adjacency runs, varint Δ pairs and a narrow APSP matrix. See
//! [`write_v3`] / [`CompactView`] and the v3 chapter of
//! `docs/index-format.md`.

use qbs_graph::{Distance, Graph, VertexId, INFINITE_DISTANCE};

use crate::labelling::{PathLabelling, NO_LABEL};
use crate::meta_graph::MetaGraph;
use crate::query::QbsIndex;
use crate::{QbsError, Result};

/// Magic bytes opening every v2 index file.
pub const MAGIC_V2: [u8; 8] = *b"QBSIDX2\0";

/// Magic bytes opening every v3 (compact profile) index file.
pub const MAGIC_V3: [u8; 8] = *b"QBSIDX3\0";

/// Format version written by [`write_v2`].
pub const FORMAT_VERSION: u32 = 2;

/// Format version written by [`write_v3`].
pub const FORMAT_VERSION_V3: u32 = 3;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 48;

/// Byte length of one section-table record.
pub const SECTION_RECORD_LEN: usize = 24;

/// Alignment guaranteed for every section start.
pub const SECTION_ALIGN: usize = 8;

/// Number of sections in a v2 file.
pub const SECTION_COUNT: usize = 10;

/// Identifies one section of a v2 file.
///
/// Sections appear in the file in ascending discriminant order; the
/// checksum section is always last.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionKind {
    /// Landmark vertex ids in column order (`|R| × u32`).
    Landmarks = 1,
    /// CSR offsets into [`SectionKind::LabelEntries`] (`(|V|+1) × u64`).
    LabelOffsets = 2,
    /// Packed label entries (`u32`: low 16 bits landmark index, high 16
    /// bits distance).
    LabelEntries = 3,
    /// CSR offsets into [`SectionKind::GraphNeighbors`] (`(|V|+1) × u64`).
    GraphOffsets = 4,
    /// Concatenated sorted adjacency lists (`2|E| × u32`).
    GraphNeighbors = 5,
    /// Meta-graph edges (`|E_R| × (u32 i, u32 j, u32 σ)`, `i < j`).
    MetaEdges = 6,
    /// Row-major `|R|²` landmark all-pairs distance matrix (`u32`).
    MetaApsp = 7,
    /// CSR offsets into [`SectionKind::DeltaEdges`] (`(|E_R|+1) × u64`).
    DeltaOffsets = 8,
    /// Concatenated Δ path-graph edges (`(u32, u32)` per edge).
    DeltaEdges = 9,
    /// Word-wise FNV-1a 64 checksum of every byte before this section's offset.
    Checksum = 10,
}

impl SectionKind {
    /// All kinds in file order.
    pub const ALL: [SectionKind; SECTION_COUNT] = [
        SectionKind::Landmarks,
        SectionKind::LabelOffsets,
        SectionKind::LabelEntries,
        SectionKind::GraphOffsets,
        SectionKind::GraphNeighbors,
        SectionKind::MetaEdges,
        SectionKind::MetaApsp,
        SectionKind::DeltaOffsets,
        SectionKind::DeltaEdges,
        SectionKind::Checksum,
    ];

    /// Human-readable section name (used by `qbs-cli inspect`).
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Landmarks => "landmarks",
            SectionKind::LabelOffsets => "label-offsets",
            SectionKind::LabelEntries => "label-entries",
            SectionKind::GraphOffsets => "graph-offsets",
            SectionKind::GraphNeighbors => "graph-neighbors",
            SectionKind::MetaEdges => "meta-edges",
            SectionKind::MetaApsp => "meta-apsp",
            SectionKind::DeltaOffsets => "delta-offsets",
            SectionKind::DeltaEdges => "delta-edges",
            SectionKind::Checksum => "checksum",
        }
    }

    fn from_u32(raw: u32) -> Option<SectionKind> {
        SectionKind::ALL.iter().copied().find(|&k| k as u32 == raw)
    }
}

/// One entry of the parsed section table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionRecord {
    /// Which section this record describes.
    pub kind: SectionKind,
    /// Absolute byte offset of the payload (8-byte aligned).
    pub offset: u64,
    /// Payload length in bytes (padding excluded).
    pub len: u64,
}

/// The buffer behind an [`IndexView`].
///
/// Every view accessor reads through [`ViewBuf::as_slice`], so the two
/// backends are interchangeable:
///
/// * [`ViewBuf::Heap`] — an owned copy of the file contents (the ingest /
///   inspection path, and the only possible backend for in-memory buffers);
/// * [`ViewBuf::Mmap`] — a read-only mapping of the index file itself
///   ([`crate::mmap::MmapRegion`]), shared behind an [`std::sync::Arc`] so
///   cloning a view never duplicates the file. N shard processes mapping the same
///   immutable file share one physical copy of the index through the page
///   cache.
#[derive(Clone, Debug)]
pub enum ViewBuf {
    /// An owned, heap-allocated copy of the file contents.
    Heap(Vec<u8>),
    /// A read-only memory mapping of the file (see [`crate::mmap`]).
    Mmap(std::sync::Arc<crate::mmap::MmapRegion>),
}

impl ViewBuf {
    /// The raw bytes of the whole file.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            ViewBuf::Heap(bytes) => bytes,
            ViewBuf::Mmap(region) => region.as_slice(),
        }
    }

    /// Total buffer length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

/// A validated, zero-copy view over a `qbs-index-v2` buffer.
///
/// Construction ([`IndexView::parse`]) performs *all* validation — magic,
/// version, section table geometry, checksum, and the structural invariants
/// of every section — so the typed accessors and [`QbsIndex::from_view`]
/// never panic on untrusted *file contents*. Per-vertex accessors index
/// like slices: passing a vertex or landmark index outside the ranges the
/// header declares (`< num_vertices()` / `< num_landmarks()`) is a caller
/// bug and panics, exactly as `Graph::neighbors` does.
#[derive(Debug)]
pub struct IndexView {
    buf: ViewBuf,
    sections: Vec<SectionRecord>,
    num_vertices: usize,
    num_landmarks: usize,
    /// Whether the `O(file)` integrity validation has passed (atomically
    /// flipped by a successful [`IndexView::verify`], so shared views can
    /// record it through `&self`).
    verified: std::sync::atomic::AtomicBool,
}

impl Clone for IndexView {
    fn clone(&self) -> Self {
        IndexView {
            buf: self.buf.clone(),
            sections: self.sections.clone(),
            num_vertices: self.num_vertices,
            num_landmarks: self.num_landmarks,
            verified: std::sync::atomic::AtomicBool::new(self.is_verified()),
        }
    }
}

impl IndexView {
    /// Parses and fully validates a v2 buffer.
    pub fn parse(buf: ViewBuf) -> Result<IndexView> {
        let view = Self::parse_geometry(buf)?;
        view.verify()?;
        Ok(view)
    }

    /// Parses a v2 buffer validating only its **geometry** — magic, version,
    /// section-table layout, and every section length the header implies —
    /// while deferring the `O(file)` integrity work (checksum and the
    /// structural scans) that [`IndexView::parse`] performs eagerly.
    ///
    /// This is the serving-path constructor: opening an immutable index
    /// file this way costs microseconds regardless of index size, because
    /// nothing beyond the header and section table is read until a query
    /// touches it. It is meant for files of **trusted provenance** — ones
    /// your own build pipeline wrote and verified (the writer checksums
    /// every file, and `qbs inspect` / [`IndexView::verify`] re-verify on
    /// demand). Feeding it a file that *would have failed* full validation
    /// trades the up-front `Corrupt` error for a deferred panic (an
    /// out-of-bounds slice index) or a wrong answer — never memory
    /// unsafety, since every accessor performs bounds-checked reads.
    pub fn parse_trusted(buf: ViewBuf) -> Result<IndexView> {
        Self::parse_geometry(buf)
    }

    /// Whether full integrity validation (checksum + structural scans) has
    /// passed on this view — `true` for [`IndexView::parse`], `false` for
    /// [`IndexView::parse_trusted`] until a successful
    /// [`IndexView::verify`] flips it.
    pub fn is_verified(&self) -> bool {
        self.verified.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs the deferred integrity validation of a
    /// [`IndexView::parse_trusted`] view: the checksum plus every
    /// structural invariant. On success the view is marked verified
    /// ([`IndexView::is_verified`]). Idempotent; views opened with
    /// [`IndexView::parse`] have already passed it.
    pub fn verify(&self) -> Result<()> {
        self.verify_checksum()?;
        self.validate_structure()?;
        self.verified
            .store(true, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Geometry-only parse shared by both constructors.
    fn parse_geometry(buf: ViewBuf) -> Result<IndexView> {
        let data = buf.as_slice();
        check_magic_and_version(data)?;

        let section_count = le_u32(data, 12) as usize;
        if section_count != SECTION_COUNT {
            return Err(QbsError::Corrupt(format!(
                "qbs-index-v2 expects {SECTION_COUNT} sections, header declares {section_count}"
            )));
        }
        let num_vertices = le_u64(data, 16) as usize;
        let num_landmarks = le_u64(data, 24) as usize;
        let file_size = le_u64(data, 32);
        if file_size != data.len() as u64 {
            return Err(QbsError::Corrupt(format!(
                "file size mismatch: header declares {file_size} bytes, buffer has {} \
                 (truncated or padded file)",
                data.len()
            )));
        }

        let sections = parse_section_table(data)?;
        let view = IndexView {
            buf,
            sections,
            num_vertices,
            num_landmarks,
            verified: std::sync::atomic::AtomicBool::new(false),
        };
        view.validate_lengths()?;
        Ok(view)
    }

    /// Number of vertices of the serialised graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of landmarks `|R|`.
    #[inline]
    pub fn num_landmarks(&self) -> usize {
        self.num_landmarks
    }

    /// Total buffer length in bytes.
    #[inline]
    pub fn file_len(&self) -> usize {
        self.buf.len()
    }

    /// The parsed section table, in file order.
    pub fn sections(&self) -> &[SectionRecord] {
        &self.sections
    }

    /// The buffer backend behind this view (heap copy or file mapping).
    pub fn buf(&self) -> &ViewBuf {
        &self.buf
    }

    /// The stored checksum ([`checksum64`] of every byte before its section).
    pub fn checksum(&self) -> u64 {
        let s = self.section(SectionKind::Checksum);
        le_u64(self.buf.as_slice(), s.offset as usize)
    }

    /// Raw payload bytes of one section.
    pub fn section_bytes(&self, kind: SectionKind) -> &[u8] {
        let s = self.section(kind);
        &self.buf.as_slice()[s.offset as usize..(s.offset + s.len) as usize]
    }

    /// The `i`-th landmark vertex id (column order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_landmarks()`.
    #[inline]
    pub fn landmark(&self, i: usize) -> VertexId {
        le_u32(self.section_bytes(SectionKind::Landmarks), i * 4)
    }

    /// Iterator over the landmark list.
    pub fn landmarks(&self) -> impl Iterator<Item = VertexId> + '_ {
        u32_iter(self.section_bytes(SectionKind::Landmarks))
    }

    /// Number of label entries of vertex `v` (out of the packed CSR).
    ///
    /// # Panics
    ///
    /// Panics if `v as usize >= num_vertices()`.
    pub fn label_len(&self, v: VertexId) -> usize {
        let offsets = self.section_bytes(SectionKind::LabelOffsets);
        let lo = le_u64(offsets, v as usize * 8);
        let hi = le_u64(offsets, (v as usize + 1) * 8);
        (hi - lo) as usize
    }

    /// Iterator over the `(landmark_idx, distance)` label entries of `v`,
    /// decoded straight from the packed section.
    ///
    /// # Panics
    ///
    /// Panics if `v as usize >= num_vertices()`.
    pub fn label_entries(&self, v: VertexId) -> impl Iterator<Item = (usize, Distance)> + '_ {
        let offsets = self.section_bytes(SectionKind::LabelOffsets);
        let lo = le_u64(offsets, v as usize * 8) as usize;
        let hi = le_u64(offsets, (v as usize + 1) * 8) as usize;
        let entries = self.section_bytes(SectionKind::LabelEntries);
        u32_iter(&entries[lo * 4..hi * 4]).map(unpack_label_entry)
    }

    /// Iterator over the neighbours of `v`, decoded straight from the
    /// graph CSR sections.
    ///
    /// # Panics
    ///
    /// Panics if `v as usize >= num_vertices()`.
    pub fn graph_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let offsets = self.section_bytes(SectionKind::GraphOffsets);
        let lo = le_u64(offsets, v as usize * 8) as usize;
        let hi = le_u64(offsets, (v as usize + 1) * 8) as usize;
        u32_iter(&self.section_bytes(SectionKind::GraphNeighbors)[lo * 4..hi * 4])
    }

    /// Number of directed arcs stored in the graph section.
    pub fn num_arcs(&self) -> usize {
        self.section(SectionKind::GraphNeighbors).len as usize / 4
    }

    /// Number of meta-graph edges.
    pub fn num_meta_edges(&self) -> usize {
        self.section(SectionKind::MetaEdges).len as usize / 12
    }

    /// Iterator over the meta edges `(i, j, σ)` in stored order.
    pub fn meta_edges(&self) -> impl Iterator<Item = (usize, usize, Distance)> + '_ {
        let bytes = self.section_bytes(SectionKind::MetaEdges);
        (0..self.num_meta_edges()).map(move |k| {
            (
                le_u32(bytes, k * 12) as usize,
                le_u32(bytes, k * 12 + 4) as usize,
                le_u32(bytes, k * 12 + 8),
            )
        })
    }

    /// Total number of Δ path-graph edges across all meta edges.
    pub fn num_delta_edges(&self) -> usize {
        self.section(SectionKind::DeltaEdges).len as usize / 8
    }

    /// The label distance of `v` towards landmark column `landmark_idx`,
    /// decoded straight from the packed label section (`None` when the pair
    /// has no entry). The per-vertex entry list is short (at most `|R|`),
    /// so a linear scan beats any index structure here.
    ///
    /// # Panics
    ///
    /// Panics if `v as usize >= num_vertices()`.
    pub fn label_distance(&self, v: VertexId, landmark_idx: usize) -> Option<Distance> {
        self.label_entries(v)
            .find(|&(idx, _)| idx == landmark_idx)
            .map(|(_, d)| d)
    }

    /// `d_M(i, j)` straight from the stored APSP matrix.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is `>= num_landmarks()`.
    #[inline]
    pub fn meta_distance(&self, i: usize, j: usize) -> Distance {
        le_u32(
            self.section_bytes(SectionKind::MetaApsp),
            (i * self.num_landmarks + j) * 4,
        )
    }

    /// The `k`-th meta edge `(i, j, σ)` in stored order.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_meta_edges()`.
    #[inline]
    pub fn meta_edge(&self, k: usize) -> (usize, usize, Distance) {
        let bytes = self.section_bytes(SectionKind::MetaEdges);
        (
            le_u32(bytes, k * 12) as usize,
            le_u32(bytes, k * 12 + 4) as usize,
            le_u32(bytes, k * 12 + 8),
        )
    }

    /// Iterator over the Δ path-graph edges of meta edge `k`, decoded
    /// straight from the delta CSR sections.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_meta_edges()`.
    pub fn delta_edges(&self, k: usize) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        let offsets = self.section_bytes(SectionKind::DeltaOffsets);
        let lo = le_u64(offsets, k * 8) as usize;
        let hi = le_u64(offsets, (k + 1) * 8) as usize;
        let edges = self.section_bytes(SectionKind::DeltaEdges);
        (lo..hi).map(move |e| (le_u32(edges, e * 8), le_u32(edges, e * 8 + 4)))
    }

    fn section(&self, kind: SectionKind) -> SectionRecord {
        // The table is stored in `SectionKind::ALL` order by construction.
        self.sections[kind as usize - 1]
    }

    fn verify_checksum(&self) -> Result<()> {
        let s = self.section(SectionKind::Checksum);
        if s.len != 8 {
            return Err(QbsError::Corrupt(format!(
                "checksum section must be 8 bytes, found {}",
                s.len
            )));
        }
        let data = self.buf.as_slice();
        let stored = le_u64(data, s.offset as usize);
        let actual = checksum64(&data[..s.offset as usize]);
        if stored != actual {
            return Err(QbsError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x} \
                 (file is corrupt)"
            )));
        }
        Ok(())
    }

    /// The cheap `O(section-count)` length checks: every section length the
    /// header implies, with checked arithmetic. These run in **both** parse
    /// modes, so even a [`IndexView::parse_trusted`] view has structurally
    /// sane array bounds (a crafted header with an absurd vertex count must
    /// fail here, not wrap around and slip past the section-length
    /// comparison).
    fn validate_lengths(&self) -> Result<()> {
        let n = self.num_vertices;
        let r = self.num_landmarks;
        if r > u16::MAX as usize {
            return Err(QbsError::Corrupt(format!(
                "v2 stores landmark indices in 16 bits; {r} landmarks exceed the limit"
            )));
        }
        let offsets_len = (n as u64)
            .checked_add(1)
            .and_then(|c| c.checked_mul(8))
            .ok_or_else(|| {
                QbsError::Corrupt(format!("header vertex count {n} overflows the format"))
            })?;
        self.expect_len(SectionKind::Landmarks, r as u64 * 4)?;
        self.expect_len(SectionKind::LabelOffsets, offsets_len)?;
        self.expect_len(SectionKind::GraphOffsets, offsets_len)?;
        self.expect_len(SectionKind::MetaApsp, (r as u64 * r as u64) * 4)?;
        for (kind, elem) in [
            (SectionKind::LabelEntries, 4),
            (SectionKind::GraphNeighbors, 4),
            (SectionKind::MetaEdges, 12),
            (SectionKind::DeltaEdges, 8),
        ] {
            let len = self.section(kind).len;
            if !len.is_multiple_of(elem) {
                return Err(QbsError::Corrupt(format!(
                    "section '{}' length {len} is not a multiple of its {elem}-byte element",
                    kind.name()
                )));
            }
        }
        self.expect_len(
            SectionKind::DeltaOffsets,
            (self.num_meta_edges() as u64 + 1) * 8,
        )?;
        if self.section(SectionKind::Checksum).len != 8 {
            return Err(QbsError::Corrupt(format!(
                "checksum section must be 8 bytes, found {}",
                self.section(SectionKind::Checksum).len
            )));
        }
        Ok(())
    }

    /// Validates every `O(file)` structural invariant the typed accessors
    /// and the materialisers rely on, so no later code path can panic on a
    /// file that passed the checksum (e.g. one crafted rather than
    /// corrupted). Deferred by [`IndexView::parse_trusted`].
    fn validate_structure(&self) -> Result<()> {
        let n = self.num_vertices;
        let r = self.num_landmarks;

        for v in u32_iter(self.section_bytes(SectionKind::Landmarks)) {
            if v as usize >= n {
                return Err(QbsError::Corrupt(format!(
                    "landmark id {v} out of range for {n} vertices"
                )));
            }
        }
        validate_csr(
            self.section_bytes(SectionKind::LabelOffsets),
            self.section(SectionKind::LabelEntries).len / 4,
            "label",
        )?;
        validate_csr(
            self.section_bytes(SectionKind::GraphOffsets),
            self.section(SectionKind::GraphNeighbors).len / 4,
            "graph",
        )?;
        validate_csr(
            self.section_bytes(SectionKind::DeltaOffsets),
            self.section(SectionKind::DeltaEdges).len / 8,
            "delta",
        )?;
        for raw in u32_iter(self.section_bytes(SectionKind::LabelEntries)) {
            let (idx, d) = unpack_label_entry(raw);
            if idx >= r {
                return Err(QbsError::Corrupt(format!(
                    "label entry references landmark column {idx}, only {r} exist"
                )));
            }
            if d as u16 == NO_LABEL {
                return Err(QbsError::Corrupt(
                    "label entry stores the NO_LABEL sentinel distance".into(),
                ));
            }
        }
        // Landmarks must be distinct: duplicates would silently corrupt
        // the vertex → landmark-column map rebuilt on load.
        let mut landmark_seen = vec![false; n];
        for v in u32_iter(self.section_bytes(SectionKind::Landmarks)) {
            if std::mem::replace(&mut landmark_seen[v as usize], true) {
                return Err(QbsError::Corrupt(format!(
                    "landmark id {v} appears twice in the landmark list"
                )));
            }
        }
        // Adjacency lists must be strictly increasing per vertex — the
        // `Graph` invariant `has_edge`'s binary search relies on.
        {
            let offsets = self.section_bytes(SectionKind::GraphOffsets);
            let neighbors = self.section_bytes(SectionKind::GraphNeighbors);
            for v in 0..n {
                let lo = le_u64(offsets, v * 8) as usize;
                let hi = le_u64(offsets, (v + 1) * 8) as usize;
                let mut prev: Option<u32> = None;
                for w in u32_iter(&neighbors[lo * 4..hi * 4]) {
                    if w as usize >= n {
                        return Err(QbsError::Corrupt(format!(
                            "graph neighbour id {w} out of range for {n} vertices"
                        )));
                    }
                    if prev.is_some_and(|p| p >= w) {
                        return Err(QbsError::Corrupt(format!(
                            "adjacency list of vertex {v} is not strictly sorted"
                        )));
                    }
                    prev = Some(w);
                }
            }
        }
        for (i, j, _) in self.meta_edges() {
            if i >= j || j >= r {
                return Err(QbsError::Corrupt(format!(
                    "meta edge ({i}, {j}) violates i < j < |R| = {r}"
                )));
            }
        }
        for v in u32_iter(self.section_bytes(SectionKind::DeltaEdges)) {
            if v as usize >= n {
                return Err(QbsError::Corrupt(format!(
                    "delta edge endpoint {v} out of range for {n} vertices"
                )));
            }
        }
        Ok(())
    }

    fn expect_len(&self, kind: SectionKind, expected: u64) -> Result<()> {
        let len = self.section(kind).len;
        if len != expected {
            return Err(QbsError::Corrupt(format!(
                "section '{}' must be {expected} bytes for this header, found {len}",
                kind.name()
            )));
        }
        Ok(())
    }

    /// Materialises the runtime index structures from the view.
    ///
    /// Each section becomes at most one bulk array build; nothing is
    /// allocated per vertex or per label. The view was fully validated at
    /// parse time, so the CSR constructors cannot panic here.
    pub(crate) fn materialize(&self) -> (Graph, Vec<VertexId>, PathLabelling, MetaGraph) {
        let n = self.num_vertices;
        let r = self.num_landmarks;

        let landmarks: Vec<VertexId> = u32_vec(self.section_bytes(SectionKind::Landmarks));

        let graph_offsets: Vec<u64> = u64_vec(self.section_bytes(SectionKind::GraphOffsets));
        let graph_neighbors: Vec<VertexId> =
            u32_vec(self.section_bytes(SectionKind::GraphNeighbors));
        let graph = Graph::from_csr_parts(graph_offsets, graph_neighbors);

        let mut labelling = PathLabelling::new(n, r);
        let label_offsets = self.section_bytes(SectionKind::LabelOffsets);
        let entries = self.section_bytes(SectionKind::LabelEntries);
        for v in 0..n {
            let lo = le_u64(label_offsets, v * 8) as usize;
            let hi = le_u64(label_offsets, (v + 1) * 8) as usize;
            for raw in u32_iter(&entries[lo * 4..hi * 4]) {
                let (idx, d) = unpack_label_entry(raw);
                labelling.set(v as VertexId, idx, d as u16);
            }
        }

        let edges: Vec<(usize, usize, Distance)> = self.meta_edges().collect();
        let apsp: Vec<Distance> = u32_vec(self.section_bytes(SectionKind::MetaApsp));
        let delta_offsets = self.section_bytes(SectionKind::DeltaOffsets);
        let delta_edges = self.section_bytes(SectionKind::DeltaEdges);
        let delta: Vec<Vec<(VertexId, VertexId)>> = (0..edges.len())
            .map(|k| {
                let lo = le_u64(delta_offsets, k * 8) as usize;
                let hi = le_u64(delta_offsets, (k + 1) * 8) as usize;
                (lo..hi)
                    .map(|e| (le_u32(delta_edges, e * 8), le_u32(delta_edges, e * 8 + 4)))
                    .collect()
            })
            .collect();
        let meta = MetaGraph::from_parts(landmarks.clone(), edges, apsp, delta);

        (graph, landmarks, labelling, meta)
    }
}

/// Serialises a built index into a `qbs-index-v2` buffer.
///
/// Fails with [`QbsError::InvalidLandmarks`] when the landmark count
/// exceeds the format's 16-bit landmark-index budget (65535).
pub fn write_v2(index: &QbsIndex) -> Result<Vec<u8>> {
    let graph = index.graph();
    let landmarks = index.landmarks();
    let labelling = index.labelling();
    let meta = index.meta_graph();
    let n = graph.num_vertices();
    let r = landmarks.len();
    if r > u16::MAX as usize {
        return Err(QbsError::InvalidLandmarks(format!(
            "qbs-index-v2 stores landmark indices in 16 bits; cannot serialise {r} landmarks"
        )));
    }

    // Payloads, one per section, in file order.
    let mut landmarks_bytes = Vec::with_capacity(r * 4);
    for &v in landmarks {
        landmarks_bytes.extend_from_slice(&v.to_le_bytes());
    }

    let mut label_offsets = Vec::with_capacity((n + 1) * 8);
    let mut label_entries = Vec::new();
    let mut running = 0u64;
    label_offsets.extend_from_slice(&running.to_le_bytes());
    for v in 0..n as VertexId {
        for (idx, d) in labelling.entries(v) {
            label_entries.extend_from_slice(&pack_label_entry(idx, d).to_le_bytes());
            running += 1;
        }
        label_offsets.extend_from_slice(&running.to_le_bytes());
    }

    let mut graph_offsets = Vec::with_capacity((n + 1) * 8);
    for &o in graph.csr_offsets() {
        graph_offsets.extend_from_slice(&o.to_le_bytes());
    }
    let mut graph_neighbors = Vec::with_capacity(graph.num_arcs() * 4);
    for &v in graph.csr_neighbors() {
        graph_neighbors.extend_from_slice(&v.to_le_bytes());
    }

    let mut meta_edges = Vec::with_capacity(meta.edges().len() * 12);
    for &(i, j, sigma) in meta.edges() {
        meta_edges.extend_from_slice(&(i as u32).to_le_bytes());
        meta_edges.extend_from_slice(&(j as u32).to_le_bytes());
        meta_edges.extend_from_slice(&sigma.to_le_bytes());
    }

    let mut meta_apsp = Vec::with_capacity(r * r * 4);
    for &d in meta.apsp() {
        meta_apsp.extend_from_slice(&d.to_le_bytes());
    }

    let mut delta_offsets = Vec::with_capacity((meta.edges().len() + 1) * 8);
    let mut delta_edges = Vec::new();
    let mut running = 0u64;
    delta_offsets.extend_from_slice(&running.to_le_bytes());
    for k in 0..meta.edges().len() {
        for &(a, b) in meta.delta_edges(k) {
            delta_edges.extend_from_slice(&a.to_le_bytes());
            delta_edges.extend_from_slice(&b.to_le_bytes());
            running += 1;
        }
        delta_offsets.extend_from_slice(&running.to_le_bytes());
    }

    let payloads: [&[u8]; SECTION_COUNT - 1] = [
        &landmarks_bytes,
        &label_offsets,
        &label_entries,
        &graph_offsets,
        &graph_neighbors,
        &meta_edges,
        &meta_apsp,
        &delta_offsets,
        &delta_edges,
    ];

    // Lay out the section table.
    let mut records: Vec<(SectionKind, u64, u64)> = Vec::with_capacity(SECTION_COUNT);
    let mut cursor = (HEADER_LEN + SECTION_COUNT * SECTION_RECORD_LEN) as u64;
    for (kind, payload) in SectionKind::ALL.iter().zip(payloads.iter()) {
        cursor = align_up(cursor, SECTION_ALIGN as u64);
        records.push((*kind, cursor, payload.len() as u64));
        cursor += payload.len() as u64;
    }
    cursor = align_up(cursor, SECTION_ALIGN as u64);
    let checksum_offset = cursor;
    records.push((SectionKind::Checksum, checksum_offset, 8));
    let file_size = checksum_offset + 8;

    // Emit header + table + payloads.
    let mut out = Vec::with_capacity(file_size as usize);
    out.extend_from_slice(&MAGIC_V2);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(r as u64).to_le_bytes());
    out.extend_from_slice(&file_size.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    for &(kind, offset, len) in &records {
        out.extend_from_slice(&(kind as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    for (&(_, offset, _), payload) in records.iter().zip(payloads.iter()) {
        out.resize(offset as usize, 0);
        out.extend_from_slice(payload);
    }
    out.resize(checksum_offset as usize, 0);
    let checksum = checksum64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    debug_assert_eq!(out.len() as u64, file_size);
    Ok(out)
}

/// Everything `qbs inspect` reports about a v2 file, computed without
/// requiring the checksum to match — a corrupt-but-geometrically-sane file
/// is *inspectable* (that is the whole point of the tool), it just reports
/// `checksum_ok() == false`.
#[derive(Clone, Debug)]
pub struct FileInspection {
    /// `|V|` from the header.
    pub num_vertices: usize,
    /// `|R|` from the header.
    pub num_landmarks: usize,
    /// Total file length in bytes.
    pub file_len: usize,
    /// The parsed section table, in file order.
    pub sections: Vec<SectionRecord>,
    /// Checksum stored in the file.
    pub stored_checksum: u64,
    /// Checksum recomputed over the file contents.
    pub computed_checksum: u64,
    /// Directed arc count implied by the graph-neighbors section.
    pub num_arcs: usize,
    /// Meta-edge count implied by the meta-edges section.
    pub num_meta_edges: usize,
    /// Δ edge count implied by the delta-edges section.
    pub num_delta_edges: usize,
}

impl FileInspection {
    /// Whether the stored checksum matches the recomputed one.
    pub fn checksum_ok(&self) -> bool {
        self.stored_checksum == self.computed_checksum
    }

    /// A section's payload share of the whole file, in percent.
    pub fn section_percent(&self, record: &SectionRecord) -> f64 {
        if self.file_len == 0 {
            return 0.0;
        }
        record.len as f64 * 100.0 / self.file_len as f64
    }
}

/// Inspects a v2 buffer: geometry must parse (otherwise the `Corrupt` error
/// is returned), but checksum and structural validity are *reported*, not
/// enforced, so `qbs inspect` can diagnose a bit-rotted file. Takes the
/// buffer by value so inspecting a multi-GB index never holds two copies
/// of it — pass `ViewBuf::Heap(std::fs::read(path)?)` or a mapped buffer.
pub fn inspect_v2(buf: ViewBuf) -> Result<FileInspection> {
    let view = IndexView::parse_trusted(buf)?;
    let checksum_offset = view.section(SectionKind::Checksum).offset as usize;
    let computed_checksum = checksum64(&view.buf().as_slice()[..checksum_offset]);
    Ok(FileInspection {
        num_vertices: view.num_vertices(),
        num_landmarks: view.num_landmarks(),
        file_len: view.file_len(),
        sections: view.sections().to_vec(),
        stored_checksum: view.checksum(),
        computed_checksum,
        num_arcs: view.num_arcs(),
        num_meta_edges: view.num_meta_edges(),
        num_delta_edges: view.num_delta_edges(),
    })
}

/// Validates the magic and version of a candidate v2 buffer, with a clear
/// migration message when the buffer is actually a v1 JSON index.
fn check_magic_and_version(data: &[u8]) -> Result<()> {
    if data.starts_with(crate::serialize::MAGIC_V1.as_bytes()) {
        return Err(QbsError::Corrupt(
            "this is a qbs-index-v1 JSON index, not a v2 binary one; load it through \
             serialize::load_from_file (which reads both) and re-save it with the v2 \
             writer to migrate"
                .into(),
        ));
    }
    if data.len() < HEADER_LEN {
        return Err(QbsError::Corrupt(format!(
            "buffer of {} bytes is shorter than the {HEADER_LEN}-byte v2 header",
            data.len()
        )));
    }
    if data[..8] == MAGIC_V3 {
        return Err(QbsError::Corrupt(
            "this is a qbs-index-v3 compact index, not a v2 wide one; read it with \
             CompactView / from_bytes_v3, or serialize::load_from_file (which reads \
             every version)"
                .into(),
        ));
    }
    if data[..8] != MAGIC_V2 {
        return Err(QbsError::Corrupt(format!(
            "missing qbs-index-v2 magic; file starts with {}",
            crate::serialize::excerpt(data)
        )));
    }
    let version = le_u32(data, 8);
    if version != FORMAT_VERSION {
        return Err(QbsError::Corrupt(format!(
            "unsupported qbs-index format version {version}; this build reads v1 (JSON) \
             and v{FORMAT_VERSION} (binary)"
        )));
    }
    Ok(())
}

/// Validates the magic and version of a candidate v3 buffer, with clear
/// cross-version hints for v1 and v2 data.
fn check_magic_and_version_v3(data: &[u8]) -> Result<()> {
    if data.starts_with(crate::serialize::MAGIC_V1.as_bytes()) {
        return Err(QbsError::Corrupt(
            "this is a qbs-index-v1 JSON index, not a v3 compact one; load it through \
             serialize::load_from_file (which reads every version) and re-save it with \
             the compact profile to migrate"
                .into(),
        ));
    }
    if data.len() < HEADER_LEN {
        return Err(QbsError::Corrupt(format!(
            "buffer of {} bytes is shorter than the {HEADER_LEN}-byte v3 header",
            data.len()
        )));
    }
    if data[..8] == MAGIC_V2 {
        return Err(QbsError::Corrupt(
            "this is a qbs-index-v2 wide index, not a v3 compact one; read it with \
             IndexView / from_bytes_v2, or convert it to the compact profile with \
             `qbs convert`"
                .into(),
        ));
    }
    if data[..8] != MAGIC_V3 {
        return Err(QbsError::Corrupt(format!(
            "missing qbs-index-v3 magic; file starts with {}",
            crate::serialize::excerpt(data)
        )));
    }
    let version = le_u32(data, 8);
    if version != FORMAT_VERSION_V3 {
        return Err(QbsError::Corrupt(format!(
            "unsupported qbs-index format version {version}; this build reads v1 (JSON), \
             v{FORMAT_VERSION} (wide binary) and v{FORMAT_VERSION_V3} (compact binary)"
        )));
    }
    Ok(())
}

/// Packs a label entry: low 16 bits landmark index, high 16 bits distance.
#[inline]
fn pack_label_entry(landmark_idx: usize, distance: Distance) -> u32 {
    debug_assert!(landmark_idx <= u16::MAX as usize);
    debug_assert!(distance < NO_LABEL as Distance);
    (landmark_idx as u32) | (distance << 16)
}

/// Inverse of [`pack_label_entry`].
#[inline]
fn unpack_label_entry(raw: u32) -> (usize, Distance) {
    ((raw & 0xFFFF) as usize, raw >> 16)
}

/// The v2 checksum: FNV-1a 64 applied to 8-byte little-endian words.
///
/// The classic byte-at-a-time FNV-1a is a serial multiply chain, which
/// costs ~2 ns/byte and would dominate load time on multi-hundred-MB
/// indexes. Hashing word-wise keeps the same structure (`h = (h ^ w) ·
/// prime`) at one multiply per 8 bytes. The tail is zero-padded to a full
/// word; buffer-length ambiguity is impossible because the header's
/// `file_size` field participates in the hash.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        hash = (hash ^ word).wrapping_mul(PRIME);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 8];
        padded[..tail.len()].copy_from_slice(tail);
        hash = (hash ^ u64::from_le_bytes(padded)).wrapping_mul(PRIME);
    }
    hash
}

fn align_up(value: u64, align: u64) -> u64 {
    value.div_ceil(align) * align
}

/// Checks a CSR offset array: monotone, starting at 0, ending at the
/// element count of the payload it indexes.
fn validate_csr(offsets: &[u8], num_elements: u64, what: &str) -> Result<()> {
    if offsets.len() < 8 {
        return Err(QbsError::Corrupt(format!("{what} offset array is empty")));
    }
    let mut prev = le_u64(offsets, 0);
    if prev != 0 {
        return Err(QbsError::Corrupt(format!(
            "{what} offsets must start at 0, found {prev}"
        )));
    }
    for i in 1..offsets.len() / 8 {
        let next = le_u64(offsets, i * 8);
        if next < prev {
            return Err(QbsError::Corrupt(format!(
                "{what} offsets decrease at position {i}"
            )));
        }
        prev = next;
    }
    if prev != num_elements {
        return Err(QbsError::Corrupt(format!(
            "{what} offsets end at {prev}, but the payload holds {num_elements} elements"
        )));
    }
    Ok(())
}

#[inline]
fn le_u32(bytes: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"))
}

#[inline]
fn le_u64(bytes: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"))
}

fn u32_iter(bytes: &[u8]) -> impl Iterator<Item = u32> + '_ {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
}

fn u32_vec(bytes: &[u8]) -> Vec<u32> {
    u32_iter(bytes).collect()
}

fn u64_vec(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

// ---------------------------------------------------------------------------
// qbs-index-v3: the compact width-profiled layout
// ---------------------------------------------------------------------------
//
// v3 keeps the v2 skeleton — the same 48-byte header size, the same ten
// sections in the same order, the same 8-byte alignment, checksum and
// trailing-byte rules — but narrows every array to what the data actually
// needs:
//
// * the header declares a **width profile**: `id_width` (vertex-id bytes,
//   always 4 in this build), `dist_width` (1/2/4 bytes per stored distance,
//   chosen from the real maximum finite distance at encode time) and
//   `offset_width` (4/8 bytes per CSR byte-offset — 8 is the wide fallback
//   for variable sections past 4 GiB);
// * label and adjacency rows are **front-coded LEB128 runs**: both are
//   strictly ascending, so each element after the first is stored as a
//   varint delta from its predecessor. LEB128 was chosen over fixed
//   bit-packing because every hot accessor decodes rows *sequentially*
//   (never random-access within a row), where a byte-aligned varint is one
//   load + one branch per element and needs no per-row bit-width side table;
// * Δ rows store each endpoint as a plain LEB128 varint (their pair order
//   is answer-relevant and preserved verbatim, so no re-sorting for
//   front-coding);
// * the APSP matrix and meta-edge weights shrink to `dist_width` bytes,
//   with the width's all-ones value reserved as the `INFINITE_DISTANCE`
//   sentinel (which is why the maximum finite distance must sit strictly
//   below it);
// * CSR offsets are **byte** offsets into the (now variable-width) payload
//   sections, `offset_width` bytes each.
//
// The header additionally records the true maximum label distance, giving
// readers a cheap integrity tripwire the wide format never had: any decoded
// label distance above it is reported as `QbsError::Corrupt`.

/// A validated, zero-copy view over a compact `qbs-index-v3` buffer.
///
/// The v3 sibling of [`IndexView`], with the same [`CompactView::parse`] /
/// [`CompactView::parse_trusted`] / [`CompactView::verify`] split and the
/// same accessor contract (out-of-range vertex or landmark indices are
/// caller bugs and panic). Rows of the variable sections are front-coded
/// LEB128 runs, so accessors decode on the fly and return iterators.
#[derive(Debug)]
pub struct CompactView {
    buf: ViewBuf,
    sections: Vec<SectionRecord>,
    num_vertices: usize,
    num_landmarks: usize,
    dist_width: u8,
    offset_width: u8,
    max_label_distance: Distance,
    verified: std::sync::atomic::AtomicBool,
}

impl Clone for CompactView {
    fn clone(&self) -> Self {
        CompactView {
            buf: self.buf.clone(),
            sections: self.sections.clone(),
            num_vertices: self.num_vertices,
            num_landmarks: self.num_landmarks,
            dist_width: self.dist_width,
            offset_width: self.offset_width,
            max_label_distance: self.max_label_distance,
            verified: std::sync::atomic::AtomicBool::new(self.is_verified()),
        }
    }
}

impl CompactView {
    /// Parses and fully validates a v3 buffer.
    pub fn parse(buf: ViewBuf) -> Result<CompactView> {
        let view = Self::parse_geometry(buf)?;
        view.verify()?;
        Ok(view)
    }

    /// Parses a v3 buffer validating only its **geometry**, deferring the
    /// `O(file)` checksum and structural scans exactly like
    /// [`IndexView::parse_trusted`]. Same trust model: meant for files your
    /// own pipeline wrote; a file that would have failed full validation
    /// surfaces as a deferred [`CompactView::verify`] error, a panic
    /// (bounds-checked slice index), or a wrong answer — never memory
    /// unsafety.
    pub fn parse_trusted(buf: ViewBuf) -> Result<CompactView> {
        Self::parse_geometry(buf)
    }

    /// Whether full integrity validation has passed on this view.
    pub fn is_verified(&self) -> bool {
        self.verified.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs the deferred integrity validation (checksum + structural
    /// scans + the max-label-distance tripwire). Idempotent.
    pub fn verify(&self) -> Result<()> {
        self.verify_checksum()?;
        self.validate_structure()?;
        self.verified
            .store(true, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    fn parse_geometry(buf: ViewBuf) -> Result<CompactView> {
        let data = buf.as_slice();
        check_magic_and_version_v3(data)?;

        let section_count = le_u32(data, 12) as usize;
        if section_count != SECTION_COUNT {
            return Err(QbsError::Corrupt(format!(
                "qbs-index-v3 expects {SECTION_COUNT} sections, header declares {section_count}"
            )));
        }
        let num_vertices = le_u64(data, 16) as usize;
        let num_landmarks = le_u64(data, 24) as usize;
        let file_size = le_u64(data, 32);
        if file_size != data.len() as u64 {
            return Err(QbsError::Corrupt(format!(
                "file size mismatch: header declares {file_size} bytes, buffer has {} \
                 (truncated or padded file)",
                data.len()
            )));
        }
        let id_width = data[40];
        let dist_width = data[41];
        let offset_width = data[42];
        if id_width != 4 {
            return Err(QbsError::Corrupt(format!(
                "qbs-index-v3 id_width {id_width} is unsupported; this build reads \
                 4-byte vertex ids"
            )));
        }
        if !matches!(dist_width, 1 | 2 | 4) {
            return Err(QbsError::Corrupt(format!(
                "qbs-index-v3 dist_width must be 1, 2 or 4 bytes, header declares \
                 {dist_width}"
            )));
        }
        if !matches!(offset_width, 4 | 8) {
            return Err(QbsError::Corrupt(format!(
                "qbs-index-v3 offset_width must be 4 or 8 bytes, header declares \
                 {offset_width}"
            )));
        }
        let max_label_distance = le_u32(data, 44);
        if max_label_distance >= width_sentinel(dist_width as usize) {
            return Err(QbsError::Corrupt(format!(
                "header max label distance {max_label_distance} does not fit the \
                 declared {dist_width}-byte distance width"
            )));
        }

        let sections = parse_section_table(data)?;
        let view = CompactView {
            buf,
            sections,
            num_vertices,
            num_landmarks,
            dist_width,
            offset_width,
            max_label_distance,
            verified: std::sync::atomic::AtomicBool::new(false),
        };
        view.validate_lengths()?;
        Ok(view)
    }

    /// Number of vertices of the serialised graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of landmarks `|R|`.
    #[inline]
    pub fn num_landmarks(&self) -> usize {
        self.num_landmarks
    }

    /// Bytes per stored distance (1, 2 or 4).
    #[inline]
    pub fn dist_width(&self) -> u8 {
        self.dist_width
    }

    /// Bytes per CSR byte-offset (4, or 8 for the wide fallback).
    #[inline]
    pub fn offset_width(&self) -> u8 {
        self.offset_width
    }

    /// The true maximum label distance recorded at encode time.
    #[inline]
    pub fn max_label_distance(&self) -> Distance {
        self.max_label_distance
    }

    /// Total buffer length in bytes.
    #[inline]
    pub fn file_len(&self) -> usize {
        self.buf.len()
    }

    /// The parsed section table, in file order.
    pub fn sections(&self) -> &[SectionRecord] {
        &self.sections
    }

    /// The buffer backend behind this view (heap copy or file mapping).
    pub fn buf(&self) -> &ViewBuf {
        &self.buf
    }

    /// The stored checksum ([`checksum64`] of every byte before its section).
    pub fn checksum(&self) -> u64 {
        let s = self.section(SectionKind::Checksum);
        le_u64(self.buf.as_slice(), s.offset as usize)
    }

    /// Raw payload bytes of one section.
    pub fn section_bytes(&self, kind: SectionKind) -> &[u8] {
        let s = self.section(kind);
        &self.buf.as_slice()[s.offset as usize..(s.offset + s.len) as usize]
    }

    /// The `i`-th landmark vertex id (column order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_landmarks()`.
    #[inline]
    pub fn landmark(&self, i: usize) -> VertexId {
        le_u32(self.section_bytes(SectionKind::Landmarks), i * 4)
    }

    /// Iterator over the landmark list.
    pub fn landmarks(&self) -> impl Iterator<Item = VertexId> + '_ {
        u32_iter(self.section_bytes(SectionKind::Landmarks))
    }

    /// The byte range of row `i` inside the payload section indexed by
    /// `offsets_kind`.
    fn row_range(&self, offsets_kind: SectionKind, i: usize) -> (usize, usize) {
        let offsets = self.section_bytes(offsets_kind);
        let ow = self.offset_width as usize;
        let lo = read_offset(offsets, i * ow, ow) as usize;
        let hi = read_offset(offsets, (i + 1) * ow, ow) as usize;
        (lo, hi)
    }

    /// Number of label entries of vertex `v` (decoded from the row run).
    ///
    /// # Panics
    ///
    /// Panics if `v as usize >= num_vertices()`.
    pub fn label_len(&self, v: VertexId) -> usize {
        self.label_entries(v).count()
    }

    /// Iterator over the `(landmark_idx, distance)` label entries of `v`,
    /// decoded on the fly from the front-coded run.
    ///
    /// # Panics
    ///
    /// Panics if `v as usize >= num_vertices()`.
    pub fn label_entries(&self, v: VertexId) -> impl Iterator<Item = (usize, Distance)> + '_ {
        let (lo, hi) = self.row_range(SectionKind::LabelOffsets, v as usize);
        let row = &self.section_bytes(SectionKind::LabelEntries)[lo..hi];
        let dw = self.dist_width as usize;
        let mut pos = 0usize;
        let mut col = 0usize;
        let mut first = true;
        std::iter::from_fn(move || {
            if pos >= row.len() {
                return None;
            }
            let delta = read_varint(row, &mut pos) as usize;
            col = if first { delta } else { col + delta };
            first = false;
            let d = read_dist(row, &mut pos, dw);
            Some((col, d))
        })
    }

    /// Iterator over the neighbours of `v`, decoded on the fly from the
    /// front-coded adjacency run.
    ///
    /// # Panics
    ///
    /// Panics if `v as usize >= num_vertices()`.
    pub fn graph_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let (lo, hi) = self.row_range(SectionKind::GraphOffsets, v as usize);
        let row = &self.section_bytes(SectionKind::GraphNeighbors)[lo..hi];
        let mut pos = 0usize;
        let mut prev = 0u32;
        let mut first = true;
        std::iter::from_fn(move || {
            if pos >= row.len() {
                return None;
            }
            let delta = read_varint(row, &mut pos);
            prev = if first { delta } else { prev + delta };
            first = false;
            Some(prev)
        })
    }

    /// Number of meta-graph edges.
    pub fn num_meta_edges(&self) -> usize {
        self.section(SectionKind::MetaEdges).len as usize / (4 + self.dist_width as usize)
    }

    /// Iterator over the meta edges `(i, j, σ)` in stored order.
    pub fn meta_edges(&self) -> impl Iterator<Item = (usize, usize, Distance)> + '_ {
        (0..self.num_meta_edges()).map(move |k| self.meta_edge(k))
    }

    /// The `k`-th meta edge `(i, j, σ)` in stored order.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_meta_edges()`.
    #[inline]
    pub fn meta_edge(&self, k: usize) -> (usize, usize, Distance) {
        let bytes = self.section_bytes(SectionKind::MetaEdges);
        let dw = self.dist_width as usize;
        let base = k * (4 + dw);
        let mut pos = base + 4;
        (
            le_u16(bytes, base) as usize,
            le_u16(bytes, base + 2) as usize,
            read_dist(bytes, &mut pos, dw),
        )
    }

    /// The label distance of `v` towards landmark column `landmark_idx`
    /// (`None` when the pair has no entry).
    ///
    /// # Panics
    ///
    /// Panics if `v as usize >= num_vertices()`.
    pub fn label_distance(&self, v: VertexId, landmark_idx: usize) -> Option<Distance> {
        self.label_entries(v)
            .find(|&(idx, _)| idx == landmark_idx)
            .map(|(_, d)| d)
    }

    /// `d_M(i, j)` from the narrow APSP matrix, mapping the width's
    /// all-ones sentinel back to [`INFINITE_DISTANCE`].
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is `>= num_landmarks()`.
    #[inline]
    pub fn meta_distance(&self, i: usize, j: usize) -> Distance {
        let dw = self.dist_width as usize;
        let mut pos = (i * self.num_landmarks + j) * dw;
        let raw = read_dist(self.section_bytes(SectionKind::MetaApsp), &mut pos, dw);
        if raw == width_sentinel(dw) {
            INFINITE_DISTANCE
        } else {
            raw
        }
    }

    /// Iterator over the Δ path-graph edges of meta edge `k`, decoded from
    /// the varint run in stored order.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_meta_edges()`.
    pub fn delta_edges(&self, k: usize) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        let (lo, hi) = self.row_range(SectionKind::DeltaOffsets, k);
        let row = &self.section_bytes(SectionKind::DeltaEdges)[lo..hi];
        let mut pos = 0usize;
        std::iter::from_fn(move || {
            if pos >= row.len() {
                return None;
            }
            let a = read_varint(row, &mut pos);
            let b = read_varint(row, &mut pos);
            Some((a, b))
        })
    }

    fn section(&self, kind: SectionKind) -> SectionRecord {
        self.sections[kind as usize - 1]
    }

    fn verify_checksum(&self) -> Result<()> {
        let s = self.section(SectionKind::Checksum);
        let data = self.buf.as_slice();
        let stored = le_u64(data, s.offset as usize);
        let actual = checksum64(&data[..s.offset as usize]);
        if stored != actual {
            return Err(QbsError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x} \
                 (file is corrupt)"
            )));
        }
        Ok(())
    }

    /// The cheap length checks that run in both parse modes: every
    /// fixed-size section length the header implies, with checked
    /// arithmetic. The variable sections (label entries, neighbours, Δ
    /// edges) have no header-implied length — their terminal offsets are
    /// checked by the deferred structural scan.
    fn validate_lengths(&self) -> Result<()> {
        let n = self.num_vertices;
        let r = self.num_landmarks;
        if r > u16::MAX as usize {
            return Err(QbsError::Corrupt(format!(
                "v3 stores landmark indices in 16 bits; {r} landmarks exceed the limit"
            )));
        }
        let ow = self.offset_width as u64;
        let dw = self.dist_width as u64;
        let offsets_len = (n as u64)
            .checked_add(1)
            .and_then(|c| c.checked_mul(ow))
            .ok_or_else(|| {
                QbsError::Corrupt(format!("header vertex count {n} overflows the format"))
            })?;
        self.expect_len(SectionKind::Landmarks, r as u64 * 4)?;
        self.expect_len(SectionKind::LabelOffsets, offsets_len)?;
        self.expect_len(SectionKind::GraphOffsets, offsets_len)?;
        self.expect_len(SectionKind::MetaApsp, (r as u64 * r as u64) * dw)?;
        let meta_len = self.section(SectionKind::MetaEdges).len;
        if !meta_len.is_multiple_of(4 + dw) {
            return Err(QbsError::Corrupt(format!(
                "section 'meta-edges' length {meta_len} is not a multiple of its {}-byte \
                 element",
                4 + dw
            )));
        }
        self.expect_len(
            SectionKind::DeltaOffsets,
            (self.num_meta_edges() as u64 + 1) * ow,
        )?;
        if self.section(SectionKind::Checksum).len != 8 {
            return Err(QbsError::Corrupt(format!(
                "checksum section must be 8 bytes, found {}",
                self.section(SectionKind::Checksum).len
            )));
        }
        Ok(())
    }

    /// The deferred `O(file)` structural scan: byte-CSR terminal offsets,
    /// landmark sanity, strictly-ascending runs, range checks, and the
    /// max-label-distance tripwire. Every decode here is *checked* — a
    /// malformed varint run yields `Corrupt`, never a panic.
    fn validate_structure(&self) -> Result<()> {
        let n = self.num_vertices;
        let r = self.num_landmarks;
        let dw = self.dist_width as usize;

        let mut landmark_seen = vec![false; n];
        for v in u32_iter(self.section_bytes(SectionKind::Landmarks)) {
            if v as usize >= n {
                return Err(QbsError::Corrupt(format!(
                    "landmark id {v} out of range for {n} vertices"
                )));
            }
            if std::mem::replace(&mut landmark_seen[v as usize], true) {
                return Err(QbsError::Corrupt(format!(
                    "landmark id {v} appears twice in the landmark list"
                )));
            }
        }

        self.validate_byte_csr(
            SectionKind::LabelOffsets,
            SectionKind::LabelEntries,
            "label",
        )?;
        self.validate_byte_csr(
            SectionKind::GraphOffsets,
            SectionKind::GraphNeighbors,
            "graph",
        )?;
        self.validate_byte_csr(SectionKind::DeltaOffsets, SectionKind::DeltaEdges, "delta")?;

        // Label rows: strictly ascending columns < |R|, distances within
        // the header's recorded maximum (the compact profile's integrity
        // tripwire), rows consumed exactly.
        let entries = self.section_bytes(SectionKind::LabelEntries);
        for v in 0..n {
            let (lo, hi) = self.row_range(SectionKind::LabelOffsets, v);
            let row = &entries[lo..hi];
            let mut pos = 0usize;
            let mut col = 0usize;
            let mut first = true;
            while pos < row.len() {
                let delta = checked_varint(row, &mut pos)
                    .ok_or_else(|| malformed_row("label", v))? as usize;
                if !first && delta == 0 {
                    return Err(QbsError::Corrupt(format!(
                        "label columns of vertex {v} are not strictly ascending"
                    )));
                }
                col = if first { delta } else { col + delta };
                first = false;
                if col >= r {
                    return Err(QbsError::Corrupt(format!(
                        "label entry references landmark column {col}, only {r} exist"
                    )));
                }
                if pos + dw > row.len() {
                    return Err(malformed_row("label", v));
                }
                let d = read_dist(row, &mut pos, dw);
                if d > self.max_label_distance {
                    return Err(QbsError::Corrupt(format!(
                        "label distance {d} of vertex {v} exceeds the header's recorded \
                         maximum {}",
                        self.max_label_distance
                    )));
                }
            }
        }

        // Adjacency rows: strictly ascending ids < |V|.
        let neighbors = self.section_bytes(SectionKind::GraphNeighbors);
        for v in 0..n {
            let (lo, hi) = self.row_range(SectionKind::GraphOffsets, v);
            let row = &neighbors[lo..hi];
            let mut pos = 0usize;
            let mut w = 0u32;
            let mut first = true;
            while pos < row.len() {
                let delta =
                    checked_varint(row, &mut pos).ok_or_else(|| malformed_row("adjacency", v))?;
                if !first && delta == 0 {
                    return Err(QbsError::Corrupt(format!(
                        "adjacency list of vertex {v} is not strictly sorted"
                    )));
                }
                w = if first {
                    delta
                } else {
                    w.checked_add(delta).ok_or_else(|| {
                        QbsError::Corrupt(format!(
                            "adjacency delta of vertex {v} overflows the id space"
                        ))
                    })?
                };
                first = false;
                if w as usize >= n {
                    return Err(QbsError::Corrupt(format!(
                        "graph neighbour id {w} out of range for {n} vertices"
                    )));
                }
            }
        }

        // Meta edges: i < j < |R|, weights strictly below the infinite
        // sentinel (which only the APSP matrix may use).
        let sentinel = width_sentinel(dw);
        for (i, j, sigma) in self.meta_edges() {
            if i >= j || j >= r {
                return Err(QbsError::Corrupt(format!(
                    "meta edge ({i}, {j}) violates i < j < |R| = {r}"
                )));
            }
            if sigma >= sentinel {
                return Err(QbsError::Corrupt(format!(
                    "meta edge weight {sigma} collides with the {dw}-byte infinite sentinel"
                )));
            }
        }

        // Δ rows: endpoint pairs in range, rows consumed exactly.
        let delta_bytes = self.section_bytes(SectionKind::DeltaEdges);
        for k in 0..self.num_meta_edges() {
            let (lo, hi) = self.row_range(SectionKind::DeltaOffsets, k);
            let row = &delta_bytes[lo..hi];
            let mut pos = 0usize;
            while pos < row.len() {
                for _ in 0..2 {
                    let v =
                        checked_varint(row, &mut pos).ok_or_else(|| malformed_row("delta", k))?;
                    if v as usize >= n {
                        return Err(QbsError::Corrupt(format!(
                            "delta edge endpoint {v} out of range for {n} vertices"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks a byte-offset CSR array: starts at 0, monotone, ends exactly
    /// at the payload section's byte length. Runs before the row decodes,
    /// so row slicing in the structural scan cannot go out of bounds.
    fn validate_byte_csr(
        &self,
        offsets_kind: SectionKind,
        payload_kind: SectionKind,
        what: &str,
    ) -> Result<()> {
        let offsets = self.section_bytes(offsets_kind);
        let ow = self.offset_width as usize;
        let total = self.section(payload_kind).len;
        let mut prev = read_offset(offsets, 0, ow);
        if prev != 0 {
            return Err(QbsError::Corrupt(format!(
                "{what} offsets must start at 0, found {prev}"
            )));
        }
        for i in 1..offsets.len() / ow {
            let next = read_offset(offsets, i * ow, ow);
            if next < prev {
                return Err(QbsError::Corrupt(format!(
                    "{what} offsets decrease at position {i}"
                )));
            }
            prev = next;
        }
        if prev != total {
            return Err(QbsError::Corrupt(format!(
                "{what} offsets end at {prev}, but the payload holds {total} bytes"
            )));
        }
        Ok(())
    }

    fn expect_len(&self, kind: SectionKind, expected: u64) -> Result<()> {
        let len = self.section(kind).len;
        if len != expected {
            return Err(QbsError::Corrupt(format!(
                "section '{}' must be {expected} bytes for this header, found {len}",
                kind.name()
            )));
        }
        Ok(())
    }

    /// Decoded element counts of the three variable sections, or `None`
    /// when a row is malformed. Used by inspection, which must not panic on
    /// corrupt-but-geometrically-sane files.
    pub(crate) fn counts_checked(&self) -> Option<CompactCounts> {
        let dw = self.dist_width as usize;
        let mut label_entries = 0usize;
        for v in 0..self.num_vertices {
            let row = self.checked_row(SectionKind::LabelOffsets, SectionKind::LabelEntries, v)?;
            let mut pos = 0usize;
            while pos < row.len() {
                checked_varint(row, &mut pos)?;
                pos = pos.checked_add(dw)?;
                if pos > row.len() {
                    return None;
                }
                label_entries += 1;
            }
        }
        let mut num_arcs = 0usize;
        for v in 0..self.num_vertices {
            let row =
                self.checked_row(SectionKind::GraphOffsets, SectionKind::GraphNeighbors, v)?;
            let mut pos = 0usize;
            while pos < row.len() {
                checked_varint(row, &mut pos)?;
                num_arcs += 1;
            }
        }
        let mut num_delta_edges = 0usize;
        for k in 0..self.num_meta_edges() {
            let row = self.checked_row(SectionKind::DeltaOffsets, SectionKind::DeltaEdges, k)?;
            let mut pos = 0usize;
            while pos < row.len() {
                checked_varint(row, &mut pos)?;
                checked_varint(row, &mut pos)?;
                num_delta_edges += 1;
            }
        }
        Some(CompactCounts {
            label_entries,
            num_arcs,
            num_delta_edges,
        })
    }

    /// Like [`CompactView::row_range`] + slicing, but returns `None` on
    /// out-of-range offsets instead of panicking.
    fn checked_row(
        &self,
        offsets_kind: SectionKind,
        payload_kind: SectionKind,
        i: usize,
    ) -> Option<&[u8]> {
        let offsets = self.section_bytes(offsets_kind);
        let ow = self.offset_width as usize;
        let lo = read_offset(offsets, i * ow, ow) as usize;
        let hi = read_offset(offsets, (i + 1) * ow, ow) as usize;
        self.section_bytes(payload_kind).get(lo..hi)
    }

    /// Materialises the runtime index structures from the view, decoding
    /// every run once. The view was fully validated at parse time, so the
    /// CSR constructors cannot panic here.
    pub(crate) fn materialize(&self) -> (Graph, Vec<VertexId>, PathLabelling, MetaGraph) {
        let n = self.num_vertices;
        let r = self.num_landmarks;

        let landmarks: Vec<VertexId> = u32_vec(self.section_bytes(SectionKind::Landmarks));

        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u64);
        for v in 0..n as VertexId {
            neighbors.extend(self.graph_neighbors(v));
            offsets.push(neighbors.len() as u64);
        }
        let graph = Graph::from_csr_parts(offsets, neighbors);

        let mut labelling = PathLabelling::new(n, r);
        for v in 0..n as VertexId {
            for (idx, d) in self.label_entries(v) {
                labelling.set(v, idx, d as u16);
            }
        }

        let edges: Vec<(usize, usize, Distance)> = self.meta_edges().collect();
        let apsp: Vec<Distance> = (0..r)
            .flat_map(|i| (0..r).map(move |j| (i, j)))
            .map(|(i, j)| self.meta_distance(i, j))
            .collect();
        let delta: Vec<Vec<(VertexId, VertexId)>> = (0..edges.len())
            .map(|k| self.delta_edges(k).collect())
            .collect();
        let meta = MetaGraph::from_parts(landmarks.clone(), edges, apsp, delta);

        (graph, landmarks, labelling, meta)
    }
}

/// Serialises a built index into a compact `qbs-index-v3` buffer.
///
/// The width profile is derived from the data: `dist_width` is the
/// smallest of 1/2/4 bytes holding every finite stored distance (labels,
/// meta-edge weights, finite APSP entries) strictly below the width's
/// all-ones sentinel, and `offset_width` is 4 unless a variable section
/// outgrows `u32` byte offsets (the wide fallback, reachable only past
/// 4 GiB per section). Fails with [`QbsError::InvalidLandmarks`] when the
/// landmark count exceeds the 16-bit landmark-index budget.
pub fn write_v3(index: &QbsIndex) -> Result<Vec<u8>> {
    let graph = index.graph();
    let landmarks = index.landmarks();
    let labelling = index.labelling();
    let meta = index.meta_graph();
    let n = graph.num_vertices();
    let r = landmarks.len();
    if r > u16::MAX as usize {
        return Err(QbsError::InvalidLandmarks(format!(
            "qbs-index-v3 stores landmark indices in 16 bits; cannot serialise {r} landmarks"
        )));
    }

    // Width profile: scan every distance the file will store. The maximum
    // must sit strictly below the width's all-ones value, which the APSP
    // matrix reserves as its infinite sentinel.
    let mut max_label_distance: Distance = 0;
    for v in 0..n as VertexId {
        for (_, d) in labelling.entries(v) {
            max_label_distance = max_label_distance.max(d);
        }
    }
    let mut max_distance = max_label_distance;
    for &(_, _, sigma) in meta.edges() {
        max_distance = max_distance.max(sigma);
    }
    for &d in meta.apsp() {
        if d != INFINITE_DISTANCE {
            max_distance = max_distance.max(d);
        }
    }
    let dist_width: u8 = if max_distance < 0xFF {
        1
    } else if max_distance < 0xFFFF {
        2
    } else {
        4
    };
    let dw = dist_width as usize;

    // Payloads, one per section, in file order. The three variable
    // sections are encoded first so the byte-offset arrays (and their
    // width) can be derived from the encoded lengths.
    let mut landmarks_bytes = Vec::with_capacity(r * 4);
    for &v in landmarks {
        landmarks_bytes.extend_from_slice(&v.to_le_bytes());
    }

    let mut label_entries = Vec::new();
    let mut label_ends = Vec::with_capacity(n);
    for v in 0..n as VertexId {
        let mut prev = 0usize;
        let mut first = true;
        for (col, d) in labelling.entries(v) {
            let delta = if first { col } else { col - prev };
            first = false;
            prev = col;
            write_varint(&mut label_entries, delta as u32);
            write_dist(&mut label_entries, d, dw);
        }
        label_ends.push(label_entries.len() as u64);
    }

    let mut graph_neighbors = Vec::new();
    let mut graph_ends = Vec::with_capacity(n);
    for v in 0..n as VertexId {
        let mut prev = 0u32;
        let mut first = true;
        for &w in graph.neighbors(v) {
            let delta = if first { w } else { w - prev };
            first = false;
            prev = w;
            write_varint(&mut graph_neighbors, delta);
        }
        graph_ends.push(graph_neighbors.len() as u64);
    }

    let mut meta_edges = Vec::with_capacity(meta.edges().len() * (4 + dw));
    for &(i, j, sigma) in meta.edges() {
        meta_edges.extend_from_slice(&(i as u16).to_le_bytes());
        meta_edges.extend_from_slice(&(j as u16).to_le_bytes());
        write_dist(&mut meta_edges, sigma, dw);
    }

    let sentinel = width_sentinel(dw);
    let mut meta_apsp = Vec::with_capacity(r * r * dw);
    for &d in meta.apsp() {
        let stored = if d == INFINITE_DISTANCE { sentinel } else { d };
        write_dist(&mut meta_apsp, stored, dw);
    }

    // Δ pair order is answer-relevant (it decides path-graph edge order),
    // so pairs are stored verbatim as varints, not re-sorted for
    // front-coding.
    let mut delta_edges = Vec::new();
    let mut delta_ends = Vec::with_capacity(meta.edges().len());
    for k in 0..meta.edges().len() {
        for &(a, b) in meta.delta_edges(k) {
            write_varint(&mut delta_edges, a);
            write_varint(&mut delta_edges, b);
        }
        delta_ends.push(delta_edges.len() as u64);
    }

    // The wide fallback: 8-byte offsets only when a section's byte length
    // no longer fits u32.
    let needs_wide = [&label_entries, &graph_neighbors, &delta_edges]
        .iter()
        .any(|payload| payload.len() as u64 > u32::MAX as u64);
    let offset_width: u8 = if needs_wide { 8 } else { 4 };
    let ow = offset_width as usize;

    let label_offsets = encode_offsets(&label_ends, ow);
    let graph_offsets = encode_offsets(&graph_ends, ow);
    let delta_offsets = encode_offsets(&delta_ends, ow);

    let payloads: [&[u8]; SECTION_COUNT - 1] = [
        &landmarks_bytes,
        &label_offsets,
        &label_entries,
        &graph_offsets,
        &graph_neighbors,
        &meta_edges,
        &meta_apsp,
        &delta_offsets,
        &delta_edges,
    ];

    // Lay out the section table (same mechanics as v2).
    let mut records: Vec<(SectionKind, u64, u64)> = Vec::with_capacity(SECTION_COUNT);
    let mut cursor = (HEADER_LEN + SECTION_COUNT * SECTION_RECORD_LEN) as u64;
    for (kind, payload) in SectionKind::ALL.iter().zip(payloads.iter()) {
        cursor = align_up(cursor, SECTION_ALIGN as u64);
        records.push((*kind, cursor, payload.len() as u64));
        cursor += payload.len() as u64;
    }
    cursor = align_up(cursor, SECTION_ALIGN as u64);
    let checksum_offset = cursor;
    records.push((SectionKind::Checksum, checksum_offset, 8));
    let file_size = checksum_offset + 8;

    // Emit header + table + payloads.
    let mut out = Vec::with_capacity(file_size as usize);
    out.extend_from_slice(&MAGIC_V3);
    out.extend_from_slice(&FORMAT_VERSION_V3.to_le_bytes());
    out.extend_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(r as u64).to_le_bytes());
    out.extend_from_slice(&file_size.to_le_bytes());
    out.push(4); // id_width: vertex ids are u32 in this build
    out.push(dist_width);
    out.push(offset_width);
    out.push(0); // reserved
    out.extend_from_slice(&max_label_distance.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    for &(kind, offset, len) in &records {
        out.extend_from_slice(&(kind as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    for (&(_, offset, _), payload) in records.iter().zip(payloads.iter()) {
        out.resize(offset as usize, 0);
        out.extend_from_slice(payload);
    }
    out.resize(checksum_offset as usize, 0);
    let checksum = checksum64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    debug_assert_eq!(out.len() as u64, file_size);
    Ok(out)
}

/// Decoded element counts of a v3 file's variable sections.
#[derive(Clone, Copy, Debug)]
pub struct CompactCounts {
    /// Total label entries `Σ_v |L(v)|`.
    pub label_entries: usize,
    /// Directed arc count of the adjacency section.
    pub num_arcs: usize,
    /// Total Δ path-graph edges across all meta edges.
    pub num_delta_edges: usize,
}

/// Everything `qbs inspect` reports about a v3 file — the compact sibling
/// of [`FileInspection`], computed without requiring the checksum to match.
#[derive(Clone, Debug)]
pub struct CompactInspection {
    /// `|V|` from the header.
    pub num_vertices: usize,
    /// `|R|` from the header.
    pub num_landmarks: usize,
    /// Total file length in bytes.
    pub file_len: usize,
    /// The parsed section table, in file order.
    pub sections: Vec<SectionRecord>,
    /// Checksum stored in the file.
    pub stored_checksum: u64,
    /// Checksum recomputed over the file contents.
    pub computed_checksum: u64,
    /// Bytes per stored distance.
    pub dist_width: u8,
    /// Bytes per CSR byte-offset.
    pub offset_width: u8,
    /// The true maximum label distance recorded in the header.
    pub max_label_distance: Distance,
    /// Meta-edge count implied by the meta-edges section.
    pub num_meta_edges: usize,
    /// Decoded variable-section counts, or `None` when a run is malformed.
    pub counts: Option<CompactCounts>,
}

impl CompactInspection {
    /// Whether the stored checksum matches the recomputed one.
    pub fn checksum_ok(&self) -> bool {
        self.stored_checksum == self.computed_checksum
    }

    /// A section's payload share of the whole file, in percent.
    pub fn section_percent(&self, record: &SectionRecord) -> f64 {
        if self.file_len == 0 {
            return 0.0;
        }
        record.len as f64 * 100.0 / self.file_len as f64
    }

    /// The byte length the wide (v2) profile would spend on the same
    /// section, derived from the decoded counts — `None` for sections
    /// whose count is unknown (malformed runs) or identical by layout.
    pub fn wide_section_len(&self, kind: SectionKind) -> Option<u64> {
        let n = self.num_vertices as u64;
        let r = self.num_landmarks as u64;
        let counts = self.counts;
        Some(match kind {
            SectionKind::Landmarks => r * 4,
            SectionKind::LabelOffsets | SectionKind::GraphOffsets => (n + 1) * 8,
            SectionKind::LabelEntries => counts?.label_entries as u64 * 4,
            SectionKind::GraphNeighbors => counts?.num_arcs as u64 * 4,
            SectionKind::MetaEdges => self.num_meta_edges as u64 * 12,
            SectionKind::MetaApsp => r * r * 4,
            SectionKind::DeltaOffsets => (self.num_meta_edges as u64 + 1) * 8,
            SectionKind::DeltaEdges => counts?.num_delta_edges as u64 * 8,
            SectionKind::Checksum => 8,
        })
    }
}

/// Inspects a v3 buffer: geometry must parse, but checksum and structural
/// validity are *reported*, not enforced, so `qbs inspect` can diagnose a
/// bit-rotted compact file. Takes the buffer by value like [`inspect_v2`].
pub fn inspect_v3(buf: ViewBuf) -> Result<CompactInspection> {
    let view = CompactView::parse_trusted(buf)?;
    let checksum_offset = view.section(SectionKind::Checksum).offset as usize;
    let computed_checksum = checksum64(&view.buf().as_slice()[..checksum_offset]);
    let counts = view.counts_checked();
    Ok(CompactInspection {
        num_vertices: view.num_vertices(),
        num_landmarks: view.num_landmarks(),
        file_len: view.file_len(),
        sections: view.sections().to_vec(),
        stored_checksum: view.checksum(),
        computed_checksum,
        dist_width: view.dist_width(),
        offset_width: view.offset_width(),
        max_label_distance: view.max_label_distance(),
        num_meta_edges: view.num_meta_edges(),
        counts,
    })
}

/// Parses and geometry-checks a section table (shared by the v2 and v3
/// layouts, which use the same record shape, order, alignment, bounds and
/// trailing-byte rules).
fn parse_section_table(data: &[u8]) -> Result<Vec<SectionRecord>> {
    let table_end = HEADER_LEN + SECTION_COUNT * SECTION_RECORD_LEN;
    if data.len() < table_end {
        return Err(QbsError::Corrupt(format!(
            "truncated section table: need {table_end} bytes, have {}",
            data.len()
        )));
    }
    let mut sections = Vec::with_capacity(SECTION_COUNT);
    let mut cursor = table_end as u64;
    for (slot, expected) in SectionKind::ALL.iter().enumerate() {
        let base = HEADER_LEN + slot * SECTION_RECORD_LEN;
        let raw_kind = le_u32(data, base);
        let kind = SectionKind::from_u32(raw_kind).ok_or_else(|| {
            QbsError::Corrupt(format!("unknown section kind {raw_kind} in slot {slot}"))
        })?;
        if kind != *expected {
            return Err(QbsError::Corrupt(format!(
                "section slot {slot} holds '{}', expected '{}'",
                kind.name(),
                expected.name()
            )));
        }
        let offset = le_u64(data, base + 8);
        let len = le_u64(data, base + 16);
        if !offset.is_multiple_of(SECTION_ALIGN as u64) {
            return Err(QbsError::Corrupt(format!(
                "section '{}' offset {offset} is not {SECTION_ALIGN}-byte aligned",
                kind.name()
            )));
        }
        if offset < cursor {
            return Err(QbsError::Corrupt(format!(
                "section '{}' at offset {offset} overlaps the previous section",
                kind.name()
            )));
        }
        let end = offset.checked_add(len).ok_or_else(|| {
            QbsError::Corrupt(format!("section '{}' length overflows", kind.name()))
        })?;
        if end > data.len() as u64 {
            return Err(QbsError::Corrupt(format!(
                "section '{}' [{offset}, {end}) exceeds the {}-byte buffer",
                kind.name(),
                data.len()
            )));
        }
        cursor = end;
        sections.push(SectionRecord { kind, offset, len });
    }
    if cursor != data.len() as u64 {
        return Err(QbsError::Corrupt(format!(
            "{} trailing bytes after the checksum section",
            data.len() as u64 - cursor
        )));
    }
    Ok(sections)
}

/// The all-ones value of a `width`-byte little-endian field — reserved as
/// the infinite-distance sentinel of the narrow APSP matrix.
#[inline]
fn width_sentinel(width: usize) -> Distance {
    match width {
        1 => 0xFF,
        2 => 0xFFFF,
        _ => u32::MAX,
    }
}

/// Appends `v` as an LEB128 varint (7 payload bits per byte, high bit =
/// continuation; at most 5 bytes for a u32).
fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint, panicking (bounds-checked index) on a
/// truncated run — the trusted-mode accessor contract.
#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut acc = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        acc |= ((byte & 0x7F) as u32) << (shift & 31);
        if byte & 0x80 == 0 {
            return acc;
        }
        shift += 7;
    }
}

/// Fallible LEB128 decode for the validation scans: `None` on truncation
/// or a run longer than a u32 can hold.
fn checked_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut acc = 0u32;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 32 || (shift == 28 && (byte & 0x7F) > 0x0F) {
            return None;
        }
        acc |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(acc);
        }
        shift += 7;
    }
}

/// Appends the low `width` bytes of a distance, little-endian.
#[inline]
fn write_dist(out: &mut Vec<u8>, d: Distance, width: usize) {
    out.extend_from_slice(&d.to_le_bytes()[..width]);
}

/// Reads a `width`-byte little-endian distance.
#[inline]
fn read_dist(bytes: &[u8], pos: &mut usize, width: usize) -> Distance {
    let mut raw = [0u8; 4];
    raw[..width].copy_from_slice(&bytes[*pos..*pos + width]);
    *pos += width;
    u32::from_le_bytes(raw)
}

/// Reads a `width`-byte little-endian CSR byte-offset (width 4 or 8).
#[inline]
fn read_offset(bytes: &[u8], pos: usize, width: usize) -> u64 {
    if width == 4 {
        le_u32(bytes, pos) as u64
    } else {
        le_u64(bytes, pos)
    }
}

/// Serialises row-end byte positions as a CSR offset array of `width`-byte
/// entries, with the leading 0.
fn encode_offsets(ends: &[u64], width: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity((ends.len() + 1) * width);
    out.extend_from_slice(&0u64.to_le_bytes()[..width]);
    for &end in ends {
        out.extend_from_slice(&end.to_le_bytes()[..width]);
    }
    out
}

fn malformed_row(what: &str, index: usize) -> QbsError {
    QbsError::Corrupt(format!(
        "malformed {what} run at row {index}: varint stream truncated or overlong"
    ))
}

#[inline]
fn le_u16(bytes: &[u8], pos: usize) -> u16 {
    u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("2 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QbsConfig;
    use qbs_graph::fixtures::figure4_graph;

    fn index() -> QbsIndex {
        QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        )
    }

    #[test]
    fn layout_constants_are_consistent() {
        assert_eq!(SectionKind::ALL.len(), SECTION_COUNT);
        assert_eq!(HEADER_LEN % SECTION_ALIGN, 0);
        assert_eq!(SECTION_RECORD_LEN % SECTION_ALIGN, 0);
        for (slot, kind) in SectionKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, slot + 1, "discriminants are 1-based slots");
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn write_parse_roundtrip_preserves_every_component() {
        let original = index();
        let bytes = write_v2(&original).expect("write");
        let view = IndexView::parse(ViewBuf::Heap(bytes)).expect("parse");
        assert_eq!(view.num_vertices(), 15);
        assert_eq!(view.num_landmarks(), 3);
        assert_eq!(view.landmarks().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(view.landmark(2), 3);
        assert_eq!(view.num_arcs(), original.graph().num_arcs());
        assert_eq!(view.num_meta_edges(), 3);
        assert_eq!(
            view.num_delta_edges(),
            original.meta_graph().delta_total_edges()
        );

        // Zero-copy accessors agree with the owned structures.
        for v in original.graph().vertices() {
            assert_eq!(
                view.graph_neighbors(v).collect::<Vec<_>>(),
                original.graph().neighbors(v)
            );
            assert_eq!(
                view.label_entries(v).collect::<Vec<_>>(),
                original.labelling().entries(v).collect::<Vec<_>>()
            );
            assert_eq!(view.label_len(v), original.labelling().label_len(v));
        }
        assert_eq!(
            view.meta_edges().collect::<Vec<_>>(),
            original.meta_graph().edges().to_vec()
        );

        // Materialisation rebuilds identical components.
        let (graph, landmarks, labelling, meta) = view.materialize();
        assert_eq!(&graph, original.graph());
        assert_eq!(landmarks, original.landmarks());
        assert_eq!(&labelling, original.labelling());
        assert_eq!(&meta, original.meta_graph());
    }

    #[test]
    fn sections_are_aligned_and_ordered() {
        let bytes = write_v2(&index()).expect("write");
        let total = bytes.len();
        let view = IndexView::parse(ViewBuf::Heap(bytes)).expect("parse");
        assert_eq!(view.file_len(), total);
        let mut prev_end = (HEADER_LEN + SECTION_COUNT * SECTION_RECORD_LEN) as u64;
        for record in view.sections() {
            assert_eq!(record.offset % SECTION_ALIGN as u64, 0);
            assert!(record.offset >= prev_end);
            prev_end = record.offset + record.len;
        }
        assert_eq!(prev_end, total as u64, "checksum is the final section");
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = write_v2(&index()).expect("write");
        // Flipping any byte must be caught by the checksum (or by header /
        // structural validation for bytes the checksum cannot protect).
        for pos in (0..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                IndexView::parse(ViewBuf::Heap(corrupt)).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = write_v2(&index()).expect("write");
        for len in [0, 4, HEADER_LEN - 1, HEADER_LEN, 100, bytes.len() - 1] {
            assert!(
                IndexView::parse(ViewBuf::Heap(bytes[..len].to_vec())).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    /// Recomputes the trailing checksum after a test mutated the payload,
    /// so only structural validation can reject the crafted buffer.
    fn reseal(bytes: &mut [u8]) {
        let cs_offset = bytes.len() - 8;
        let recomputed = checksum64(&bytes[..cs_offset]);
        bytes[cs_offset..].copy_from_slice(&recomputed.to_le_bytes());
    }

    #[test]
    fn unsorted_adjacency_and_duplicate_landmarks_are_rejected() {
        let valid = write_v2(&index()).expect("write");
        let view = IndexView::parse(ViewBuf::Heap(valid.clone())).expect("parse");

        // Swap two neighbours inside one adjacency list (vertex 1 of the
        // figure-4 graph has degree > 1): ids stay in range, CSR offsets
        // stay monotone, only the sortedness rule can catch it.
        let s = view.section(SectionKind::GraphNeighbors);
        let base = s.offset as usize;
        let mut crafted = valid.clone();
        let lo = view
            .section_bytes(SectionKind::GraphOffsets)
            .chunks_exact(8)
            .nth(1)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
            .unwrap();
        crafted.copy_within(base + lo * 4..base + lo * 4 + 4, base + lo * 4 + 4);
        crafted[base + lo * 4..base + lo * 4 + 4]
            .copy_from_slice(&valid[base + (lo + 1) * 4..base + (lo + 2) * 4]);
        reseal(&mut crafted);
        let err = IndexView::parse(ViewBuf::Heap(crafted)).unwrap_err();
        assert!(err.to_string().contains("not strictly sorted"), "{err}");

        // Duplicate a landmark id: the column map rebuild must never see it.
        let s = view.section(SectionKind::Landmarks);
        let base = s.offset as usize;
        let mut crafted = valid.clone();
        crafted.copy_within(base..base + 4, base + 4);
        reseal(&mut crafted);
        let err = IndexView::parse(ViewBuf::Heap(crafted)).unwrap_err();
        assert!(err.to_string().contains("appears twice"), "{err}");
    }

    #[test]
    fn trailing_bytes_after_the_checksum_are_rejected() {
        // Append junk past the checksum, patch file_size and recompute the
        // checksum so only the trailing-bytes rule can catch it.
        let mut bytes = write_v2(&index()).expect("write");
        let cs_offset = bytes.len() - 8;
        bytes.extend_from_slice(&[0xAB; 1024]);
        let new_len = bytes.len() as u64;
        bytes[32..40].copy_from_slice(&new_len.to_le_bytes());
        let recomputed = checksum64(&bytes[..cs_offset]);
        bytes[cs_offset..cs_offset + 8].copy_from_slice(&recomputed.to_le_bytes());
        let err = IndexView::parse(ViewBuf::Heap(bytes)).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn crafted_header_with_absurd_counts_is_corrupt_not_panic() {
        // A checksum-valid file whose header claims 2^61 vertices: the
        // expected section length computation must fail with Corrupt
        // instead of wrapping around (and later aborting in materialise).
        let mut bytes = write_v2(&index()).expect("write");
        bytes[16..24].copy_from_slice(&(1u64 << 61).to_le_bytes());
        let cs_offset = bytes.len() - 8;
        let recomputed = checksum64(&bytes[..cs_offset]);
        bytes[cs_offset..].copy_from_slice(&recomputed.to_le_bytes());
        let err = IndexView::parse(ViewBuf::Heap(bytes)).unwrap_err();
        assert!(matches!(err, QbsError::Corrupt(_)), "{err:?}");

        // Same with an oversized landmark count.
        let mut bytes = write_v2(&index()).expect("write");
        bytes[24..32].copy_from_slice(&(1u64 << 33).to_le_bytes());
        let cs_offset = bytes.len() - 8;
        let recomputed = checksum64(&bytes[..cs_offset]);
        bytes[cs_offset..].copy_from_slice(&recomputed.to_le_bytes());
        let err = IndexView::parse(ViewBuf::Heap(bytes)).unwrap_err();
        assert!(matches!(err, QbsError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn version_and_magic_errors_are_clear() {
        let bytes = write_v2(&index()).expect("write");
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 9;
        let err = IndexView::parse(ViewBuf::Heap(wrong_version)).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");

        let err = IndexView::parse(ViewBuf::Heap(b"qbs-index-v1\n{}".to_vec())).unwrap_err();
        assert!(err.to_string().contains("v1 JSON"), "{err}");

        let err = IndexView::parse(ViewBuf::Heap(vec![0xAB; 64])).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn checksum_is_deterministic_and_sensitive() {
        // Empty input hashes to the FNV-1a offset basis.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        // Word-wise FNV-1a: one round per 8-byte LE word.
        let one_word = 0xcbf2_9ce4_8422_2325u64 ^ u64::from_le_bytes(*b"abcdefgh");
        assert_eq!(
            checksum64(b"abcdefgh"),
            one_word.wrapping_mul(0x0000_0100_0000_01b3)
        );
        // The zero-padded tail behaves like the full word with zero bytes.
        assert_eq!(checksum64(b"abc"), checksum64(b"abc\0\0\0\0\0"));
        // Single-bit sensitivity at every position of a small buffer.
        let base = checksum64(b"0123456789abcdef");
        for pos in 0..16 {
            let mut flipped = *b"0123456789abcdef";
            flipped[pos] ^= 1;
            assert_ne!(checksum64(&flipped), base, "flip at byte {pos}");
        }
    }

    #[test]
    fn trusted_parse_defers_integrity_but_validates_geometry() {
        let bytes = write_v2(&index()).expect("write");

        // Valid buffer: geometry passes, integrity is deferred, verify() ok.
        let view = IndexView::parse_trusted(ViewBuf::Heap(bytes.clone())).expect("parse");
        assert!(!view.is_verified());
        view.verify().expect("valid file verifies");
        assert!(IndexView::parse(ViewBuf::Heap(bytes.clone()))
            .expect("full parse")
            .is_verified());

        // A payload bit flip sails through the trusted parse (that is the
        // documented trade) but is caught by the deferred verify().
        let view_ok = IndexView::parse_trusted(ViewBuf::Heap(bytes.clone())).expect("parse");
        let payload_pos = view_ok.section(SectionKind::GraphNeighbors).offset as usize;
        let mut corrupt = bytes.clone();
        corrupt[payload_pos] ^= 0x01;
        let trusted = IndexView::parse_trusted(ViewBuf::Heap(corrupt)).expect("geometry ok");
        assert!(trusted.verify().is_err(), "bit flip must fail verify()");

        // Geometry damage is still rejected eagerly, even in trusted mode.
        assert!(IndexView::parse_trusted(ViewBuf::Heap(bytes[..HEADER_LEN].to_vec())).is_err());
        let mut absurd = bytes.clone();
        absurd[16..24].copy_from_slice(&(1u64 << 61).to_le_bytes());
        assert!(IndexView::parse_trusted(ViewBuf::Heap(absurd)).is_err());
    }

    #[test]
    fn inspection_reports_checksum_status_without_refusing_corrupt_files() {
        let bytes = write_v2(&index()).expect("write");
        let report = inspect_v2(ViewBuf::Heap(bytes.clone())).expect("inspect");
        assert!(report.checksum_ok());
        assert_eq!(report.num_vertices, 15);
        assert_eq!(report.num_landmarks, 3);
        assert_eq!(report.file_len, bytes.len());
        assert_eq!(report.sections.len(), SECTION_COUNT);
        let total_pct: f64 = report
            .sections
            .iter()
            .map(|s| report.section_percent(s))
            .sum();
        assert!(
            total_pct > 50.0 && total_pct <= 100.0,
            "payload share {total_pct}"
        );

        // Corrupt one payload byte: inspection still works and reports the
        // mismatch instead of erroring out.
        let payload_pos = report.sections[4].offset as usize;
        let mut corrupt = bytes.clone();
        corrupt[payload_pos] ^= 0x20;
        let report = inspect_v2(ViewBuf::Heap(corrupt)).expect("inspect corrupt");
        assert!(!report.checksum_ok());
        assert_ne!(report.stored_checksum, report.computed_checksum);

        // Geometry-destroying corruption is still an error.
        assert!(inspect_v2(ViewBuf::Heap(bytes[..10].to_vec())).is_err());
    }

    #[test]
    fn viewbuf_basics() {
        let buf = ViewBuf::Heap(vec![1, 2, 3]);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        assert!(ViewBuf::Heap(Vec::new()).is_empty());
    }

    // -------------------------------------------------------------------
    // qbs-index-v3
    // -------------------------------------------------------------------

    #[test]
    fn varint_roundtrips_at_every_boundary() {
        for v in [
            0u32,
            1,
            127,
            128,
            129,
            16383,
            16384,
            1 << 21,
            u32::MAX - 1,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= 5);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
            let mut pos = 0;
            assert_eq!(checked_varint(&buf, &mut pos), Some(v));
        }
        // Truncated and overlong runs are rejected by the checked decoder.
        assert_eq!(checked_varint(&[0x80], &mut 0), None);
        assert_eq!(
            checked_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut 0),
            None
        );
        assert_eq!(
            checked_varint(&[0x80, 0x80, 0x80, 0x80, 0x7F], &mut 0),
            None
        );
    }

    #[test]
    fn v3_roundtrip_preserves_every_component_and_shrinks_the_file() {
        let original = index();
        let wide = write_v2(&original).expect("write v2");
        let bytes = write_v3(&original).expect("write v3");
        assert!(
            bytes.len() < wide.len(),
            "compact {} >= wide {}",
            bytes.len(),
            wide.len()
        );
        let view = CompactView::parse(ViewBuf::Heap(bytes)).expect("parse");
        assert_eq!(view.num_vertices(), 15);
        assert_eq!(view.num_landmarks(), 3);
        assert_eq!(view.dist_width(), 1, "figure-4 distances fit u8");
        assert_eq!(view.offset_width(), 4);
        assert_eq!(view.landmarks().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(view.landmark(2), 3);
        assert_eq!(view.num_meta_edges(), 3);

        for v in original.graph().vertices() {
            assert_eq!(
                view.graph_neighbors(v).collect::<Vec<_>>(),
                original.graph().neighbors(v)
            );
            assert_eq!(
                view.label_entries(v).collect::<Vec<_>>(),
                original.labelling().entries(v).collect::<Vec<_>>()
            );
            assert_eq!(view.label_len(v), original.labelling().label_len(v));
        }
        assert_eq!(
            view.meta_edges().collect::<Vec<_>>(),
            original.meta_graph().edges().to_vec()
        );
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    view.meta_distance(i, j),
                    original.meta_graph().distance(i, j)
                );
            }
        }
        for k in 0..3 {
            assert_eq!(
                view.delta_edges(k).collect::<Vec<_>>(),
                original.meta_graph().delta_edges(k)
            );
        }

        let (graph, landmarks, labelling, meta) = view.materialize();
        assert_eq!(&graph, original.graph());
        assert_eq!(landmarks, original.landmarks());
        assert_eq!(&labelling, original.labelling());
        assert_eq!(&meta, original.meta_graph());
    }

    #[test]
    fn v3_records_the_true_max_label_distance() {
        let original = index();
        let bytes = write_v3(&original).expect("write");
        let view = CompactView::parse(ViewBuf::Heap(bytes)).expect("parse");
        let expected = original
            .graph()
            .vertices()
            .flat_map(|v| {
                original
                    .labelling()
                    .entries(v)
                    .map(|(_, d)| d)
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap();
        assert_eq!(view.max_label_distance(), expected);
    }

    #[test]
    fn v3_label_distance_above_recorded_max_is_corrupt() {
        // Shrink the recorded maximum below a stored distance and reseal:
        // only the tripwire can reject the file.
        let bytes = write_v3(&index()).expect("write");
        let view = CompactView::parse(ViewBuf::Heap(bytes.clone())).expect("parse");
        assert!(view.max_label_distance() > 0, "fixture has nonzero labels");
        let mut crafted = bytes.clone();
        crafted[44..48].copy_from_slice(&0u32.to_le_bytes());
        reseal(&mut crafted);
        let err = CompactView::parse(ViewBuf::Heap(crafted)).unwrap_err();
        assert!(
            err.to_string()
                .contains("exceeds the header's recorded maximum"),
            "{err}"
        );
    }

    #[test]
    fn v3_invalid_width_profile_is_corrupt() {
        let bytes = write_v3(&index()).expect("write");
        for (pos, bad) in [(40usize, 3u8), (41, 3), (41, 0), (42, 5), (42, 0)] {
            let mut crafted = bytes.clone();
            crafted[pos] = bad;
            reseal(&mut crafted);
            let err = CompactView::parse(ViewBuf::Heap(crafted)).unwrap_err();
            assert!(matches!(err, QbsError::Corrupt(_)), "{err:?}");
        }
        // A declared max label distance that cannot fit the declared
        // distance width is rejected at geometry time.
        let mut crafted = bytes.clone();
        crafted[44..48].copy_from_slice(&0xFFu32.to_le_bytes());
        reseal(&mut crafted);
        let err = CompactView::parse_trusted(ViewBuf::Heap(crafted)).unwrap_err();
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn v3_cross_version_magic_errors_are_clear() {
        let v2_bytes = write_v2(&index()).expect("write v2");
        let v3_bytes = write_v3(&index()).expect("write v3");

        let err = CompactView::parse(ViewBuf::Heap(v2_bytes.clone())).unwrap_err();
        assert!(err.to_string().contains("qbs-index-v2 wide"), "{err}");
        let err = IndexView::parse(ViewBuf::Heap(v3_bytes.clone())).unwrap_err();
        assert!(err.to_string().contains("qbs-index-v3 compact"), "{err}");
        let err = CompactView::parse(ViewBuf::Heap(b"qbs-index-v1\n{}".to_vec())).unwrap_err();
        assert!(err.to_string().contains("qbs-index-v1 JSON"), "{err}");

        let mut wrong_version = v3_bytes.clone();
        wrong_version[8] = 9;
        let err = CompactView::parse(ViewBuf::Heap(wrong_version)).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");

        let err = CompactView::parse(ViewBuf::Heap(vec![0xAB; 64])).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn v3_trusted_parse_defers_integrity_but_validates_geometry() {
        let bytes = write_v3(&index()).expect("write");
        let view = CompactView::parse_trusted(ViewBuf::Heap(bytes.clone())).expect("parse");
        assert!(!view.is_verified());
        view.verify().expect("valid file verifies");
        assert!(CompactView::parse(ViewBuf::Heap(bytes.clone()))
            .expect("full parse")
            .is_verified());

        let payload_pos = view.section(SectionKind::GraphNeighbors).offset as usize;
        let mut corrupt = bytes.clone();
        corrupt[payload_pos] ^= 0x01;
        let trusted = CompactView::parse_trusted(ViewBuf::Heap(corrupt)).expect("geometry ok");
        assert!(trusted.verify().is_err(), "bit flip must fail verify()");

        assert!(CompactView::parse_trusted(ViewBuf::Heap(bytes[..HEADER_LEN].to_vec())).is_err());
        let mut absurd = bytes.clone();
        absurd[16..24].copy_from_slice(&(1u64 << 61).to_le_bytes());
        assert!(CompactView::parse_trusted(ViewBuf::Heap(absurd)).is_err());
    }

    #[test]
    fn v3_inspection_reports_widths_counts_and_wide_equivalents() {
        let original = index();
        let bytes = write_v3(&original).expect("write");
        let report = inspect_v3(ViewBuf::Heap(bytes.clone())).expect("inspect");
        assert!(report.checksum_ok());
        assert_eq!(report.num_vertices, 15);
        assert_eq!(report.num_landmarks, 3);
        assert_eq!(report.dist_width, 1);
        assert_eq!(report.offset_width, 4);
        assert_eq!(report.num_meta_edges, 3);
        let counts = report.counts.expect("valid file decodes");
        assert_eq!(counts.num_arcs, original.graph().num_arcs());
        assert_eq!(counts.label_entries, original.labelling().total_entries());
        assert_eq!(
            counts.num_delta_edges,
            original.meta_graph().delta_total_edges()
        );
        // Every wide-equivalent length matches what write_v2 produced.
        let wide = write_v2(&original).expect("write v2");
        let wide_view = IndexView::parse(ViewBuf::Heap(wide)).expect("parse v2");
        for record in wide_view.sections() {
            assert_eq!(
                report.wide_section_len(record.kind),
                Some(record.len),
                "wide equivalent of '{}'",
                record.kind.name()
            );
        }

        // A corrupt payload still inspects, reporting the mismatch.
        let payload_pos = report.sections[4].offset as usize;
        let mut corrupt = bytes.clone();
        corrupt[payload_pos] ^= 0x20;
        let report = inspect_v3(ViewBuf::Heap(corrupt)).expect("inspect corrupt");
        assert!(!report.checksum_ok());
    }
}
