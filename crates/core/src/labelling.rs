//! The QbS labelling scheme (Definition 4.2) and its construction
//! (Algorithm 2).
//!
//! For a landmark set `R`, one BFS per landmark builds simultaneously:
//!
//! * the **path labelling** `L`: for every non-landmark vertex `u`, the
//!   entry `(r, d_G(u, r))` is kept iff at least one shortest path between
//!   `u` and `r` contains no other landmark;
//! * the **meta-graph** edge set: `(r, r')` with weight `d_G(r, r')` iff at
//!   least one shortest path between them contains no other landmark.
//!
//! The BFS follows Algorithm 2 exactly: two per-level queues are kept — `QL`
//! for vertices whose discovery path avoids other landmarks (these receive
//! labels and keep expanding) and `QN` for vertices first reached through
//! another landmark (these are only traversed, never labelled). Processing
//! `QL` before `QN` at every level guarantees that a vertex reachable both
//! ways is classified as labelled, which is what Definition 4.2 requires.
//!
//! The labelling is stored densely: one distance slot per (vertex, landmark)
//! pair, mirroring the paper's "`|R| * 8` bits per vertex" accounting while
//! using 16-bit slots so that graphs of diameter above 255 remain
//! representable.

use serde::{Deserialize, Serialize};

use qbs_graph::{Distance, Graph, VertexId};

/// Sentinel meaning "no label entry for this (vertex, landmark) pair".
pub const NO_LABEL: u16 = u16::MAX;

/// Dense per-vertex path labelling.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathLabelling {
    num_vertices: usize,
    num_landmarks: usize,
    /// Row-major `[vertex][landmark]` distance matrix with [`NO_LABEL`] holes.
    dist: Vec<u16>,
}

impl PathLabelling {
    /// Creates an empty labelling (all entries absent).
    pub fn new(num_vertices: usize, num_landmarks: usize) -> Self {
        PathLabelling {
            num_vertices,
            num_landmarks,
            dist: vec![NO_LABEL; num_vertices * num_landmarks],
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of landmark columns.
    pub fn num_landmarks(&self) -> usize {
        self.num_landmarks
    }

    /// Sets the label entry of `vertex` for landmark column `landmark_idx`.
    pub fn set(&mut self, vertex: VertexId, landmark_idx: usize, distance: u16) {
        debug_assert!(
            distance != NO_LABEL,
            "distance saturates below the sentinel"
        );
        self.dist[vertex as usize * self.num_landmarks + landmark_idx] = distance;
    }

    /// The label entry of `vertex` for landmark column `landmark_idx`.
    #[inline]
    pub fn get(&self, vertex: VertexId, landmark_idx: usize) -> Option<Distance> {
        let d = self.dist[vertex as usize * self.num_landmarks + landmark_idx];
        if d == NO_LABEL {
            None
        } else {
            Some(d as Distance)
        }
    }

    /// Iterator over the label entries `(landmark_idx, distance)` of a vertex.
    pub fn entries(&self, vertex: VertexId) -> impl Iterator<Item = (usize, Distance)> + '_ {
        let base = vertex as usize * self.num_landmarks;
        self.dist[base..base + self.num_landmarks]
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != NO_LABEL)
            .map(|(i, &d)| (i, d as Distance))
    }

    /// Number of label entries of a vertex.
    pub fn label_len(&self, vertex: VertexId) -> usize {
        self.entries(vertex).count()
    }

    /// Total number of label entries, `size(L) = Σ_v |L(v)|`.
    pub fn total_entries(&self) -> usize {
        self.dist.iter().filter(|&&d| d != NO_LABEL).count()
    }

    /// Labelling size in bytes under the paper's accounting (§6.1/§6.4.2):
    /// `|R|` bytes (8 bits per landmark) for every vertex.
    pub fn paper_size_bytes(&self) -> usize {
        self.num_vertices * self.num_landmarks
    }

    /// Actual in-memory size of the dense distance matrix.
    pub fn memory_size_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<u16>()
    }

    /// Installs one landmark column produced by [`landmark_bfs`].
    pub(crate) fn install_column(&mut self, landmark_idx: usize, column: &[u16]) {
        debug_assert_eq!(column.len(), self.num_vertices);
        for (v, &d) in column.iter().enumerate() {
            if d != NO_LABEL {
                self.dist[v * self.num_landmarks + landmark_idx] = d;
            }
        }
    }
}

/// The product of Algorithm 2: the labelling plus the raw meta-graph edges.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabellingScheme {
    /// The landmark set `R`, in column order.
    pub landmarks: Vec<VertexId>,
    /// The path labelling `L`.
    pub labelling: PathLabelling,
    /// Meta-graph edges `(i, j, σ)` over landmark *indices*, deduplicated and
    /// stored with `i < j`.
    pub meta_edges: Vec<(usize, usize, Distance)>,
}

/// The outcome of the BFS rooted at one landmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LandmarkBfs {
    /// Column of labelled distances (index = vertex id, [`NO_LABEL`] holes).
    pub column: Vec<u16>,
    /// Meta edges `(other_landmark_idx, σ)` discovered from this root.
    pub meta_edges: Vec<(usize, Distance)>,
}

/// Runs the two-queue BFS of Algorithm 2 from the landmark with column index
/// `root_idx`.
///
/// `landmark_column[v]` must map every vertex to its landmark column index,
/// or `u32::MAX` for non-landmarks.
pub fn landmark_bfs(
    graph: &Graph,
    landmarks: &[VertexId],
    landmark_column: &[u32],
    root_idx: usize,
) -> LandmarkBfs {
    let n = graph.num_vertices();
    let root = landmarks[root_idx];
    let mut column = vec![NO_LABEL; n];
    let mut meta_edges = Vec::new();
    let mut visited = vec![false; n];

    // Current-level queues: labelled (QL) and non-labelled (QN).
    let mut ql: Vec<VertexId> = vec![root];
    let mut qn: Vec<VertexId> = Vec::new();
    visited[root as usize] = true;

    let mut level: Distance = 0;
    while !ql.is_empty() || !qn.is_empty() {
        let mut next_ql: Vec<VertexId> = Vec::new();
        let mut next_qn: Vec<VertexId> = Vec::new();
        let next_depth = level + 1;

        // Labelled queue first (Algorithm 2, lines 8-17): its discoveries
        // reach the new vertex along a path with no other landmark.
        for &u in &ql {
            for &v in graph.neighbors(u) {
                if visited[v as usize] {
                    continue;
                }
                visited[v as usize] = true;
                let v_col = landmark_column[v as usize];
                if v_col != u32::MAX {
                    // A landmark: record a meta edge, do not label.
                    meta_edges.push((v_col as usize, next_depth));
                    next_qn.push(v);
                } else {
                    column[v as usize] = saturate(next_depth);
                    next_ql.push(v);
                }
            }
        }
        // Non-labelled queue second (lines 18-21): discoveries only extend
        // the traversal, they are never labelled.
        for &u in &qn {
            for &v in graph.neighbors(u) {
                if visited[v as usize] {
                    continue;
                }
                visited[v as usize] = true;
                next_qn.push(v);
            }
        }

        ql = next_ql;
        qn = next_qn;
        level = next_depth;
    }

    LandmarkBfs { column, meta_edges }
}

/// Builds the complete labelling scheme sequentially (one landmark at a
/// time). See [`crate::parallel::build_parallel`] for the multi-threaded
/// variant enabled by Lemma 5.2.
pub fn build_sequential(graph: &Graph, landmarks: &[VertexId]) -> LabellingScheme {
    let columns: Vec<LandmarkBfs> = {
        let landmark_column = landmark_column_map(graph, landmarks);
        (0..landmarks.len())
            .map(|i| landmark_bfs(graph, landmarks, &landmark_column, i))
            .collect()
    };
    assemble(graph, landmarks, columns)
}

/// Maps every vertex to its landmark column index (`u32::MAX` for
/// non-landmarks).
pub(crate) fn landmark_column_map(graph: &Graph, landmarks: &[VertexId]) -> Vec<u32> {
    let mut map = vec![u32::MAX; graph.num_vertices()];
    for (i, &r) in landmarks.iter().enumerate() {
        map[r as usize] = i as u32;
    }
    map
}

/// Combines per-landmark BFS results into the final scheme.
pub(crate) fn assemble(
    graph: &Graph,
    landmarks: &[VertexId],
    columns: Vec<LandmarkBfs>,
) -> LabellingScheme {
    let mut labelling = PathLabelling::new(graph.num_vertices(), landmarks.len());
    let mut meta: std::collections::BTreeMap<(usize, usize), Distance> =
        std::collections::BTreeMap::new();
    for (i, bfs) in columns.into_iter().enumerate() {
        labelling.install_column(i, &bfs.column);
        for (j, sigma) in bfs.meta_edges {
            let key = (i.min(j), i.max(j));
            let entry = meta.entry(key).or_insert(sigma);
            debug_assert_eq!(*entry, sigma, "meta edge weight must agree from both roots");
            *entry = (*entry).min(sigma);
        }
    }
    LabellingScheme {
        landmarks: landmarks.to_vec(),
        labelling,
        meta_edges: meta.into_iter().map(|((i, j), s)| (i, j, s)).collect(),
    }
}

fn saturate(d: Distance) -> u16 {
    if d >= NO_LABEL as Distance {
        NO_LABEL - 1
    } else {
        d as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::fixtures::{figure4_graph, figure4_landmarks};
    use qbs_graph::GraphBuilder;

    fn figure4_scheme() -> LabellingScheme {
        build_sequential(&figure4_graph(), &figure4_landmarks())
    }

    #[test]
    fn labels_match_figure_4c_exactly() {
        let scheme = figure4_scheme();
        let l = &scheme.labelling;
        // Expected path labelling of Figure 4(c): (vertex, landmark, dist).
        let expected: &[(u32, usize, u32)] = &[
            (4, 0, 1),
            (4, 2, 1),
            (5, 0, 1),
            (5, 2, 3),
            (6, 0, 1),
            (7, 0, 2),
            (7, 1, 2),
            (8, 1, 1),
            (9, 1, 1),
            (10, 1, 2),
            (10, 2, 3),
            (11, 1, 3),
            (11, 2, 2),
            (12, 2, 1),
            (13, 0, 3),
            (13, 2, 1),
            (14, 0, 2),
            (14, 2, 2),
        ];
        let mut total = 0;
        for &(v, r, d) in expected {
            assert_eq!(l.get(v, r), Some(d), "L({v}) entry for landmark column {r}");
            total += 1;
        }
        // No extra entries beyond the figure: vertex 0 is isolated and the
        // landmarks themselves carry no labels.
        assert_eq!(l.total_entries(), total);
        for (v, r) in [
            (4u32, 1usize),
            (6, 1),
            (6, 2),
            (8, 0),
            (9, 0),
            (12, 0),
            (12, 1),
        ] {
            assert_eq!(
                l.get(v, r),
                None,
                "unexpected label for vertex {v}, column {r}"
            );
        }
    }

    #[test]
    fn meta_graph_matches_figure_4b() {
        let scheme = figure4_scheme();
        // Edges (1,2) weight 1, (2,3) weight 1, (1,3) weight 2 — in column
        // indices: (0,1,1), (1,2,1), (0,2,2).
        assert_eq!(scheme.meta_edges, vec![(0, 1, 1), (0, 2, 2), (1, 2, 1)]);
    }

    #[test]
    fn landmarks_never_receive_labels() {
        let scheme = figure4_scheme();
        for (i, &r) in scheme.landmarks.iter().enumerate() {
            assert_eq!(
                scheme.labelling.label_len(r),
                0,
                "landmark {r} (column {i})"
            );
        }
    }

    #[test]
    fn labelled_distances_are_exact_graph_distances() {
        let g = figure4_graph();
        let scheme = build_sequential(&g, &figure4_landmarks());
        for v in g.vertices() {
            for (i, d) in scheme.labelling.entries(v) {
                let r = scheme.landmarks[i];
                let exact = qbs_graph::traversal::bfs_distances(&g, r)[v as usize];
                assert_eq!(d, exact, "label of {v} towards landmark {r}");
            }
        }
    }

    #[test]
    fn labels_exist_exactly_when_a_landmark_free_shortest_path_exists() {
        // Definition 4.2 verified against brute force on the figure graph.
        let g = figure4_graph();
        let landmarks = figure4_landmarks();
        let scheme = build_sequential(&g, &landmarks);
        for v in g.vertices() {
            if landmarks.contains(&v) {
                continue;
            }
            for (i, &r) in landmarks.iter().enumerate() {
                let exact = qbs_graph::traversal::bfs_distances(&g, r)[v as usize];
                if exact == qbs_graph::INFINITE_DISTANCE {
                    assert_eq!(scheme.labelling.get(v, i), None);
                    continue;
                }
                // Brute force: does a shortest path avoiding the *other*
                // landmarks exist? Remove them and compare distances.
                let others = qbs_graph::VertexFilter::from_vertices(
                    g.num_vertices(),
                    landmarks.iter().copied().filter(|&x| x != r),
                );
                let view = qbs_graph::FilteredGraph::new(&g, &others);
                let avoid = qbs_graph::traversal::bfs_distances(&view, r)[v as usize];
                let expected = if avoid == exact { Some(exact) } else { None };
                assert_eq!(
                    scheme.labelling.get(v, i),
                    expected,
                    "vertex {v}, landmark {r}"
                );
            }
        }
    }

    #[test]
    fn dense_storage_accounting() {
        let scheme = figure4_scheme();
        let l = &scheme.labelling;
        assert_eq!(l.num_vertices(), 15);
        assert_eq!(l.num_landmarks(), 3);
        assert_eq!(l.paper_size_bytes(), 15 * 3);
        assert_eq!(l.memory_size_bytes(), 15 * 3 * 2);
        assert_eq!(l.label_len(4), 2);
        assert_eq!(l.label_len(0), 0);
    }

    #[test]
    fn isolated_vertices_and_unreachable_components_get_no_labels() {
        // Component {0,1,2} holds the landmark; component {3,4} is separate.
        let mut b = GraphBuilder::from_edges([(0u32, 1), (1, 2), (3, 4)]);
        b.reserve_vertices(5);
        let g = b.build();
        let scheme = build_sequential(&g, &[1]);
        assert_eq!(scheme.labelling.get(0, 0), Some(1));
        assert_eq!(scheme.labelling.get(2, 0), Some(1));
        assert_eq!(scheme.labelling.get(3, 0), None);
        assert_eq!(scheme.labelling.get(4, 0), None);
        assert!(scheme.meta_edges.is_empty());
    }

    #[test]
    fn adjacent_landmarks_form_weight_one_meta_edges() {
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 3)]).build();
        let scheme = build_sequential(&g, &[0, 1, 3]);
        assert_eq!(scheme.meta_edges, vec![(0, 1, 1), (1, 2, 2)]);
        // Vertex 2 is labelled towards landmarks 1 and 3 but not 0 (every
        // shortest path 0-2 passes landmark 1).
        assert_eq!(scheme.labelling.get(2, 0), None);
        assert_eq!(scheme.labelling.get(2, 1), Some(1));
        assert_eq!(scheme.labelling.get(2, 2), Some(1));
    }
}
