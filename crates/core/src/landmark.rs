//! Landmark selection strategies.
//!
//! QbS uses a small landmark set `R` (|R| = 20 by default) and the paper
//! selects the vertices of largest degree (§6.1), for two reasons it spells
//! out: removing high-degree vertices sparsifies the graph the most, and
//! distances through high-degree landmarks approximate true distances well.
//! The alternative strategies here exist for the ablation experiments and
//! for the "study landmark selection strategies" future work the paper
//! names in §8.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use qbs_graph::traversal::bfs_distances;
use qbs_graph::{Graph, VertexId, INFINITE_DISTANCE};

/// How to pick the landmark set.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LandmarkStrategy {
    /// The `count` vertices of highest degree — the paper's default.
    HighestDegree {
        /// Number of landmarks, `|R|`.
        count: usize,
    },
    /// `count` vertices chosen uniformly at random (ablation baseline).
    Random {
        /// Number of landmarks, `|R|`.
        count: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Farthest-first traversal seeded at the highest-degree vertex: each
    /// subsequent landmark maximises its BFS distance to the landmarks
    /// chosen so far (ties broken by higher degree). Spreads the landmarks
    /// over the graph instead of clustering them in the core — one of the
    /// "landmark selection strategies" the paper defers to future work (§8).
    DegreeSpread {
        /// Number of landmarks, `|R|`.
        count: usize,
    },
    /// An explicit landmark set (used by tests that mirror the paper's
    /// worked example, where `R = {1, 2, 3}`).
    Explicit(Vec<VertexId>),
}

impl Default for LandmarkStrategy {
    /// The paper's default: the 20 highest-degree vertices.
    fn default() -> Self {
        LandmarkStrategy::HighestDegree { count: 20 }
    }
}

impl LandmarkStrategy {
    /// Number of landmarks the strategy will produce on a graph with at
    /// least that many vertices.
    pub fn requested_count(&self) -> usize {
        match self {
            LandmarkStrategy::HighestDegree { count }
            | LandmarkStrategy::Random { count, .. }
            | LandmarkStrategy::DegreeSpread { count } => *count,
            LandmarkStrategy::Explicit(set) => set.len(),
        }
    }

    /// Selects the landmark set on `graph`.
    ///
    /// The returned vector is deduplicated, restricted to existing vertices
    /// and never larger than `|V|`; its order is deterministic.
    pub fn select(&self, graph: &Graph) -> Vec<VertexId> {
        let n = graph.num_vertices();
        let mut landmarks = match self {
            LandmarkStrategy::HighestDegree { count } => graph.top_k_by_degree((*count).min(n)),
            LandmarkStrategy::Random { count, seed } => {
                let mut all: Vec<VertexId> = (0..n as VertexId).collect();
                let mut rng = rand::rngs::SmallRng::seed_from_u64(*seed);
                all.shuffle(&mut rng);
                all.truncate((*count).min(n));
                all
            }
            LandmarkStrategy::DegreeSpread { count } => degree_spread(graph, (*count).min(n)),
            LandmarkStrategy::Explicit(set) => {
                set.iter().copied().filter(|&v| (v as usize) < n).collect()
            }
        };
        // Deterministic canonical form: dedup while keeping first occurrence.
        let mut seen = std::collections::HashSet::with_capacity(landmarks.len());
        landmarks.retain(|&v| seen.insert(v));
        landmarks
    }
}

/// Farthest-first traversal: start at the highest-degree vertex, then
/// repeatedly add the vertex maximising the distance to the current landmark
/// set (degree breaks ties, unreachable vertices are preferred last only
/// when everything reachable is already a landmark).
fn degree_spread(graph: &Graph, count: usize) -> Vec<VertexId> {
    if count == 0 || graph.is_empty() {
        return Vec::new();
    }
    let first = graph.top_k_by_degree(1)[0];
    let mut landmarks = vec![first];
    // min_dist[v] = distance from v to the nearest chosen landmark.
    let mut min_dist = bfs_distances(graph, first);
    while landmarks.len() < count {
        let next = graph
            .vertices()
            .filter(|v| !landmarks.contains(v))
            .max_by_key(|&v| {
                let d = min_dist[v as usize];
                // Vertices in components with no landmark yet rank highest so
                // every component is covered early; otherwise farther is
                // better, then higher degree, then smaller id.
                let reach_key = if d == INFINITE_DISTANCE {
                    u64::from(u32::MAX)
                } else {
                    d as u64
                };
                (reach_key, graph.degree(v), std::cmp::Reverse(v))
            });
        let Some(next) = next else { break };
        landmarks.push(next);
        let dist = bfs_distances(graph, next);
        for (v, &d) in dist.iter().enumerate() {
            if d < min_dist[v] {
                min_dist[v] = d;
            }
        }
    }
    landmarks
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::fixtures::figure4_graph;
    use qbs_graph::GraphBuilder;

    #[test]
    fn default_is_20_highest_degree() {
        assert_eq!(
            LandmarkStrategy::default(),
            LandmarkStrategy::HighestDegree { count: 20 }
        );
        assert_eq!(LandmarkStrategy::default().requested_count(), 20);
    }

    #[test]
    fn highest_degree_picks_hubs() {
        let g = figure4_graph();
        let lm = LandmarkStrategy::HighestDegree { count: 3 }.select(&g);
        assert_eq!(lm.len(), 3);
        // Vertices 1, 2, 3 all have degree 4, the maximum in the graph.
        let mut sorted = lm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn count_is_clamped_to_vertex_count() {
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2)]).build();
        let lm = LandmarkStrategy::HighestDegree { count: 50 }.select(&g);
        assert_eq!(lm.len(), 3);
        let lm = LandmarkStrategy::Random { count: 50, seed: 1 }.select(&g);
        assert_eq!(lm.len(), 3);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = figure4_graph();
        let a = LandmarkStrategy::Random { count: 5, seed: 3 }.select(&g);
        let b = LandmarkStrategy::Random { count: 5, seed: 3 }.select(&g);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let c = LandmarkStrategy::Random { count: 5, seed: 4 }.select(&g);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_spread_starts_at_the_hub_and_spreads_out() {
        let g = figure4_graph();
        let lm = LandmarkStrategy::DegreeSpread { count: 3 }.select(&g);
        assert_eq!(lm.len(), 3);
        // Starts at one of the degree-4 hubs (1, 2 or 3 — smallest id wins).
        assert_eq!(lm[0], 1);
        // Later picks are far from the first (the isolated vertex 0 and the
        // periphery are the farthest points).
        assert!(
            lm[1] != 2 || lm[2] != 3,
            "spread selection should not just take the hubs: {lm:?}"
        );
        // Deterministic.
        assert_eq!(lm, LandmarkStrategy::DegreeSpread { count: 3 }.select(&g));
        assert_eq!(
            LandmarkStrategy::DegreeSpread { count: 3 }.requested_count(),
            3
        );
    }

    #[test]
    fn degree_spread_covers_all_components_eventually() {
        // Two components; the second must receive a landmark once the first
        // is covered.
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2), (3, 4)]).build();
        let lm = LandmarkStrategy::DegreeSpread { count: 2 }.select(&g);
        assert_eq!(lm.len(), 2);
        let comps = qbs_graph::components::connected_components(&g);
        assert_ne!(comps.labels[lm[0] as usize], comps.labels[lm[1] as usize]);
    }

    #[test]
    fn degree_spread_handles_degenerate_inputs() {
        let empty = GraphBuilder::new().build();
        assert!(LandmarkStrategy::DegreeSpread { count: 5 }
            .select(&empty)
            .is_empty());
        let single = GraphBuilder::with_capacity(1, 0).build();
        assert_eq!(
            LandmarkStrategy::DegreeSpread { count: 5 }.select(&single),
            vec![0]
        );
    }

    #[test]
    fn explicit_filters_invalid_and_duplicate_vertices() {
        let g = figure4_graph();
        let lm = LandmarkStrategy::Explicit(vec![1, 2, 2, 99]).select(&g);
        assert_eq!(lm, vec![1, 2]);
        assert_eq!(
            LandmarkStrategy::Explicit(vec![1, 2, 3]).requested_count(),
            3
        );
    }
}
