//! # qbs-core
//!
//! **Query-by-Sketch (QbS)**: scalable shortest-path-graph queries, the
//! primary contribution of the paper *"Query-by-Sketch: Scaling Shortest
//! Path Graph Queries on Very Large Networks"* (SIGMOD 2021).
//!
//! Given an unweighted graph `G` and a query `SPG(u, v)`, QbS returns the
//! *shortest path graph*: the subgraph containing exactly all shortest paths
//! between `u` and `v`. It does so in three phases:
//!
//! 1. **Labelling** (offline, [`labelling`], [`parallel`]) — pick a small
//!    set of high-degree landmarks `R` and run one pruned BFS per landmark
//!    (Algorithm 2) to build a *labelling scheme*: a meta-graph over the
//!    landmarks plus a compact per-vertex path labelling. The scheme is
//!    deterministic w.r.t. `R` (Lemma 5.2), so the BFSs are embarrassingly
//!    parallel.
//! 2. **Sketching** (online, [`sketch`]) — combine the two query labels and
//!    the meta-graph into a *sketch*: an upper bound `d⊤` on the distance
//!    plus the landmark paths achieving it (Algorithm 3, `O(|R|²)`).
//! 3. **Guided searching** (online, [`search`]) — run a sketch-bounded
//!    bidirectional BFS on the sparsified graph `G[V \ R]`, then a reverse
//!    search and/or a recover search to materialise the answer (Algorithm 4,
//!    Eq. 5).
//!
//! The façade type is [`QbsIndex`]:
//!
//! ```
//! use qbs_core::{QbsConfig, QbsIndex};
//! use qbs_graph::fixtures::figure4_graph;
//!
//! // Build the index with the paper's running example: landmarks {1, 2, 3}.
//! let graph = figure4_graph();
//! let index = QbsIndex::build(graph, QbsConfig::with_explicit_landmarks(vec![1, 2, 3]));
//!
//! // Figure 6(f): SPG(6, 11) has distance 5 and 13 edges.
//! let answer = index.query(6, 11).unwrap();
//! assert_eq!(answer.distance(), 5);
//! assert_eq!(answer.num_edges(), 13);
//! ```

// `unsafe` is denied crate-wide; the single exception is the tiny
// `mmap` shim (raw `mmap(2)`/`munmap(2)` bindings, reviewed in isolation),
// which opts back in with a module-level `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coverage;
pub mod engine;
pub mod error;
pub mod format;
pub mod labelling;
pub mod landmark;
pub mod meta_graph;
pub mod mmap;
pub mod obs;
pub mod parallel;
pub mod plan;
pub mod query;
pub mod request;
pub mod search;
pub mod serialize;
pub mod session;
pub mod sketch;
pub mod stats;
pub mod store;
pub mod verify;
pub mod wire;
pub mod workspace;

pub use cache::{AnswerCache, CacheConfig, CacheStats};
pub use engine::QueryEngine;
pub use error::QbsError;
pub use format::{CompactView, IndexView, ViewBuf};
pub use labelling::{LabellingScheme, PathLabelling, NO_LABEL};
pub use landmark::LandmarkStrategy;
pub use meta_graph::MetaGraph;
pub use obs::{
    HistogramSnapshot, LatencyHistogram, Metrics, MetricsSnapshot, Stage, StageNanos, TraceId,
};
pub use plan::PlannerStats;
pub use query::{distance_on, query_on, sketch_on, QbsConfig, QbsIndex, QueryAnswer};
pub use request::{
    execute_cached_on, execute_on, QueryMode, QueryOptions, QueryOutcome, QueryRequest,
    RequestError,
};
pub use search::SearchStats;
pub use serialize::{IndexProfile, MapMode};
pub use session::{EngineStats, Qbs, QbsBackend};
pub use sketch::{Sketch, SketchBounds};
pub use stats::IndexStats;
pub use store::{CompactStore, IndexStore, ViewStore};
pub use wire::{ReplicaStats, RequestId, RouterStats, Wire, WireError};
pub use workspace::QueryWorkspace;

/// Result alias for fallible QbS operations.
pub type Result<T> = std::result::Result<T, QbsError>;
