//! The meta-graph `M = (R, E_R, σ)` (Definition 4.1) plus the
//! precomputations QbS performs over it:
//!
//! * all-pairs shortest-path distances `d_M` between landmarks (used by
//!   Algorithm 3 to evaluate Eq. 3 in `O(|R|²)` instead of `O(|R|⁴)`, §5.2);
//! * for every landmark pair, the set of meta-edges lying on its shortest
//!   meta-paths (the landmark part of a sketch);
//! * `Δ`: for every meta-edge `(r, r')`, the shortest path graph between `r`
//!   and `r'` in the original graph restricted to paths with no other
//!   landmark — the "precomputed shortest path graphs between landmarks"
//!   whose size the paper reports as `size(Δ)` in Table 3 and which the
//!   recover search splices into query answers.

use serde::{Deserialize, Serialize};

use qbs_graph::traversal::bfs_distances;
use qbs_graph::{Distance, FilteredGraph, Graph, VertexFilter, VertexId, INFINITE_DISTANCE};

/// The meta-graph and everything precomputed from it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaGraph {
    /// The landmark set, in column order.
    landmarks: Vec<VertexId>,
    /// Deduplicated meta edges `(i, j, σ)` with `i < j` over landmark indices.
    edges: Vec<(usize, usize, Distance)>,
    /// Row-major `|R| × |R|` all-pairs distance matrix over the meta-graph.
    apsp: Vec<Distance>,
    /// `delta[k]` is the edge set of the shortest path graph (in `G`,
    /// avoiding other landmarks) between the endpoints of `edges[k]`.
    delta: Vec<Vec<(VertexId, VertexId)>>,
}

impl MetaGraph {
    /// Reassembles a meta-graph from its stored parts (the v2 binary
    /// format persists all four arrays, so nothing is recomputed on load).
    ///
    /// The caller is responsible for consistency between the parts;
    /// [`crate::format::IndexView::parse`] validates them before this runs.
    pub(crate) fn from_parts(
        landmarks: Vec<VertexId>,
        edges: Vec<(usize, usize, Distance)>,
        apsp: Vec<Distance>,
        delta: Vec<Vec<(VertexId, VertexId)>>,
    ) -> Self {
        debug_assert_eq!(apsp.len(), landmarks.len() * landmarks.len());
        debug_assert_eq!(delta.len(), edges.len());
        MetaGraph {
            landmarks,
            edges,
            apsp,
            delta,
        }
    }

    /// The raw row-major `|R|²` all-pairs distance matrix. Exposed for flat
    /// binary serialisation.
    pub(crate) fn apsp(&self) -> &[Distance] {
        &self.apsp
    }

    /// Builds the meta-graph from the raw edge list produced by Algorithm 2,
    /// computing `d_M` and the per-edge Δ path graphs.
    pub fn build(
        graph: &Graph,
        landmarks: &[VertexId],
        meta_edges: &[(usize, usize, Distance)],
    ) -> Self {
        let r = landmarks.len();
        let mut apsp = vec![INFINITE_DISTANCE; r * r];
        for i in 0..r {
            apsp[i * r + i] = 0;
        }
        for &(i, j, sigma) in meta_edges {
            apsp[i * r + j] = apsp[i * r + j].min(sigma);
            apsp[j * r + i] = apsp[j * r + i].min(sigma);
        }
        // Floyd–Warshall: |R| ≤ 100 in every experiment, so |R|³ is trivial.
        for k in 0..r {
            for i in 0..r {
                let dik = apsp[i * r + k];
                if dik == INFINITE_DISTANCE {
                    continue;
                }
                for j in 0..r {
                    let dkj = apsp[k * r + j];
                    if dkj == INFINITE_DISTANCE {
                        continue;
                    }
                    let through = dik + dkj;
                    if through < apsp[i * r + j] {
                        apsp[i * r + j] = through;
                    }
                }
            }
        }

        // Δ: shortest path graph between the endpoints of every meta-edge,
        // restricted to paths avoiding all other landmarks.
        let delta = meta_edges
            .iter()
            .map(|&(i, j, sigma)| {
                landmark_pair_paths(graph, landmarks, landmarks[i], landmarks[j], sigma)
            })
            .collect();

        MetaGraph {
            landmarks: landmarks.to_vec(),
            edges: meta_edges.to_vec(),
            apsp,
            delta,
        }
    }

    /// The landmark set in column order.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Number of landmarks `|R|`.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// The meta edges `(i, j, σ)` with `i < j`.
    pub fn edges(&self) -> &[(usize, usize, Distance)] {
        &self.edges
    }

    /// Shortest-path distance between two landmarks through the meta-graph,
    /// which equals their true graph distance `d_G` (every shortest path
    /// between landmarks decomposes into meta edges at its interior
    /// landmarks).
    #[inline]
    pub fn distance(&self, i: usize, j: usize) -> Distance {
        self.apsp[i * self.num_landmarks() + j]
    }

    /// The meta edges lying on at least one shortest meta-path between
    /// landmark indices `i` and `j` — the landmark part of the sketch for a
    /// query whose minimum is achieved by the pair `(i, j)`.
    pub fn shortest_path_meta_edges(&self, i: usize, j: usize) -> Vec<(usize, usize, Distance)> {
        let dij = self.distance(i, j);
        if dij == INFINITE_DISTANCE || i == j {
            return Vec::new();
        }
        self.edges
            .iter()
            .copied()
            .filter(|&(a, b, w)| {
                let forward = self
                    .distance(i, a)
                    .saturating_add(w)
                    .saturating_add(self.distance(b, j))
                    == dij;
                let backward = self
                    .distance(i, b)
                    .saturating_add(w)
                    .saturating_add(self.distance(a, j))
                    == dij;
                forward || backward
            })
            .collect()
    }

    /// The precomputed path graph (edge list in `G`) of one meta edge, by
    /// its position in [`MetaGraph::edges`].
    pub fn delta_edges(&self, edge_index: usize) -> &[(VertexId, VertexId)] {
        &self.delta[edge_index]
    }

    /// Looks up the index of a meta edge given its landmark indices.
    pub fn edge_index(&self, i: usize, j: usize) -> Option<usize> {
        let key = (i.min(j), i.max(j));
        self.edges.iter().position(|&(a, b, _)| (a, b) == key)
    }

    /// Total number of edges stored across all Δ path graphs.
    pub fn delta_total_edges(&self) -> usize {
        self.delta.iter().map(Vec::len).sum()
    }

    /// Size of Δ in bytes (8 bytes per stored edge, the paper's Table 1/3
    /// accounting for adjacency data).
    pub fn delta_size_bytes(&self) -> usize {
        self.delta_total_edges() * 8
    }

    /// Size of the meta-graph itself in bytes (two 4-byte endpoints plus a
    /// 4-byte weight per edge) — the quantity the paper bounds by 0.01 MB
    /// for `|R| = 100` (§6.2.2).
    pub fn meta_size_bytes(&self) -> usize {
        self.edges.len() * 12
    }
}

/// Computes the shortest path graph between two landmarks restricted to
/// paths that contain no other landmark, via two BFSs on the filtered view.
fn landmark_pair_paths(
    graph: &Graph,
    landmarks: &[VertexId],
    a: VertexId,
    b: VertexId,
    expected_distance: Distance,
) -> Vec<(VertexId, VertexId)> {
    let others = VertexFilter::from_vertices(
        graph.num_vertices(),
        landmarks.iter().copied().filter(|&x| x != a && x != b),
    );
    let view = FilteredGraph::new(graph, &others);
    let from_a = bfs_distances(&view, a);
    let from_b = bfs_distances(&view, b);
    debug_assert_eq!(
        from_a[b as usize], expected_distance,
        "meta edge weight must equal the landmark-free distance"
    );
    let mut edges = Vec::new();
    for (x, y) in graph.edges() {
        if others.contains(x) || others.contains(y) {
            continue;
        }
        let (dax, day) = (from_a[x as usize], from_a[y as usize]);
        let (dbx, dby) = (from_b[x as usize], from_b[y as usize]);
        if dax == INFINITE_DISTANCE || day == INFINITE_DISTANCE {
            continue;
        }
        if dax.saturating_add(1).saturating_add(dby) == expected_distance
            || day.saturating_add(1).saturating_add(dbx) == expected_distance
        {
            edges.push((x, y));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labelling::build_sequential;
    use qbs_graph::fixtures::{figure4_graph, figure4_landmarks};
    use qbs_graph::GraphBuilder;

    fn figure4_meta() -> (Graph, MetaGraph) {
        let g = figure4_graph();
        let landmarks = figure4_landmarks();
        let scheme = build_sequential(&g, &landmarks);
        let meta = MetaGraph::build(&g, &landmarks, &scheme.meta_edges);
        (g, meta)
    }

    #[test]
    fn distances_match_the_true_landmark_distances() {
        let (g, meta) = figure4_meta();
        for (i, &ri) in meta.landmarks().iter().enumerate() {
            let bfs = bfs_distances(&g, ri);
            for (j, &rj) in meta.landmarks().iter().enumerate() {
                assert_eq!(meta.distance(i, j), bfs[rj as usize], "d_M({ri},{rj})");
            }
        }
    }

    #[test]
    fn figure4_meta_edges_and_weights() {
        let (_, meta) = figure4_meta();
        assert_eq!(meta.num_landmarks(), 3);
        assert_eq!(meta.edges(), &[(0, 1, 1), (0, 2, 2), (1, 2, 1)]);
        assert_eq!(meta.meta_size_bytes(), 36);
    }

    #[test]
    fn sketch_meta_edges_for_example_4_7() {
        let (_, meta) = figure4_meta();
        // Shortest meta paths between landmarks 1 (idx 0) and 3 (idx 2) have
        // length 2 and use either the direct edge (1,3) or the path 1-2-3 —
        // so all three meta edges belong to the sketch (Figure 6(b)).
        let edges = meta.shortest_path_meta_edges(0, 2);
        assert_eq!(edges.len(), 3);
        // Between 1 (idx 0) and 2 (idx 1) only the direct edge qualifies.
        let edges = meta.shortest_path_meta_edges(0, 1);
        assert_eq!(edges, vec![(0, 1, 1)]);
        // Degenerate: same landmark twice.
        assert!(meta.shortest_path_meta_edges(1, 1).is_empty());
    }

    #[test]
    fn delta_contains_landmark_free_paths_only() {
        let (_, meta) = figure4_meta();
        // Meta edge (1,3) (indices 0,2) has weight 2 realised only through
        // vertex 4; its Δ must be exactly {(1,4), (3,4)}.
        let k = meta.edge_index(0, 2).expect("edge exists");
        let mut edges = meta.delta_edges(k).to_vec();
        edges.sort_unstable();
        assert_eq!(edges, vec![(1, 4), (3, 4)]);
        // Adjacent landmark pairs have a single-edge Δ.
        let k = meta.edge_index(0, 1).expect("edge exists");
        assert_eq!(meta.delta_edges(k), &[(1, 2)]);
        assert!(meta.edge_index(5, 0).is_none());
        assert_eq!(meta.delta_total_edges(), 4);
        assert_eq!(meta.delta_size_bytes(), 32);
    }

    #[test]
    fn disconnected_landmarks_have_infinite_meta_distance() {
        let mut b = GraphBuilder::from_edges([(0u32, 1), (2, 3)]);
        b.reserve_vertices(4);
        let g = b.build();
        let landmarks = vec![0, 3];
        let scheme = build_sequential(&g, &landmarks);
        let meta = MetaGraph::build(&g, &landmarks, &scheme.meta_edges);
        assert_eq!(meta.distance(0, 1), INFINITE_DISTANCE);
        assert_eq!(meta.distance(0, 0), 0);
        assert!(meta.shortest_path_meta_edges(0, 1).is_empty());
    }

    #[test]
    fn triangle_of_landmarks_has_single_edge_deltas() {
        // Landmarks pairwise adjacent: every Δ is a single direct edge.
        let g = GraphBuilder::from_edges([(0u32, 1), (1, 2), (2, 0)]).build();
        let landmarks = vec![0, 1, 2];
        let scheme = build_sequential(&g, &landmarks);
        let meta = MetaGraph::build(&g, &landmarks, &scheme.meta_edges);
        assert_eq!(meta.edges().len(), 3);
        for k in 0..3 {
            assert_eq!(meta.delta_edges(k).len(), 1);
        }
    }
}
