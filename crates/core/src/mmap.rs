//! A minimal read-only memory-mapping shim.
//!
//! The offline build environment has no `memmap2`/`libc` crates, so this
//! module binds `mmap(2)`/`munmap(2)` directly via `extern "C"` on 64-bit
//! Unix targets. Everywhere else (and whenever the mapping syscall fails at
//! the OS level) callers fall back to reading the file into a heap buffer —
//! [`crate::serialize::load_view_from_file`] hides the distinction behind
//! [`crate::serialize::MapMode`].
//!
//! This is one of the few syscall-shim modules in the workspace allowed to
//! use `unsafe` (each crate root is `#![deny(unsafe_code)]`; the others are
//! `qbs-server`'s `signal` and `poll` shims); the surface is deliberately
//! tiny: map a whole file read-only, expose it as `&[u8]`, unmap on drop.
//!
//! # Mapping contract
//!
//! A mapped index file must be treated as **immutable** for the lifetime of
//! the mapping. Truncating or rewriting it from another process while it is
//! mapped can deliver `SIGBUS` on access — the classic mmap caveat, and the
//! reason the serving story deals in write-once, atomically-renamed index
//! files (see `docs/index-format.md`).
#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::path::Path;

/// A read-only mapping (or heap copy, on fallback targets) of a whole file.
pub struct MmapRegion(imp::Region);

impl MmapRegion {
    /// Maps `path` read-only in its entirety.
    ///
    /// On targets without the raw `mmap` binding (non-Unix, or 32-bit
    /// pointer widths where the raw `off_t` ABI is not portably
    /// declarable), this transparently reads the file into a heap buffer
    /// instead, so callers never need a `cfg`.
    pub fn map_file<P: AsRef<Path>>(path: P) -> io::Result<MmapRegion> {
        let file = File::open(path)?;
        imp::map(&file).map(MmapRegion)
    }

    /// Whether this region is a true kernel mapping (`false` means the
    /// heap-read fallback was used).
    pub fn is_mapped(&self) -> bool {
        imp::IS_REAL_MMAP
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        self.0.as_slice()
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod imp {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    pub(super) const IS_REAL_MMAP: bool = true;

    // Raw bindings; the values below are identical on every 64-bit Unix we
    // target (Linux, macOS, the BSDs). `off_t` is 64-bit on all of them.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    pub(super) struct Region {
        /// Null iff the file was empty (mmap rejects zero-length maps).
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the region is a private, read-only mapping; the pointer is
    // never handed out mutably, so concurrent `&self` access from multiple
    // threads only performs aliased reads.
    unsafe impl Send for Region {}
    unsafe impl Sync for Region {}

    pub(super) fn map(file: &File) -> io::Result<Region> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Region {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: length is the exact non-zero file size, the fd is open for
        // reading, and a PROT_READ | MAP_PRIVATE whole-file mapping has no
        // aliasing preconditions. The fd may be closed after mmap returns;
        // the mapping stays valid until munmap.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Region { ptr, len })
    }

    impl Region {
        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            if self.ptr.is_null() {
                return &[];
            }
            // SAFETY: `ptr` points at a live PROT_READ mapping of exactly
            // `len` bytes, valid until `Drop` runs; `&self` ties the slice
            // lifetime to the region.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Region {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // SAFETY: `ptr`/`len` came from a successful mmap and are
                // unmapped exactly once.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
mod imp {
    use std::fs::File;
    use std::io::{self, Read};

    pub(super) const IS_REAL_MMAP: bool = false;

    pub(super) struct Region(Vec<u8>);

    pub(super) fn map(file: &File) -> io::Result<Region> {
        let mut buf = Vec::new();
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(Region(buf))
    }

    impl Region {
        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            &self.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qbs_core_mmap_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn mapping_reflects_file_contents() {
        let path = temp_path("data.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).expect("write");
        let region = MmapRegion::map_file(&path).expect("map");
        assert_eq!(region.len(), payload.len());
        assert_eq!(region.as_slice(), &payload[..]);
        assert!(!region.is_empty());
        assert!(format!("{region:?}").contains("len"));
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let path = temp_path("empty.bin");
        std::fs::write(&path, b"").expect("write");
        let region = MmapRegion::map_file(&path).expect("map");
        assert!(region.is_empty());
        assert_eq!(region.as_slice(), b"");
    }

    #[test]
    fn missing_files_error_cleanly() {
        assert!(MmapRegion::map_file(temp_path("missing.bin")).is_err());
    }

    #[test]
    fn regions_are_shareable_across_threads() {
        let path = temp_path("shared.bin");
        std::fs::write(&path, vec![7u8; 4096]).expect("write");
        let region = std::sync::Arc::new(MmapRegion::map_file(&path).expect("map"));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&region);
                scope.spawn(move || assert!(r.as_slice().iter().all(|&b| b == 7)));
            }
        });
    }
}
