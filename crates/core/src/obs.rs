//! Low-overhead observability: latency histograms, per-stage request
//! timing, and trace IDs.
//!
//! The serving tier (engine → batch planner → cache → server → router)
//! exposes lifetime *counters* through [`crate::session::EngineStats`] and
//! friends; this module adds *distributions*. The design constraints are
//! the ones of a hot query path answering in microseconds:
//!
//! - **Log2 buckets.** A [`LatencyHistogram`] has one bucket per power of
//!   two of nanoseconds ([`NUM_BUCKETS`] of them), so recording is a
//!   `leading_zeros` plus one relaxed `fetch_add` — no floating point, no
//!   locks, and two histograms merge bucket-wise, which keeps quantiles
//!   well-defined after aggregation (the router merges replica histograms
//!   this way).
//! - **Sharding.** A [`Metrics`] registry spreads its histograms over
//!   [`NUM_SHARDS`] shards selected by a per-thread round-robin tag, so
//!   concurrent workers do not contend on the same cache lines.
//!   [`Metrics::snapshot`] folds the shards back together.
//! - **Always on.** Instrumentation is enabled by default and cheap
//!   enough to stay on (the `server_throughput` bench gates the overhead
//!   at ≤ 2%); [`Metrics::set_enabled`] exists so that bench can measure
//!   the delta, not so production turns it off.
//!
//! Per-request stage timing ([`Stage`]) is collected into a small
//! workspace scratch ([`ObsScratch`]) while a request executes, then
//! flushed into the registry under the request's
//! [`QueryMode`] — batch-scoped stages (queue wait, planner, wire encode)
//! land under the synthetic `batch` mode instead. [`TraceId`]s ride the
//! protocol-v3 frame envelope from client through router to replicas and
//! key the threshold-triggered slow-query log (see `docs/observability.md`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::request::QueryMode;

/// Number of log2 nanosecond buckets per histogram. Bucket `i` counts
/// samples in `[2^i, 2^(i+1))` ns (bucket 0 also absorbs 0 ns), so the
/// top bucket starts at `2^39` ns ≈ 9 minutes — far beyond any latency
/// this stack can legitimately produce.
pub const NUM_BUCKETS: usize = 40;

/// Number of shards a [`Metrics`] registry spreads its histograms over.
pub const NUM_SHARDS: usize = 8;

/// Bucket index of a nanosecond sample: `floor(log2(ns))`, clamped into
/// the bucket range (0 ns lands in bucket 0).
fn bucket_of(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive upper bound (in ns) of bucket `i`, saturating at the top.
fn bucket_upper(i: usize) -> u64 {
    // The top bucket is open-ended: it absorbs everything `bucket_of`
    // clamps into it, so its upper bound must not understate them.
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A mergeable log2-bucketed latency histogram over atomic counters.
///
/// Recording is lock-free (relaxed atomics); reading goes through
/// [`LatencyHistogram::snapshot`], which yields an immutable
/// [`HistogramSnapshot`] with quantile accessors. This is the one
/// quantile implementation in the codebase — `qbs client --ping` feeds
/// its round trips through it just like the server feeds request stages.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty, so `fetch_min` needs no empty special case.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_ns(saturating_ns(d));
    }

    /// Records one sample in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.counts[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes an immutable copy of the current state. Concurrent recording
    /// keeps running; the snapshot is internally consistent enough for
    /// monitoring (counts and sums are read independently).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Folds another histogram's live counters into this one (bucket-wise).
    fn absorb(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n != 0 {
            self.count.fetch_add(n, Ordering::Relaxed);
            self.sum
                .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max
                .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// An immutable, mergeable, wire-encodable copy of a
/// [`LatencyHistogram`]. Quantiles are answered from the log2 buckets:
/// the reported value is the inclusive upper bound of the bucket the
/// requested rank falls into, clamped into `[min, max]` — so `p50 ≤ p90 ≤
/// p99 ≤ max` always holds, and merging two snapshots bucket-wise yields
/// exactly the snapshot of the concatenated samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (log2 ns buckets; may be empty for a
    /// histogram that never recorded).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, in ns.
    pub sum: u64,
    /// Smallest sample, in ns (0 when empty).
    pub min: u64,
    /// Largest sample, in ns (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one, bucket-wise. The result is
    /// identical to a snapshot taken over the concatenation of both
    /// sample sets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
        } else {
            self.min = self.min.min(other.min);
        }
        self.count += other.count;
        // Wrapping to match the atomic `fetch_add` accumulation path, so
        // merge(a, b) stays bit-identical to recording a ++ b.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (0.0 ..= 1.0), in ns: the upper bound of
    /// the bucket holding the `ceil(q · count)`-th sample, clamped into
    /// `[min, max]`. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median sample, in ns.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile sample, in ns.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile sample, in ns.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample, in ns (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Whether the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Formats a nanosecond figure as fractional milliseconds (for human
/// rendering; the wire always carries ns).
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// A stage of the request path, the label axis of the per-stage latency
/// histograms. Request-scoped stages (sketch bound through execute) are
/// recorded under the request's [`QueryMode`]; batch-scoped stages (queue
/// wait, planner, wire encode) are recorded once per batch under the
/// synthetic `batch` mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Time a batch spent queued between the reactor and a worker.
    QueueWait,
    /// Batch-planner analysis (dedupe, memo setup, scheduling).
    Planner,
    /// Landmark-label intersection: sketch / `d⊤` bound computation.
    SketchBound,
    /// Guided bidirectional search (full or distance-only).
    GuidedSearch,
    /// Answer-cache lookup.
    CacheLookup,
    /// Answer-cache admission.
    CacheAdmit,
    /// Whole per-request execution (lookup + compute + admit + shaping).
    Execute,
    /// Encoding the response frame onto the wire.
    WireEncode,
}

impl Stage {
    /// Every stage, in recording order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::QueueWait,
        Stage::Planner,
        Stage::SketchBound,
        Stage::GuidedSearch,
        Stage::CacheLookup,
        Stage::CacheAdmit,
        Stage::Execute,
        Stage::WireEncode,
    ];

    /// Stable snake_case label (metric label value, slow-query log key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Planner => "planner",
            Stage::SketchBound => "sketch_bound",
            Stage::GuidedSearch => "guided_search",
            Stage::CacheLookup => "cache_lookup",
            Stage::CacheAdmit => "cache_admit",
            Stage::Execute => "execute",
            Stage::WireEncode => "wire_encode",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Number of [`Stage`] variants.
pub const NUM_STAGES: usize = 8;

/// Number of mode slots on the histogram matrix: the three
/// [`QueryMode`]s plus the synthetic `batch` slot for batch-scoped stages.
pub const NUM_MODE_SLOTS: usize = 4;

/// Index of the synthetic `batch` mode slot.
const MODE_BATCH: usize = 3;

/// Histogram-matrix slot of a query mode.
fn mode_slot(mode: QueryMode) -> usize {
    match mode {
        QueryMode::Distance => 0,
        QueryMode::PathGraph => 1,
        QueryMode::Sketch => 2,
    }
}

/// Stable label of a mode slot (metric label value).
pub fn mode_slot_name(slot: usize) -> &'static str {
    match slot {
        0 => "distance",
        1 => "path_graph",
        2 => "sketch",
        _ => "batch",
    }
}

/// Per-stage nanosecond totals of one batch — the slow-query log's stage
/// breakdown, accumulated across the workers that executed the batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageNanos(pub [u64; NUM_STAGES]);

impl StageNanos {
    /// Adds another breakdown into this one.
    pub fn add(&mut self, other: &StageNanos) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine += theirs;
        }
    }

    /// Nanoseconds recorded for one stage.
    pub fn get(&self, stage: Stage) -> u64 {
        self.0[stage.index()]
    }

    /// Sets the figure for one stage.
    pub fn set(&mut self, stage: Stage, ns: u64) {
        self.0[stage.index()] = ns;
    }

    /// Renders the breakdown as space-separated `{stage}_us={n}` pairs —
    /// the slow-query log's parseable stage fields.
    pub fn render_us(&self) -> String {
        let mut out = String::new();
        for stage in Stage::ALL {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(stage.name());
            out.push_str("_us=");
            out.push_str(&(self.get(stage) / 1_000).to_string());
        }
        out
    }
}

/// Relaxed-atomic per-stage accumulator: the engine sums every request's
/// stage figures of the current batch here, so the serving layer can
/// attach a whole-batch stage breakdown to a slow-query log line.
#[derive(Debug)]
pub(crate) struct AtomicStageNanos([AtomicU64; NUM_STAGES]);

impl Default for AtomicStageNanos {
    fn default() -> Self {
        AtomicStageNanos(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

impl AtomicStageNanos {
    /// Accumulates one request's stage figures.
    pub(crate) fn add(&self, ns: &[u64; NUM_STAGES]) {
        for (slot, &n) in self.0.iter().zip(ns.iter()) {
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Accumulates one stage figure.
    pub(crate) fn add_one(&self, stage: Stage, ns: u64) {
        self.0[stage.index()].fetch_add(ns.max(1), Ordering::Relaxed);
    }

    /// Takes the accumulated breakdown, resetting every stage to zero.
    pub(crate) fn take(&self) -> StageNanos {
        StageNanos(std::array::from_fn(|i| {
            self.0[i].swap(0, Ordering::Relaxed)
        }))
    }
}

/// Per-workspace scratch where a request's stage timings accumulate while
/// it executes; the engine flushes it into the shared [`Metrics`]
/// registry after each request. Timing calls are no-ops while `enabled`
/// is false, so the uninstrumented path costs one branch.
#[derive(Debug, Default)]
pub struct ObsScratch {
    /// Whether the executing engine wants stage timings collected.
    pub(crate) enabled: bool,
    ns: [u64; NUM_STAGES],
}

impl ObsScratch {
    /// Starts a stage clock, or `None` when timing is off.
    pub(crate) fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Stops a stage clock started by [`ObsScratch::start`], accumulating
    /// the elapsed time under `stage`. Sub-nanosecond readings round up
    /// to 1 ns so "ran in under a tick" stays distinguishable from
    /// "never ran".
    pub(crate) fn stop(&mut self, stage: Stage, t: Option<Instant>) {
        if let Some(t) = t {
            self.add_ns(stage, saturating_ns(t.elapsed()).max(1));
        }
    }

    /// Accumulates `ns` under `stage`.
    pub(crate) fn add_ns(&mut self, stage: Stage, ns: u64) {
        self.ns[stage.index()] += ns;
    }

    /// Takes the per-request figures, resetting them to zero.
    pub(crate) fn take(&mut self) -> [u64; NUM_STAGES] {
        std::mem::take(&mut self.ns)
    }
}

/// Duration → ns without the 584-year overflow panic.
pub(crate) fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One shard of the registry: a full (mode slot × stage) histogram
/// matrix. Threads are spread over shards so concurrent recording does
/// not contend.
#[derive(Debug, Default)]
struct MetricsShard {
    hists: [[LatencyHistogram; NUM_STAGES]; NUM_MODE_SLOTS],
}

/// The process-wide observability registry: sharded per-stage latency
/// histograms keyed by ([`QueryMode`] slot, [`Stage`]), plus the
/// slow-query counter. One registry lives inside each [`crate::Qbs`]
/// session (shared with every transient engine it spawns) and each
/// router backend.
#[derive(Debug)]
pub struct Metrics {
    enabled: AtomicBool,
    shards: Box<[MetricsShard]>,
    slow_queries: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates an enabled registry.
    pub fn new() -> Self {
        Metrics {
            enabled: AtomicBool::new(true),
            shards: (0..NUM_SHARDS).map(|_| MetricsShard::default()).collect(),
            slow_queries: AtomicU64::new(0),
        }
    }

    /// Whether recording is enabled (it is by default).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Exists for the instrumentation-overhead
    /// bench and differential tests; production keeps it on.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// This thread's shard, assigned round-robin on first use.
    fn shard(&self) -> &MetricsShard {
        use std::cell::Cell;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        thread_local! {
            static TAG: Cell<u64> = const { Cell::new(u64::MAX) };
        }
        let tag = TAG.with(|t| {
            let mut tag = t.get();
            if tag == u64::MAX {
                tag = NEXT.fetch_add(1, Ordering::Relaxed);
                t.set(tag);
            }
            tag
        });
        &self.shards[(tag % NUM_SHARDS as u64) as usize]
    }

    /// Records one batch-scoped stage sample (queue wait, planner, wire
    /// encode).
    pub fn record_batch_stage(&self, stage: Stage, d: Duration) {
        if self.is_enabled() {
            self.shard().hists[MODE_BATCH][stage.index()].record(d);
        }
    }

    /// Flushes a request's stage figures (an [`ObsScratch::take`] result)
    /// under its query mode. Zero entries mean "stage never ran" and are
    /// skipped.
    pub(crate) fn record_request(&self, mode: QueryMode, ns: &[u64; NUM_STAGES]) {
        let row = &self.shard().hists[mode_slot(mode)];
        for (i, &n) in ns.iter().enumerate() {
            if n != 0 {
                row[i].record_ns(n);
            }
        }
    }

    /// Bumps the slow-query counter (one per logged offender).
    pub fn inc_slow_queries(&self) {
        self.slow_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a mergeable snapshot of every histogram, folding the shards
    /// together.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut hists = Vec::with_capacity(NUM_MODE_SLOTS * NUM_STAGES);
        for slot in 0..NUM_MODE_SLOTS {
            for stage in 0..NUM_STAGES {
                let mut snap = HistogramSnapshot::default();
                for shard in self.shards.iter() {
                    snap.merge(&shard.hists[slot][stage].snapshot());
                }
                hists.push(snap);
            }
        }
        MetricsSnapshot {
            hists,
            slow_queries: self.slow_queries.load(Ordering::Relaxed),
        }
    }

    /// Folds another registry's live counters into this one (used by
    /// tests; cross-process aggregation merges snapshots instead).
    pub fn absorb(&self, other: &Metrics) {
        for (mine, theirs) in self.shards.iter().zip(other.shards.iter()) {
            for slot in 0..NUM_MODE_SLOTS {
                for stage in 0..NUM_STAGES {
                    mine.hists[slot][stage].absorb(&theirs.hists[slot][stage]);
                }
            }
        }
        self.slow_queries.fetch_add(
            other.slow_queries.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
}

/// A wire-encodable snapshot of a [`Metrics`] registry: the full (mode
/// slot × stage) histogram matrix in row-major order plus the slow-query
/// counter. This is the payload of the protocol `Metrics` frame; the
/// router merges replica snapshots into its own bucket-wise, so
/// aggregated quantiles stay well-defined.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Histograms in `slot * NUM_STAGES + stage` order. May be shorter
    /// than the full matrix (older peers); missing families read as
    /// empty.
    pub hists: Vec<HistogramSnapshot>,
    /// Slow queries logged since startup.
    pub slow_queries: u64,
}

impl MetricsSnapshot {
    /// The histogram of one (mode slot, stage) family, empty if absent.
    pub fn family(&self, slot: usize, stage: Stage) -> HistogramSnapshot {
        self.hists
            .get(slot * NUM_STAGES + stage.index())
            .cloned()
            .unwrap_or_default()
    }

    /// Merges another snapshot into this one family-by-family,
    /// bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if self.hists.len() < other.hists.len() {
            self.hists
                .resize_with(other.hists.len(), HistogramSnapshot::default);
        }
        for (mine, theirs) in self.hists.iter_mut().zip(other.hists.iter()) {
            mine.merge(theirs);
        }
        self.slow_queries += other.slow_queries;
    }

    /// Whether no family holds any sample.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(HistogramSnapshot::is_empty)
    }

    /// Appends the Prometheus text exposition of the stage histograms:
    /// one `qbs_stage_seconds` histogram family labelled by `mode` and
    /// `stage` (cumulative `_bucket{le=…}` lines, `_sum`, `_count`), plus
    /// quantile gauges `qbs_stage_seconds_quantile`. Empty families are
    /// skipped. Counter families are appended by the serving layer, which
    /// owns them.
    pub fn render_prometheus_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("# TYPE qbs_stage_seconds histogram\n");
        for slot in 0..NUM_MODE_SLOTS {
            for stage in Stage::ALL {
                let h = self.family(slot, stage);
                if h.is_empty() {
                    continue;
                }
                let labels = format!(
                    "mode=\"{}\",stage=\"{}\"",
                    mode_slot_name(slot),
                    stage.name()
                );
                let mut cum = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cum += n;
                    let _ = writeln!(
                        out,
                        "qbs_stage_seconds_bucket{{{labels},le=\"{:e}\"}} {cum}",
                        (bucket_upper(i).saturating_add(1)) as f64 / 1e9
                    );
                }
                let _ = writeln!(
                    out,
                    "qbs_stage_seconds_bucket{{{labels},le=\"+Inf\"}} {}",
                    h.count
                );
                let _ = writeln!(
                    out,
                    "qbs_stage_seconds_sum{{{labels}}} {:e}",
                    h.sum as f64 / 1e9
                );
                let _ = writeln!(out, "qbs_stage_seconds_count{{{labels}}} {}", h.count);
                for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                    let _ = writeln!(
                        out,
                        "qbs_stage_seconds_quantile{{{labels},quantile=\"{q}\"}} {:e}",
                        v as f64 / 1e9
                    );
                }
            }
        }
        let _ = writeln!(out, "# TYPE qbs_slow_queries_total counter");
        let _ = writeln!(out, "qbs_slow_queries_total {}", self.slow_queries);
    }

    /// Renders the non-empty families as an aligned human-readable table
    /// (the `qbs client --metrics` output): one line per (mode, stage)
    /// with count and p50/p90/p99/max in ms.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<11} {:<13} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "mode", "stage", "count", "p50 ms", "p90 ms", "p99 ms", "max ms"
        );
        for slot in 0..NUM_MODE_SLOTS {
            for stage in Stage::ALL {
                let h = self.family(slot, stage);
                if h.is_empty() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{:<11} {:<13} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                    mode_slot_name(slot),
                    stage.name(),
                    h.count,
                    ns_to_ms(h.p50()),
                    ns_to_ms(h.p90()),
                    ns_to_ms(h.p99()),
                    ns_to_ms(h.max),
                );
            }
        }
        let _ = writeln!(out, "slow queries logged: {}", self.slow_queries);
        out
    }
}

/// A request trace identifier, minted by the client and carried verbatim
/// in the protocol-v3 frame envelope through the router to every replica
/// that serves a piece of the batch. Slow-query log lines carry it, so a
/// client-observed slow request can be joined to the replica and stage
/// that caused it. Zero means "untraced" (v1/v2 peers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null trace of untraced (pre-v3) requests.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is the null trace.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for the randomized property sweeps.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn hist_of(samples: &[u64]) -> HistogramSnapshot {
        let h = LatencyHistogram::new();
        for &s in samples {
            h.record_ns(s);
        }
        h.snapshot()
    }

    #[test]
    fn bucket_scheme_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(10), 2047);
    }

    #[test]
    fn merged_buckets_equal_concatenated_samples() {
        // Property: snapshot(A) ⊎ snapshot(B) == snapshot(A ++ B),
        // bucket-for-bucket and for every scalar, across random splits.
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for round in 0..200 {
            let n = (rng.next() % 64) as usize;
            let split = if n == 0 {
                0
            } else {
                (rng.next() % n as u64) as usize
            };
            let samples: Vec<u64> = (0..n).map(|_| rng.next() >> (rng.next() % 48)).collect();
            let mut merged = hist_of(&samples[..split]);
            merged.merge(&hist_of(&samples[split..]));
            assert_eq!(
                merged,
                hist_of(&samples),
                "round {round}: merge drifted from concatenation"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut rng = Rng(0xDEADBEEFCAFEF00D);
        for _ in 0..200 {
            let n = 1 + (rng.next() % 100) as usize;
            let samples: Vec<u64> = (0..n).map(|_| rng.next() >> (rng.next() % 40)).collect();
            let h = hist_of(&samples);
            let min = *samples.iter().min().unwrap();
            let max = *samples.iter().max().unwrap();
            assert_eq!(h.min, min);
            assert_eq!(h.max, max);
            let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0]
                .iter()
                .map(|&q| h.quantile(q))
                .collect();
            for w in qs.windows(2) {
                assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
            }
            for &q in &qs {
                assert!(q >= min && q <= max, "quantile {q} outside [{min}, {max}]");
            }
            // The reported quantile is the bucket upper bound, so it never
            // undershoots the true order statistic.
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let true_p50 = sorted[(n - 1) / 2];
            assert!(h.p50() >= true_p50);
        }
    }

    #[test]
    fn empty_and_single_sample_edges() {
        let empty = hist_of(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.quantile(1.0), 0);
        let one = hist_of(&[1234]);
        assert_eq!(one.count, 1);
        assert_eq!(one.p50(), 1234);
        assert_eq!(one.p99(), 1234);
        assert_eq!(one.max, 1234);
        let mut merged = HistogramSnapshot::default();
        merged.merge(&one);
        assert_eq!(merged, one);
        merged.merge(&empty);
        assert_eq!(merged, one);
    }

    #[test]
    fn metrics_registry_shards_fold_into_one_snapshot() {
        let m = Metrics::new();
        assert!(m.is_enabled());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let m = &m;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let mut ns = [0u64; NUM_STAGES];
                        ns[Stage::Execute as usize] = 1 + t * 100 + i;
                        m.record_request(QueryMode::Distance, &ns);
                    }
                });
            }
        });
        let snap = m.snapshot();
        let exec = snap.family(mode_slot(QueryMode::Distance), Stage::Execute);
        assert_eq!(exec.count, 800);
        assert_eq!(exec.min, 1);
        assert_eq!(exec.max, 800);
        assert!(snap
            .family(mode_slot(QueryMode::Sketch), Stage::Execute)
            .is_empty());
    }

    #[test]
    fn disabled_registry_records_nothing_via_batch_path() {
        let m = Metrics::new();
        m.set_enabled(false);
        m.record_batch_stage(Stage::QueueWait, Duration::from_micros(5));
        assert!(m.snapshot().is_empty());
        m.set_enabled(true);
        m.record_batch_stage(Stage::QueueWait, Duration::from_micros(5));
        assert_eq!(m.snapshot().family(MODE_BATCH, Stage::QueueWait).count, 1);
    }

    #[test]
    fn snapshot_merge_tolerates_length_mismatch() {
        let m = Metrics::new();
        let mut ns = [0u64; NUM_STAGES];
        ns[Stage::GuidedSearch as usize] = 42;
        m.record_request(QueryMode::PathGraph, &ns);
        let full = m.snapshot();
        let mut short = MetricsSnapshot {
            hists: Vec::new(),
            slow_queries: 3,
        };
        short.merge(&full);
        assert_eq!(short.slow_queries, 3);
        assert_eq!(
            short.family(mode_slot(QueryMode::PathGraph), Stage::GuidedSearch),
            full.family(mode_slot(QueryMode::PathGraph), Stage::GuidedSearch)
        );
    }

    #[test]
    fn prometheus_rendering_names_families() {
        let m = Metrics::new();
        m.record_batch_stage(Stage::QueueWait, Duration::from_micros(12));
        m.inc_slow_queries();
        let mut text = String::new();
        m.snapshot().render_prometheus_into(&mut text);
        assert!(text.contains("qbs_stage_seconds_bucket{mode=\"batch\",stage=\"queue_wait\""));
        assert!(text.contains("qbs_stage_seconds_count{mode=\"batch\",stage=\"queue_wait\"} 1"));
        assert!(text.contains("qbs_slow_queries_total 1"));
    }

    #[test]
    fn stage_nanos_render_is_parseable() {
        let mut s = StageNanos::default();
        s.set(Stage::GuidedSearch, 2_500);
        s.set(Stage::QueueWait, 1_000_000);
        let line = s.render_us();
        assert!(line.contains("guided_search_us=2"));
        assert!(line.contains("queue_wait_us=1000"));
        assert!(line.contains("planner_us=0"));
    }

    #[test]
    fn trace_ids_render_as_fixed_width_hex() {
        assert_eq!(TraceId(0xdeadbeef).to_string(), "0x00000000deadbeef");
        assert!(TraceId::NONE.is_none());
        assert!(!TraceId(1).is_none());
    }
}
