//! Parallel labelling construction (§5.3).
//!
//! Lemma 5.2 shows the labelling scheme is *deterministic* with respect to
//! the landmark set: unlike PLL-style indexes, no landmark ordering is
//! involved, so the per-landmark BFSs of Algorithm 2 are independent and can
//! run on separate threads. This module runs them on the rayon thread pool;
//! the result is bit-identical to [`crate::labelling::build_sequential`]
//! (which the property tests assert), only faster — the paper reports 6–12×
//! speed-ups with 12 threads (Table 2, QbS-P vs QbS).

use rayon::prelude::*;

use qbs_graph::{Graph, VertexId};

use crate::labelling::{assemble, landmark_bfs, landmark_column_map, LabellingScheme};

/// Builds the labelling scheme with one rayon task per landmark.
pub fn build_parallel(graph: &Graph, landmarks: &[VertexId]) -> LabellingScheme {
    let landmark_column = landmark_column_map(graph, landmarks);
    let columns = (0..landmarks.len())
        .into_par_iter()
        .map(|i| landmark_bfs(graph, landmarks, &landmark_column, i))
        .collect();
    assemble(graph, landmarks, columns)
}

/// Builds the labelling scheme on a dedicated pool with `threads` workers,
/// used by the Table 2 construction-time experiment to control parallelism
/// explicitly (the paper uses up to 12 threads).
///
/// Pool-creation failures surface as [`crate::QbsError::ThreadPool`]
/// instead of panicking, so callers (CLI builds, the experiment harness)
/// can report them like any other build problem.
pub fn build_with_threads(
    graph: &Graph,
    landmarks: &[VertexId],
    threads: usize,
) -> crate::Result<LabellingScheme> {
    if threads <= 1 {
        return Ok(crate::labelling::build_sequential(graph, landmarks));
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| crate::QbsError::ThreadPool(format!("failed to build rayon pool: {e}")))?;
    Ok(pool.install(|| build_parallel(graph, landmarks)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labelling::build_sequential;
    use qbs_graph::fixtures::{figure4_graph, figure4_landmarks};

    #[test]
    fn parallel_equals_sequential_on_figure4() {
        let g = figure4_graph();
        let landmarks = figure4_landmarks();
        assert_eq!(
            build_parallel(&g, &landmarks),
            build_sequential(&g, &landmarks)
        );
    }

    #[test]
    fn parallel_is_independent_of_landmark_order() {
        // Lemma 5.2: the scheme depends only on the landmark *set*; only the
        // column order changes when the set is permuted.
        let g = figure4_graph();
        let a = build_parallel(&g, &[1, 2, 3]);
        let b = build_parallel(&g, &[3, 1, 2]);
        assert_eq!(a.labelling.total_entries(), b.labelling.total_entries());
        assert_eq!(a.meta_edges.len(), b.meta_edges.len());
        // Same per-vertex entry contents after mapping columns to vertices.
        for v in g.vertices() {
            let mut ea: Vec<(u32, u32)> = a
                .labelling
                .entries(v)
                .map(|(i, d)| (a.landmarks[i], d))
                .collect();
            let mut eb: Vec<(u32, u32)> = b
                .labelling
                .entries(v)
                .map(|(i, d)| (b.landmarks[i], d))
                .collect();
            ea.sort_unstable();
            eb.sort_unstable();
            assert_eq!(ea, eb, "labels of vertex {v}");
        }
    }

    #[test]
    fn explicit_thread_counts_give_identical_schemes() {
        let g = figure4_graph();
        let landmarks = figure4_landmarks();
        let seq = build_with_threads(&g, &landmarks, 1).expect("sequential fallback");
        let par = build_with_threads(&g, &landmarks, 4).expect("dedicated pool");
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_landmark_set_produces_empty_scheme() {
        let g = figure4_graph();
        let scheme = build_parallel(&g, &[]);
        assert_eq!(scheme.labelling.total_entries(), 0);
        assert!(scheme.meta_edges.is_empty());
    }
}
