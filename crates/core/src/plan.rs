//! The batch execution planner behind [`QueryEngine::submit`].
//!
//! Serving traffic is skewed: hot sources and repeated pairs dominate real
//! batches. The planner exploits three kinds of intra-batch redundancy
//! without changing a single answered bit:
//!
//! 1. **Coalescing** — requests are grouped by their normalised cache key
//!    (`(u, v, mode)`, distance orientation-free). Each distinct key is
//!    computed once and the canonical answer body is shaped into every
//!    duplicate slot, so duplicates cost one search, one cache lookup and
//!    at most one admission.
//! 2. **Label/sketch memoization** — each endpoint's effective label is
//!    fetched once per worker per batch through the epoch-stamped
//!    [`LabelMemo`](crate::workspace), instead of once per query the
//!    endpoint appears in; `SketchBounds` are then derived from the memo.
//! 3. **Source-grouped scheduling with a shared forward BFS** — distance
//!    jobs are sorted so same-source runs are contiguous, a whole run is
//!    claimed by one worker, and consecutive queries of the run resume one
//!    forward BFS ([`crate::search`]'s `guided_distance_resumed`) instead
//!    of re-expanding it from scratch. BFS levels from a fixed source on
//!    the fixed sparsified graph `G⁻` are canonical, and the resumed
//!    search reveals them under a per-query level cap that replays the
//!    vanilla schedule step for step — so the shared path is bit-identical
//!    by construction, not merely by Eq. 5's schedule-independence.
//!
//! Only `QueryMode::Distance` jobs whose endpoints are distinct
//! non-landmark vertices take the shared path; everything else (path
//! graphs, sketches, landmark endpoints, self pairs) runs the vanilla
//! per-query pipeline inside the same fan-out. Requests with an
//! out-of-range endpoint are never coalesced: each keeps its exact
//! per-slot error payload and cache-counter behaviour.
//!
//! The planner publishes its effectiveness through [`PlannerCounters`]:
//! coalesced duplicate slots, memoized label fetches, and forward-BFS
//! levels served from retained state. The snapshot rides in
//! [`crate::EngineStats`] and therefore across the wire to
//! `qbs client --stats`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use qbs_graph::VertexId;

use crate::cache::AnswerCache;
use crate::engine::{QueryEngine, CLAIM_CHUNK};
use crate::obs::Stage;
use crate::request::{self, AnswerBody, QueryMode, QueryOutcome, QueryRequest};
use crate::search;
use crate::sketch;
use crate::store::IndexStore;
use crate::workspace::QueryWorkspace;

/// Shared atomic counters of planner effectiveness. One instance lives in
/// each [`QueryEngine`] (the [`crate::Qbs`] façade threads a single
/// instance through its transient engines so the counts accumulate for
/// the session's lifetime).
#[derive(Debug, Default)]
pub struct PlannerCounters {
    dedup_hits: AtomicU64,
    labels_memoized: AtomicU64,
    fwd_levels_reused: AtomicU64,
}

impl PlannerCounters {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> PlannerStats {
        PlannerStats {
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            labels_memoized: self.labels_memoized.load(Ordering::Relaxed),
            fwd_levels_reused: self.fwd_levels_reused.load(Ordering::Relaxed),
        }
    }

    fn add(&self, dedup: u64, labels: u64, levels: u64) {
        if dedup > 0 {
            self.dedup_hits.fetch_add(dedup, Ordering::Relaxed);
        }
        if labels > 0 {
            self.labels_memoized.fetch_add(labels, Ordering::Relaxed);
        }
        if levels > 0 {
            self.fwd_levels_reused.fetch_add(levels, Ordering::Relaxed);
        }
    }
}

/// Snapshot of the [`PlannerCounters`] — the planner's section of
/// [`crate::EngineStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Duplicate batch slots served from another slot's computation.
    pub dedup_hits: u64,
    /// Effective-label fetches answered from the per-batch memo.
    pub labels_memoized: u64,
    /// Forward-BFS levels revealed from retained same-source state
    /// instead of being re-expanded.
    pub fwd_levels_reused: u64,
}

/// One unit of planned work: a distinct request key plus every batch slot
/// it answers.
struct Job {
    /// Canonical request (the first occurrence's orientation).
    request: QueryRequest,
    /// Batch slots this job's answer fans out to.
    slots: Vec<u32>,
    /// At least one slot opted into the cache.
    any_cached: bool,
    /// Both endpoints in range (out-of-range jobs replay the vanilla
    /// error path slot by slot).
    in_range: bool,
    /// Eligible for the shared forward BFS: distance mode, distinct
    /// non-landmark endpoints.
    shareable: bool,
    /// The endpoint the shared forward BFS roots at (the batch-hotter of
    /// the two — distance answers are orientation-free).
    group_source: VertexId,
}

fn mode_tag(mode: QueryMode) -> u8 {
    match mode {
        QueryMode::Distance => 0,
        QueryMode::PathGraph => 1,
        QueryMode::Sketch => 2,
    }
}

/// The coalescing key: the request's cache key. Distance is symmetric, so
/// both orientations fold into one job; path-graph and sketch answers
/// record their endpoints and keep their orientation.
fn normalized_key(req: &QueryRequest) -> (VertexId, VertexId, u8) {
    match req.mode {
        QueryMode::Distance => (
            req.source.min(req.target),
            req.source.max(req.target),
            mode_tag(req.mode),
        ),
        _ => (req.source, req.target, mode_tag(req.mode)),
    }
}

/// Plans and executes a batch: coalesce → group by source → fan out over
/// the worker pool with whole same-source runs claimed atomically.
pub(crate) fn submit_planned<S: IndexStore>(
    engine: &QueryEngine<'_, S>,
    requests: &[QueryRequest],
) -> Vec<QueryOutcome> {
    let store = engine.store();
    let n = store.num_vertices();
    let landmarks = store.landmark_filter();
    let obs = engine.obs();
    let t_plan = obs.map(|_| std::time::Instant::now());

    // 1. Coalesce slots into jobs keyed by normalised request.
    let mut jobs: Vec<Job> = Vec::new();
    let mut by_key: HashMap<(VertexId, VertexId, u8), usize> =
        HashMap::with_capacity(requests.len());
    for (slot, req) in requests.iter().enumerate() {
        let in_range = (req.source as usize) < n && (req.target as usize) < n;
        if !in_range {
            // Error payloads are orientation-sensitive and every vanilla
            // execution counts its own cache miss — keep each slot solo.
            jobs.push(Job {
                request: *req,
                slots: vec![slot as u32],
                any_cached: req.opts.use_cache,
                in_range: false,
                shareable: false,
                group_source: req.source,
            });
            continue;
        }
        match by_key.entry(normalized_key(req)) {
            Entry::Occupied(e) => {
                let job = &mut jobs[*e.get()];
                job.slots.push(slot as u32);
                job.any_cached |= req.opts.use_cache;
            }
            Entry::Vacant(e) => {
                e.insert(jobs.len());
                let shareable = req.mode == QueryMode::Distance
                    && req.source != req.target
                    && !landmarks.contains(req.source)
                    && !landmarks.contains(req.target);
                jobs.push(Job {
                    request: *req,
                    slots: vec![slot as u32],
                    any_cached: req.opts.use_cache,
                    in_range: true,
                    shareable,
                    group_source: req.source,
                });
            }
        }
    }
    let dedup_hits = (requests.len() - jobs.len()) as u64;

    // 2. Root every shareable job at its batch-hotter endpoint, so a hot
    //    vertex pulls all its pairs into one forward-BFS group even when
    //    it appears as `target` (distance is orientation-free). Ties pick
    //    the smaller id, deterministically.
    let mut freq: HashMap<VertexId, u32> = HashMap::new();
    for job in jobs.iter().filter(|j| j.shareable) {
        *freq.entry(job.request.source).or_insert(0) += 1;
        *freq.entry(job.request.target).or_insert(0) += 1;
    }
    for job in jobs.iter_mut().filter(|j| j.shareable) {
        let (u, v) = (job.request.source, job.request.target);
        let (fu, fv) = (freq[&u], freq[&v]);
        job.group_source = if fv > fu || (fv == fu && v < u) { v } else { u };
    }

    // 3. Schedule: shareable jobs first, stably sorted by group source so
    //    same-source runs are contiguous; everything else keeps input
    //    order. A multi-job run is claimed whole by one worker (that is
    //    what keeps the resumable forward side hot) — but long runs are
    //    split into claim-sized units so a skewed head vertex spreads
    //    over the pool instead of serialising on one worker. Splitting
    //    costs at most one forward re-root per worker per source: a
    //    worker that claims consecutive units of the same run resumes
    //    straight through the boundary (the retained origin still
    //    matches). Leftovers are packed into CLAIM_CHUNK-sized units
    //    like the vanilla fan-out.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| {
        if jobs[i].shareable {
            (0u8, jobs[i].group_source)
        } else {
            (1u8, 0)
        }
    });
    let same_group = |a: usize, b: usize| {
        let (ja, jb) = (&jobs[order[a]], &jobs[order[b]]);
        ja.shareable && jb.shareable && ja.group_source == jb.group_source
    };
    let run_cap = order
        .len()
        .div_ceil(engine.threads().max(1) * 4)
        .max(CLAIM_CHUNK);
    // Each unit remembers whether it came from a multi-job run: only
    // those take the resumed-search path. A singleton group gains
    // nothing from resumable state, so it runs the vanilla per-query
    // pipeline and skews no uniform-traffic baseline.
    let mut units: Vec<(std::ops::Range<usize>, bool)> = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && same_group(j - 1, j) {
            j += 1;
        }
        if j - i >= 2 {
            let mut start = i;
            while start < j {
                let end = (start + run_cap).min(j);
                units.push((start..end, true));
                start = end;
            }
            i = j;
        } else {
            let mut k = i + 1;
            while k < order.len() && k - i < CLAIM_CHUNK {
                if k + 1 < order.len() && same_group(k, k + 1) {
                    break; // `k` starts the next same-source run
                }
                k += 1;
            }
            units.push((i..k, false));
            i = k;
        }
    }

    if let (Some(m), Some(t)) = (obs, t_plan) {
        let d = t.elapsed();
        m.record_batch_stage(Stage::Planner, d);
        engine
            .batch_obs()
            .add_one(Stage::Planner, crate::obs::saturating_ns(d));
    }

    // 4. Execute: workers claim whole units off the shared cursor.
    let counters = engine.planner_counters();
    counters.add(dedup_hits, 0, 0);
    let cache = engine.cache_ref();
    let outcome_slots: Vec<OnceLock<QueryOutcome>> =
        (0..requests.len()).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let work = |ws: &mut QueryWorkspace| {
        ws.obs.enabled = obs.is_some();
        ws.label_memo.begin_batch(n);
        let mut reused_levels = 0u64;
        loop {
            let u = cursor.fetch_add(1, Ordering::Relaxed);
            if u >= units.len() {
                break;
            }
            let (range, from_run) = &units[u];
            for &job_idx in &order[range.clone()] {
                let t = ws.obs.start();
                run_job(
                    store,
                    ws,
                    &jobs[job_idx],
                    *from_run,
                    requests,
                    cache,
                    &outcome_slots,
                    &mut reused_levels,
                );
                ws.obs.stop(Stage::Execute, t);
                if let Some(m) = obs {
                    // Flushed per job, not per slot: a coalesced job runs
                    // one computation, so it contributes one sample.
                    let ns = ws.obs.take();
                    m.record_request(jobs[job_idx].request.mode, &ns);
                    engine.batch_obs().add(&ns);
                }
            }
        }
        ws.obs.enabled = false;
        counters.add(0, ws.label_memo.take_hits(), reused_levels);
    };

    let workers = engine.threads().min(units.len()).max(1);
    if workers == 1 {
        let mut ws = engine.checkout();
        work(&mut ws);
        engine.checkin(ws);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ws = engine.checkout();
                    work(&mut ws);
                    engine.checkin(ws);
                });
            }
        });
    }

    outcome_slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled by the planner"))
        .collect()
}

/// Executes one job and fans the answer out to all of its slots.
///
/// Cache discipline (the documented duplicate-request rule): one lookup
/// per distinct key when any of its slots opted in, at most one admission
/// on miss — duplicates never multiply the cache counters, while
/// `EngineStats.requests` still counts every slot.
#[allow(clippy::too_many_arguments)]
fn run_job<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    job: &Job,
    from_run: bool,
    requests: &[QueryRequest],
    cache: Option<&AnswerCache>,
    outcome_slots: &[OnceLock<QueryOutcome>],
    reused_levels: &mut u64,
) {
    if !job.in_range {
        for &slot in &job.slots {
            let req = &requests[slot as usize];
            let outcome = request::execute_cached_on(store, ws, req, cache);
            fill_slot(outcome_slots, slot, outcome);
        }
        return;
    }

    let canonical = &job.request;
    let job_cache = cache.filter(|_| job.any_cached);
    if let Some(c) = job_cache {
        let t = ws.obs.start();
        let hit = c.lookup_body(canonical);
        ws.obs.stop(Stage::CacheLookup, t);
        if let Some(body) = hit {
            for &slot in &job.slots {
                let opts = &requests[slot as usize].opts;
                fill_slot(outcome_slots, slot, body.shape(opts));
            }
            return;
        }
    }

    let computed = if job.shareable && from_run {
        let u = job.group_source;
        let v = if canonical.source == u {
            canonical.target
        } else {
            canonical.source
        };
        let t = ws.obs.start();
        let src_slot = ws.label_memo.ensure(store, u);
        let tgt_slot = ws.label_memo.ensure(store, v);
        let bounds = sketch::compute_bounds(
            store,
            ws.label_memo.entry(src_slot),
            ws.label_memo.entry(tgt_slot),
        );
        ws.obs.stop(Stage::SketchBound, t);
        let t = ws.obs.start();
        let (distance, _stats) =
            search::guided_distance_resumed(store, ws, u, v, &bounds, reused_levels);
        ws.obs.stop(Stage::GuidedSearch, t);
        Ok((AnswerBody::Distance(distance), bounds.upper_bound))
    } else {
        request::compute_on(store, ws, canonical)
    };

    match computed {
        Ok((body, hint)) => {
            if let Some(c) = job_cache {
                let t = ws.obs.start();
                c.admit(canonical, &body, hint);
                ws.obs.stop(Stage::CacheAdmit, t);
            }
            let (&last, rest) = job.slots.split_last().expect("job owns at least one slot");
            for &slot in rest {
                let opts = &requests[slot as usize].opts;
                fill_slot(outcome_slots, slot, body.shape(opts));
            }
            fill_slot(
                outcome_slots,
                last,
                body.shape_into(&requests[last as usize].opts),
            );
        }
        Err(err) => {
            for &slot in &job.slots {
                fill_slot(outcome_slots, slot, QueryOutcome::Error(err.clone()));
            }
        }
    }
}

fn fill_slot(slots: &[OnceLock<QueryOutcome>], slot: u32, outcome: QueryOutcome) {
    slots[slot as usize]
        .set(outcome)
        .unwrap_or_else(|_| panic!("slot {slot} filled twice"));
}
