//! The [`QbsIndex`] façade: build once, query many times.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use qbs_graph::{Distance, Graph, PathGraph, VertexFilter, VertexId};

use crate::labelling::{self, LabellingScheme, PathLabelling};
use crate::landmark::LandmarkStrategy;
use crate::meta_graph::MetaGraph;
use crate::parallel;
use crate::search::{self, SearchStats};
use crate::sketch::{self, Sketch};
use crate::stats::IndexStats;
use crate::store::IndexStore;
use crate::workspace::QueryWorkspace;
use crate::QbsError;

/// Configuration of an index build.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QbsConfig {
    /// How landmarks are chosen. Default: the 20 highest-degree vertices.
    pub landmarks: LandmarkStrategy,
    /// Build the labelling with the rayon thread pool (§5.3). The resulting
    /// index is identical either way (Lemma 5.2).
    pub parallel_labelling: bool,
    /// Thread count for the parallel build; `None` lets rayon decide.
    pub threads: Option<usize>,
}

impl Default for QbsConfig {
    fn default() -> Self {
        QbsConfig {
            landmarks: LandmarkStrategy::default(),
            parallel_labelling: true,
            threads: None,
        }
    }
}

impl QbsConfig {
    /// The paper's default configuration with a custom landmark count.
    pub fn with_landmark_count(count: usize) -> Self {
        QbsConfig {
            landmarks: LandmarkStrategy::HighestDegree { count },
            ..Default::default()
        }
    }

    /// A configuration with an explicit landmark set (used in tests that
    /// mirror the paper's worked example).
    pub fn with_explicit_landmarks(landmarks: Vec<VertexId>) -> Self {
        QbsConfig {
            landmarks: LandmarkStrategy::Explicit(landmarks),
            ..Default::default()
        }
    }

    /// Forces a sequential labelling build (the "QbS" rows of Table 2, as
    /// opposed to "QbS-P").
    pub fn sequential(mut self) -> Self {
        self.parallel_labelling = false;
        self
    }
}

/// Timing breakdown of an index build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildTimings {
    /// Landmark selection time.
    pub landmark_selection: Duration,
    /// Labelling construction time (Algorithm 2 over all landmarks).
    pub labelling: Duration,
    /// Meta-graph assembly: APSP plus the Δ path graphs.
    pub meta_graph: Duration,
    /// End-to-end build time.
    pub total: Duration,
}

/// A query answer together with the search statistics behind it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// The shortest path graph.
    pub path_graph: PathGraph,
    /// The sketch used to guide the search.
    pub sketch: Sketch,
    /// Work counters of the guided search.
    pub stats: SearchStats,
}

/// The Query-by-Sketch index.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QbsIndex {
    graph: Graph,
    landmarks: Vec<VertexId>,
    landmark_filter: VertexFilter,
    landmark_column: Vec<u32>,
    labelling: PathLabelling,
    meta: MetaGraph,
    timings: BuildTimings,
}

impl QbsIndex {
    /// Builds an index over `graph` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the build fails (today that only happens when a
    /// dedicated labelling thread pool cannot be created); use
    /// [`QbsIndex::try_build`] to handle such failures.
    pub fn build(graph: Graph, config: QbsConfig) -> Self {
        Self::try_build(graph, config).expect("index build failed")
    }

    /// Builds an index over `graph`, surfacing build-environment failures
    /// (e.g. [`QbsError::ThreadPool`]) instead of panicking.
    pub fn try_build(graph: Graph, config: QbsConfig) -> crate::Result<Self> {
        let total_start = Instant::now();

        let t = Instant::now();
        let landmarks = config.landmarks.select(&graph);
        let landmark_selection = t.elapsed();

        let t = Instant::now();
        let scheme: LabellingScheme = if config.parallel_labelling {
            match config.threads {
                Some(threads) => parallel::build_with_threads(&graph, &landmarks, threads)?,
                None => parallel::build_parallel(&graph, &landmarks),
            }
        } else {
            labelling::build_sequential(&graph, &landmarks)
        };
        let labelling_time = t.elapsed();

        let t = Instant::now();
        let meta = MetaGraph::build(&graph, &landmarks, &scheme.meta_edges);
        let meta_time = t.elapsed();

        let landmark_filter =
            VertexFilter::from_vertices(graph.num_vertices(), landmarks.iter().copied());
        let landmark_column = labelling::landmark_column_map(&graph, &landmarks);

        Ok(QbsIndex {
            graph,
            landmarks,
            landmark_filter,
            landmark_column,
            labelling: scheme.labelling,
            meta,
            timings: BuildTimings {
                landmark_selection,
                labelling: labelling_time,
                meta_graph: meta_time,
                total: total_start.elapsed(),
            },
        })
    }

    /// Builds with the paper's default configuration (20 highest-degree
    /// landmarks, parallel labelling).
    pub fn build_default(graph: Graph) -> Self {
        Self::build(graph, QbsConfig::default())
    }

    /// Reassembles an index from its persisted parts, recomputing only the
    /// derived lookup structures (landmark filter and column map, both
    /// `O(|V|)` bitmap fills). Build timings are not persisted, so they
    /// read as zero on a loaded index.
    pub(crate) fn from_parts(
        graph: Graph,
        landmarks: Vec<VertexId>,
        labelling: PathLabelling,
        meta: MetaGraph,
    ) -> Self {
        let landmark_filter =
            VertexFilter::from_vertices(graph.num_vertices(), landmarks.iter().copied());
        let landmark_column = labelling::landmark_column_map(&graph, &landmarks);
        QbsIndex {
            graph,
            landmarks,
            landmark_filter,
            landmark_column,
            labelling,
            meta,
            timings: BuildTimings::default(),
        }
    }

    /// Serialises the index into a `qbs-index-v2` flat binary buffer (see
    /// [`crate::format`]).
    pub fn to_v2_bytes(&self) -> crate::Result<Vec<u8>> {
        crate::format::write_v2(self)
    }

    /// The index as a parsed [`crate::format::IndexView`]: serialises into
    /// a fresh heap buffer and re-opens it as a validated zero-copy view.
    ///
    /// # Panics
    ///
    /// Panics if the landmark count exceeds the format's 16-bit budget
    /// (65535); use [`QbsIndex::to_v2_bytes`] plus
    /// [`crate::format::IndexView::parse`] for a fallible pipeline.
    pub fn as_view(&self) -> crate::format::IndexView {
        let bytes = self.to_v2_bytes().expect("index fits the v2 format");
        crate::format::IndexView::parse(crate::format::ViewBuf::Heap(bytes))
            .expect("freshly written v2 buffer is valid")
    }

    /// Restores an index from a validated v2 view.
    ///
    /// Queries answered by the result are bit-identical to those of the
    /// index that produced the view. The view was structurally validated at
    /// parse time, so this cannot panic on corrupt input — corruption is
    /// reported by [`crate::format::IndexView::parse`] instead.
    pub fn from_view(view: &crate::format::IndexView) -> Self {
        let (graph, landmarks, labelling, meta) = view.materialize();
        QbsIndex::from_parts(graph, landmarks, labelling, meta)
    }

    /// Serialises the index into a `qbs-index-v3` compact binary buffer
    /// (see [`crate::format`]): header-declared width profile, front-coded
    /// varint label/adjacency runs, narrow APSP/Δ tables.
    pub fn to_v3_bytes(&self) -> crate::Result<Vec<u8>> {
        crate::format::write_v3(self)
    }

    /// The index as a parsed [`crate::format::CompactView`]: serialises
    /// into a fresh heap buffer in the compact v3 profile and re-opens it
    /// as a validated zero-copy view.
    pub fn as_compact_view(&self) -> crate::Result<crate::format::CompactView> {
        let bytes = self.to_v3_bytes()?;
        crate::format::CompactView::parse(crate::format::ViewBuf::Heap(bytes))
    }

    /// Restores an index from a validated v3 compact view.
    ///
    /// The compact profile is lossless: the materialised index is
    /// bit-identical (labels, adjacency, meta-graph, Δ edge order) to the
    /// one that produced the view.
    pub fn from_compact_view(view: &crate::format::CompactView) -> Self {
        let (graph, landmarks, labelling, meta) = view.materialize();
        QbsIndex::from_parts(graph, landmarks, labelling, meta)
    }

    /// The indexed graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The landmark set `R` in column order.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// The path labelling `L`.
    pub fn labelling(&self) -> &PathLabelling {
        &self.labelling
    }

    /// The meta-graph (with APSP and Δ).
    pub fn meta_graph(&self) -> &MetaGraph {
        &self.meta
    }

    /// Build-phase timing breakdown.
    pub fn timings(&self) -> BuildTimings {
        self.timings
    }

    /// Size and timing statistics (the per-dataset rows of Tables 2 and 3).
    pub fn stats(&self) -> IndexStats {
        IndexStats::from_index(self)
    }

    /// Whether `v` is a landmark.
    pub fn is_landmark(&self, v: VertexId) -> bool {
        (v as usize) < self.landmark_column.len() && self.landmark_column[v as usize] != u32::MAX
    }

    /// The effective label of a vertex: its path label, or the synthetic
    /// `{(itself, 0)}` when the vertex is a landmark.
    pub fn effective_label(&self, v: VertexId) -> Vec<(usize, Distance)> {
        let mut out = Vec::new();
        self.fill_effective_label(v, &mut out);
        out
    }

    /// Fills `buf` with the effective label of `v`, reusing its capacity
    /// (the allocation-free sibling of [`QbsIndex::effective_label`] used by
    /// the workspace query path).
    pub fn fill_effective_label(&self, v: VertexId, buf: &mut Vec<(usize, Distance)>) {
        buf.clear();
        let col = self.landmark_column[v as usize];
        if col != u32::MAX {
            buf.push((col as usize, 0));
        } else {
            buf.extend(self.labelling.entries(v));
        }
    }

    /// Computes the sketch for a query (Algorithm 3) without running the
    /// search — used by the Figure 8 coverage analysis and by callers that
    /// only need the distance upper bound.
    ///
    /// Returns [`QbsError::VertexOutOfRange`] for endpoints outside the
    /// indexed graph.
    pub fn sketch(&self, source: VertexId, target: VertexId) -> crate::Result<Sketch> {
        sketch_on(self, source, target)
    }

    /// Answers `SPG(source, target)` on a throwaway workspace.
    ///
    /// Thin wrapper over the request pipeline's [`query_on`] executor —
    /// the typed equivalent is
    /// `execute_on(&index, ws, &QueryRequest::path_graph(u, v))` (see
    /// [`crate::request`] and the migration table in `docs/api.md`).
    /// Returns [`QbsError::VertexOutOfRange`] for endpoints outside the
    /// indexed graph. Hot loops should hold a [`QueryWorkspace`] (or use a
    /// [`crate::engine::QueryEngine`]) and call [`QbsIndex::query_with`];
    /// serving deployments should prefer the [`crate::session::Qbs`]
    /// façade.
    pub fn query(&self, source: VertexId, target: VertexId) -> crate::Result<PathGraph> {
        Ok(self.query_with_stats(source, target)?.path_graph)
    }

    /// Answers `SPG(source, target)`, returning the sketch and search
    /// statistics alongside the path graph.
    ///
    /// Returns [`QbsError::VertexOutOfRange`] for endpoints outside the
    /// indexed graph.
    pub fn query_with_stats(
        &self,
        source: VertexId,
        target: VertexId,
    ) -> crate::Result<QueryAnswer> {
        let mut ws = QueryWorkspace::new();
        self.query_with(&mut ws, source, target)
    }

    /// Answers `SPG(source, target)` reusing the buffers of `ws`.
    ///
    /// This is the workhorse behind every other query entry point. In the
    /// steady state (workspace warmed up to the graph size) the search
    /// itself performs no `O(|V|)` allocations or clears — the only heap
    /// activity is the storage owned by the returned [`QueryAnswer`]
    /// (answer edges and sketch hops). Results are bit-identical to
    /// [`QbsIndex::query`].
    pub fn query_with(
        &self,
        ws: &mut QueryWorkspace,
        source: VertexId,
        target: VertexId,
    ) -> crate::Result<QueryAnswer> {
        query_on(self, ws, source, target)
    }

    /// Shortest-path distance between two vertices (a by-product of the
    /// guided search; exposed because distance queries are the classic use
    /// of 2-hop labellings). Thin wrapper over the pipeline's
    /// [`distance_on`] executor — the typed equivalent is
    /// [`crate::request::QueryRequest::distance`].
    pub fn distance(&self, source: VertexId, target: VertexId) -> crate::Result<Distance> {
        let mut ws = QueryWorkspace::new();
        self.distance_with(&mut ws, source, target)
    }

    /// Shortest-path distance reusing the buffers of `ws`.
    ///
    /// Unlike [`QbsIndex::query_with`] this skips the sketch's edge lists
    /// and the reverse/recover materialisation (Eq. 5 needs only
    /// `min(d_{G⁻}, d⊤)`), so with a warmed-up workspace the entire call is
    /// allocation-free.
    pub fn distance_with(
        &self,
        ws: &mut QueryWorkspace,
        source: VertexId,
        target: VertexId,
    ) -> crate::Result<Distance> {
        distance_on(self, ws, source, target)
    }
}

/// The owned index *is* a storage backend: every accessor reads the
/// materialised structures. [`crate::store::ViewStore`] provides the same
/// interface over a raw `qbs-index-v2` buffer; [`query_on`] and friends
/// accept either.
impl IndexStore for QbsIndex {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    #[inline]
    fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    #[inline]
    fn landmark(&self, idx: usize) -> VertexId {
        self.landmarks[idx]
    }

    #[inline]
    fn landmark_filter(&self) -> &VertexFilter {
        &self.landmark_filter
    }

    #[inline]
    fn landmark_column(&self, v: VertexId) -> Option<usize> {
        match self.landmark_column[v as usize] {
            u32::MAX => None,
            col => Some(col as usize),
        }
    }

    #[inline]
    fn is_landmark(&self, v: VertexId) -> bool {
        QbsIndex::is_landmark(self, v)
    }

    #[inline]
    fn label_distance(&self, v: VertexId, landmark_idx: usize) -> Option<Distance> {
        self.labelling.get(v, landmark_idx)
    }

    fn fill_label_entries(&self, v: VertexId, out: &mut Vec<(usize, Distance)>) {
        out.extend(self.labelling.entries(v));
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut visit: F) {
        for &w in self.graph.neighbors(v) {
            visit(w);
        }
    }

    #[inline]
    fn meta_distance(&self, i: usize, j: usize) -> Distance {
        self.meta.distance(i, j)
    }

    #[inline]
    fn num_meta_edges(&self) -> usize {
        self.meta.edges().len()
    }

    #[inline]
    fn meta_edge(&self, k: usize) -> (usize, usize, Distance) {
        self.meta.edges()[k]
    }

    #[inline]
    fn meta_edge_index(&self, i: usize, j: usize) -> Option<usize> {
        self.meta.edge_index(i, j)
    }

    fn for_each_delta_edge<F: FnMut(VertexId, VertexId)>(&self, k: usize, mut visit: F) {
        for &(a, b) in self.meta.delta_edges(k) {
            visit(a, b);
        }
    }
}

/// Rejects query endpoints outside the store's vertex range with
/// [`QbsError::VertexOutOfRange`] — the bounds check shared by every public
/// query entry point, owned and view-backed alike.
fn check_vertex<S: IndexStore>(store: &S, v: VertexId) -> crate::Result<()> {
    if (v as usize) < store.num_vertices() {
        Ok(())
    } else {
        Err(QbsError::VertexOutOfRange {
            vertex: v as u64,
            num_vertices: store.num_vertices() as u64,
        })
    }
}

/// Answers `SPG(source, target)` on any [`IndexStore`] backend, reusing the
/// buffers of `ws`.
///
/// This is the backend-generic workhorse: [`QbsIndex::query_with`] is a
/// thin wrapper over it, and [`crate::engine::QueryEngine`] calls it
/// directly so a view-backed engine serves queries with **zero** index
/// materialisation. Answers are bit-identical across backends.
pub fn query_on<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    source: VertexId,
    target: VertexId,
) -> crate::Result<QueryAnswer> {
    check_vertex(store, source)?;
    check_vertex(store, target)?;
    if source == target {
        ws.record_query();
        let sketch = Sketch::unreachable(source, target);
        let stats = SearchStats {
            distance: 0,
            ..SearchStats::default()
        };
        return Ok(QueryAnswer {
            path_graph: PathGraph::trivial(source),
            sketch,
            stats,
        });
    }
    store.fill_effective_label(source, &mut ws.src_label);
    store.fill_effective_label(target, &mut ws.tgt_label);
    let t = ws.obs.start();
    let sketch = sketch::compute(store, source, target, &ws.src_label, &ws.tgt_label);
    ws.obs.stop(crate::obs::Stage::SketchBound, t);
    let t = ws.obs.start();
    let (path_graph, stats) = search::guided_search_with(store, ws, source, target, &sketch);
    ws.obs.stop(crate::obs::Stage::GuidedSearch, t);
    Ok(QueryAnswer {
        path_graph,
        sketch,
        stats,
    })
}

/// Shortest-path distance on any [`IndexStore`] backend, reusing the
/// buffers of `ws` (the allocation-free sibling of [`query_on`]).
pub fn distance_on<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    source: VertexId,
    target: VertexId,
) -> crate::Result<Distance> {
    Ok(distance_with_bounds_on(store, ws, source, target)?.0)
}

/// [`distance_on`] that also surfaces the sketch bounds it computed — the
/// request pipeline uses the upper bound `d⊤` as its cache-admission cost
/// hint without paying for a second label intersection.
pub(crate) fn distance_with_bounds_on<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    source: VertexId,
    target: VertexId,
) -> crate::Result<(Distance, sketch::SketchBounds)> {
    check_vertex(store, source)?;
    check_vertex(store, target)?;
    if source == target {
        ws.record_query();
        return Ok((
            0,
            sketch::SketchBounds {
                upper_bound: 0,
                source_budget: 0,
                target_budget: 0,
            },
        ));
    }
    store.fill_effective_label(source, &mut ws.src_label);
    store.fill_effective_label(target, &mut ws.tgt_label);
    let t = ws.obs.start();
    let bounds = sketch::compute_bounds(store, &ws.src_label, &ws.tgt_label);
    ws.obs.stop(crate::obs::Stage::SketchBound, t);
    let t = ws.obs.start();
    let (distance, _) = search::guided_distance_with(store, ws, source, target, &bounds);
    ws.obs.stop(crate::obs::Stage::GuidedSearch, t);
    Ok((distance, bounds))
}

/// Computes the sketch of a query on any [`IndexStore`] backend without
/// running the search.
pub fn sketch_on<S: IndexStore>(
    store: &S,
    source: VertexId,
    target: VertexId,
) -> crate::Result<Sketch> {
    check_vertex(store, source)?;
    check_vertex(store, target)?;
    let mut src = Vec::new();
    let mut tgt = Vec::new();
    store.fill_effective_label(source, &mut src);
    store.fill_effective_label(target, &mut tgt);
    Ok(sketch::compute(store, source, target, &src, &tgt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::fixtures::{figure3_graph, figure4_graph, figure4_spg_6_11_edges};

    #[test]
    fn figure4_default_example_end_to_end() {
        let index = QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        );
        assert_eq!(index.landmarks(), &[1, 2, 3]);
        let answer = index.query_with_stats(6, 11).expect("in range");
        assert_eq!(answer.path_graph.distance(), 5);
        assert_eq!(
            answer.path_graph,
            PathGraph::from_edges(6, 11, 5, figure4_spg_6_11_edges())
        );
        assert_eq!(answer.sketch.upper_bound, 5);
        assert_eq!(index.distance(6, 11).unwrap(), 5);
    }

    #[test]
    fn default_config_uses_degree_landmarks() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let mut lm = index.landmarks().to_vec();
        lm.sort_unstable();
        assert_eq!(lm, vec![1, 2, 3]);
        assert!(index.is_landmark(1));
        assert!(!index.is_landmark(7));
    }

    #[test]
    fn sequential_and_parallel_builds_agree() {
        let g = figure3_graph();
        let a = QbsIndex::build(g.clone(), QbsConfig::with_landmark_count(2));
        let b = QbsIndex::build(g, QbsConfig::with_landmark_count(2).sequential());
        assert_eq!(a.labelling(), b.labelling());
        assert_eq!(a.meta_graph(), b.meta_graph());
        for (u, v) in [(3u32, 7u32), (1, 7), (4, 6)] {
            assert_eq!(a.query(u, v).unwrap(), b.query(u, v).unwrap());
        }
    }

    #[test]
    fn trivial_and_error_cases() {
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(2));
        assert_eq!(index.query(5, 5).unwrap().distance(), 0);
        assert!(index.query(0, 99).is_err());
        assert!(index.sketch(99, 0).is_err());
        assert!(index.distance(0, 99).is_err());
        assert!(matches!(
            index.query_with_stats(99, 0).unwrap_err(),
            QbsError::VertexOutOfRange { .. }
        ));
    }

    #[test]
    fn timings_and_stats_are_populated() {
        let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
        let t = index.timings();
        assert!(t.total >= t.labelling);
        let stats = index.stats();
        assert_eq!(stats.num_landmarks, 3);
        assert!(stats.labelling_paper_bytes > 0);
    }

    #[test]
    fn effective_label_of_landmark_is_synthetic_zero() {
        let index = QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        );
        assert_eq!(index.effective_label(2), vec![(1, 0)]);
        assert_eq!(index.effective_label(4), vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn explicit_landmark_count_sweeps_build() {
        // Used heavily by the Figures 9-11 sweeps: building with more
        // landmarks than vertices must clamp, not panic.
        let index = QbsIndex::build(figure3_graph(), QbsConfig::with_landmark_count(100));
        assert_eq!(index.landmarks().len(), figure3_graph().num_vertices());
        assert_eq!(index.query(3, 7).unwrap().distance(), 4);
    }
}
