//! The typed request/response pipeline behind every online entry point.
//!
//! Serving-oriented path systems treat *distance-only* and *full-answer*
//! queries as distinct modes with distinct cost profiles (Agarwal et al.,
//! "Shortest Paths in Less Than a Millisecond"; Jiang et al., hop
//! doubling): a production batch mixes both, plus the occasional
//! sketch-only probe. This module makes that mix first-class:
//!
//! * [`QueryRequest`] — one query: endpoints, a [`QueryMode`], and
//!   per-request [`QueryOptions`];
//! * [`execute_on`] — the single generic executor: dispatches to the
//!   existing sketch/guided-search internals
//!   ([`crate::query::distance_on`], [`crate::query::query_on`],
//!   [`crate::query::sketch_on`]) on any [`IndexStore`] backend;
//! * [`QueryOutcome`] — the per-request response. Failures (an
//!   out-of-range endpoint) are a *value*, not an `Err` of the whole
//!   batch: one poisoned pair costs one error outcome, never the batch.
//!
//! [`crate::engine::QueryEngine::submit`] fans slices of requests out over
//! the concurrent worker pool, and [`crate::cache::AnswerCache`] slots in
//! between the request and the executor (see [`execute_cached_on`]). The
//! single-query entry points (`QbsIndex::query` and friends) are thin
//! wrappers over the same internals — see `docs/api.md` for the
//! migration table.
//!
//! ```
//! use qbs_core::request::{execute_on, QueryMode, QueryRequest};
//! use qbs_core::{QbsConfig, QbsIndex, QueryWorkspace};
//! use qbs_graph::fixtures::figure4_graph;
//!
//! let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
//! let mut ws = QueryWorkspace::new();
//! let outcome = execute_on(&index, &mut ws, &QueryRequest::distance(6, 11));
//! assert_eq!(outcome.distance(), Some(5));
//! // A bad endpoint is an error *outcome*, not a panic or a poisoned batch.
//! let bad = execute_on(&index, &mut ws, &QueryRequest::path_graph(6, 99));
//! assert!(bad.is_error());
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use qbs_graph::{Distance, PathGraph, VertexId};

use crate::cache::AnswerCache;
use crate::query::{self, QueryAnswer};
use crate::sketch::Sketch;
use crate::store::IndexStore;
use crate::workspace::QueryWorkspace;
use crate::QbsError;

/// What a [`QueryRequest`] asks for — the three online query modes.
///
/// Cost profiles differ per mode: [`QueryMode::Sketch`] is the cheapest
/// (`O(|R|²)` landmark algebra, no search), [`QueryMode::Distance`] runs
/// the bounded search without materialising the answer, and
/// [`QueryMode::PathGraph`] pays the full guided search plus the
/// reverse/recover reconstruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryMode {
    /// Only the shortest-path distance `d_G(u, v)`: the cheapest *search*
    /// mode — no sketch edge lists, no reverse/recover materialisation,
    /// and (with a warm workspace) zero heap allocation.
    Distance,
    /// The full shortest path graph (the paper's `SPG(u, v)`), optionally
    /// with the sketch and search statistics behind it
    /// ([`QueryOptions::collect_stats`]).
    PathGraph,
    /// Only the sketch (Algorithm 3): the `O(|R|²)` landmark summary with
    /// the upper bound `d⊤`, no search at all.
    Sketch,
}

impl QueryMode {
    /// All modes, in declaration order.
    pub const ALL: [QueryMode; 3] = [QueryMode::Distance, QueryMode::PathGraph, QueryMode::Sketch];

    /// The CLI/report name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            QueryMode::Distance => "distance",
            QueryMode::PathGraph => "path",
            QueryMode::Sketch => "sketch",
        }
    }
}

impl fmt::Display for QueryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-request execution options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// For [`QueryMode::PathGraph`]: return the sketch and search
    /// statistics alongside the path graph
    /// ([`QueryOutcome::PathGraphWithStats`] instead of
    /// [`QueryOutcome::PathGraph`]). Default `false`.
    pub collect_stats: bool,
    /// Whether this request may be served from (and admitted into) an
    /// answer cache, when the executing engine has one. Default `true`.
    pub use_cache: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            collect_stats: false,
            use_cache: true,
        }
    }
}

/// One typed query: endpoints, mode, and options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Query source vertex.
    pub source: VertexId,
    /// Query target vertex.
    pub target: VertexId,
    /// What to compute.
    pub mode: QueryMode,
    /// How to compute it.
    pub opts: QueryOptions,
}

impl QueryRequest {
    /// A request with default options.
    pub fn new(source: VertexId, target: VertexId, mode: QueryMode) -> Self {
        QueryRequest {
            source,
            target,
            mode,
            opts: QueryOptions::default(),
        }
    }

    /// A distance-only request.
    pub fn distance(source: VertexId, target: VertexId) -> Self {
        Self::new(source, target, QueryMode::Distance)
    }

    /// A full shortest-path-graph request.
    pub fn path_graph(source: VertexId, target: VertexId) -> Self {
        Self::new(source, target, QueryMode::PathGraph)
    }

    /// A sketch-only request.
    pub fn sketch(source: VertexId, target: VertexId) -> Self {
        Self::new(source, target, QueryMode::Sketch)
    }

    /// Asks a [`QueryMode::PathGraph`] request to include the sketch and
    /// search statistics in its outcome.
    pub fn with_stats(mut self) -> Self {
        self.opts.collect_stats = true;
        self
    }

    /// Opts this request out of answer caching (it will neither read nor
    /// populate the engine's cache).
    pub fn uncached(mut self) -> Self {
        self.opts.use_cache = false;
        self
    }
}

/// A per-request failure, carried *inside* a [`QueryOutcome`] so one bad
/// request cannot poison the batch it travelled in.
///
/// Unlike [`QbsError`] this type is `Clone + PartialEq + Serialize`, which
/// is what lets outcomes be compared bit-for-bit across storage backends
/// and stored in reports.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestError {
    /// An endpoint does not exist in the indexed graph.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: u64,
        /// Number of vertices in the indexed graph.
        num_vertices: u64,
    },
    /// No serving backend could answer the request. Produced only by the
    /// scatter/gather routing tier (`qbs route`) when every replica a
    /// request was offered to failed or refused it — a local
    /// `Qbs::submit` never emits this variant, which is what keeps routed
    /// answers bit-identical to local ones whenever replicas are up.
    Unavailable {
        /// Why the routing tier gave up (last failure seen).
        reason: String,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for indexed graph with {num_vertices} vertices"
            ),
            RequestError::Unavailable { reason } => {
                write!(f, "no replica available: {reason}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

impl From<RequestError> for QbsError {
    fn from(err: RequestError) -> Self {
        match err {
            RequestError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => QbsError::VertexOutOfRange {
                vertex,
                num_vertices,
            },
            RequestError::Unavailable { reason } => QbsError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                reason,
            )),
        }
    }
}

/// Converts the executor-internal [`QbsError`] into the per-request form.
/// The online query path can only fail on endpoint validation; anything
/// else would be a bug in the dispatcher.
fn request_error(err: QbsError) -> RequestError {
    match err {
        QbsError::VertexOutOfRange {
            vertex,
            num_vertices,
        } => RequestError::VertexOutOfRange {
            vertex,
            num_vertices,
        },
        other => unreachable!("online query path returned a non-request error: {other}"),
    }
}

/// The response to one [`QueryRequest`]: the mode-shaped answer, or a
/// per-request error.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// Answer of a [`QueryMode::Distance`] request.
    Distance(Distance),
    /// Answer of a [`QueryMode::PathGraph`] request without
    /// [`QueryOptions::collect_stats`].
    PathGraph(Box<PathGraph>),
    /// Answer of a [`QueryMode::PathGraph`] request with
    /// [`QueryOptions::collect_stats`]: the path graph plus the sketch and
    /// search statistics behind it.
    PathGraphWithStats(Box<QueryAnswer>),
    /// Answer of a [`QueryMode::Sketch`] request.
    Sketch(Box<Sketch>),
    /// The request failed; the rest of its batch is unaffected.
    Error(RequestError),
}

impl QueryOutcome {
    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        !self.is_error()
    }

    /// Whether the request failed.
    pub fn is_error(&self) -> bool {
        matches!(self, QueryOutcome::Error(_))
    }

    /// The error of a failed request.
    pub fn error(&self) -> Option<&RequestError> {
        match self {
            QueryOutcome::Error(e) => Some(e),
            _ => None,
        }
    }

    /// The shortest-path distance, when this outcome knows it: a
    /// [`QueryOutcome::Distance`] answer, or the distance of a path-graph
    /// answer.
    pub fn distance(&self) -> Option<Distance> {
        match self {
            QueryOutcome::Distance(d) => Some(*d),
            QueryOutcome::PathGraph(pg) => Some(pg.distance()),
            QueryOutcome::PathGraphWithStats(ans) => Some(ans.path_graph.distance()),
            QueryOutcome::Sketch(_) | QueryOutcome::Error(_) => None,
        }
    }

    /// The path graph of a [`QueryMode::PathGraph`] answer (with or
    /// without stats).
    pub fn path_graph(&self) -> Option<&PathGraph> {
        match self {
            QueryOutcome::PathGraph(pg) => Some(pg),
            QueryOutcome::PathGraphWithStats(ans) => Some(&ans.path_graph),
            _ => None,
        }
    }

    /// The full answer of a stats-collecting path-graph request.
    pub fn answer(&self) -> Option<&QueryAnswer> {
        match self {
            QueryOutcome::PathGraphWithStats(ans) => Some(ans),
            _ => None,
        }
    }

    /// The sketch, when this outcome carries one: a
    /// [`QueryMode::Sketch`] answer, or the sketch of a stats-collecting
    /// path-graph answer.
    pub fn sketch(&self) -> Option<&Sketch> {
        match self {
            QueryOutcome::Sketch(s) => Some(s),
            QueryOutcome::PathGraphWithStats(ans) => Some(&ans.sketch),
            _ => None,
        }
    }

    /// Converts the outcome into a `Result`, surfacing a per-request error
    /// as [`QbsError`] for callers that want the legacy fail-fast shape.
    pub fn into_result(self) -> crate::Result<QueryOutcome> {
        match self {
            QueryOutcome::Error(e) => Err(e.into()),
            ok => Ok(ok),
        }
    }
}

/// The canonical successful payload of a request, *before* per-request
/// shaping: path-graph answers always carry their sketch and statistics
/// here (they are computed by the search regardless), and
/// [`QueryOptions::collect_stats`] decides at delivery time whether the
/// caller sees them. This is also the unit the answer cache stores, so one
/// cached entry serves both stats and non-stats requests identically.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum AnswerBody {
    /// Distance-only answer.
    Distance(Distance),
    /// Full path-graph answer (sketch + stats always present).
    PathGraph(Box<QueryAnswer>),
    /// Sketch-only answer.
    Sketch(Box<Sketch>),
}

impl AnswerBody {
    /// Shapes the body into the outcome the request asked for. Shaping is
    /// deterministic, so a cached body and a fresh body produce
    /// bit-identical outcomes.
    pub(crate) fn shape(&self, opts: &QueryOptions) -> QueryOutcome {
        match self {
            AnswerBody::Distance(d) => QueryOutcome::Distance(*d),
            AnswerBody::PathGraph(ans) => {
                if opts.collect_stats {
                    QueryOutcome::PathGraphWithStats(ans.clone())
                } else {
                    QueryOutcome::PathGraph(Box::new(ans.path_graph.clone()))
                }
            }
            AnswerBody::Sketch(s) => QueryOutcome::Sketch(s.clone()),
        }
    }

    /// Shapes the body by move — the no-cache fast path, which clones
    /// nothing.
    pub(crate) fn shape_into(self, opts: &QueryOptions) -> QueryOutcome {
        match self {
            AnswerBody::Distance(d) => QueryOutcome::Distance(d),
            AnswerBody::PathGraph(ans) => {
                if opts.collect_stats {
                    QueryOutcome::PathGraphWithStats(ans)
                } else {
                    QueryOutcome::PathGraph(Box::new(ans.path_graph))
                }
            }
            AnswerBody::Sketch(s) => QueryOutcome::Sketch(s),
        }
    }
}

/// Runs one request against the store's sketch/guided-search internals,
/// returning the canonical body plus the sketch upper bound `d⊤` of the
/// query — the cache-admission cost hint (a query with a larger landmark
/// upper bound expands a larger search, so it is worth more cache space).
pub(crate) fn compute_on<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    request: &QueryRequest,
) -> Result<(AnswerBody, Distance), RequestError> {
    match request.mode {
        QueryMode::Distance => {
            let (distance, bounds) =
                query::distance_with_bounds_on(store, ws, request.source, request.target)
                    .map_err(request_error)?;
            Ok((AnswerBody::Distance(distance), bounds.upper_bound))
        }
        QueryMode::PathGraph => {
            let answer = query::query_on(store, ws, request.source, request.target)
                .map_err(request_error)?;
            let hint = answer.sketch.upper_bound;
            Ok((AnswerBody::PathGraph(Box::new(answer)), hint))
        }
        QueryMode::Sketch => {
            let t = ws.obs.start();
            let sketch =
                query::sketch_on(store, request.source, request.target).map_err(request_error)?;
            ws.obs.stop(crate::obs::Stage::SketchBound, t);
            let hint = sketch.upper_bound;
            Ok((AnswerBody::Sketch(Box::new(sketch)), hint))
        }
    }
}

/// Executes one [`QueryRequest`] on any [`IndexStore`] backend, reusing
/// the buffers of `ws`.
///
/// This is the single dispatcher every public entry point reduces to:
/// [`QueryMode::Distance`] runs the allocation-free
/// [`crate::query::distance_on`] path, [`QueryMode::PathGraph`] the full
/// [`crate::query::query_on`] guided search, [`QueryMode::Sketch`] the
/// search-free [`crate::query::sketch_on`]. Outcomes are bit-identical
/// across backends.
pub fn execute_on<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    request: &QueryRequest,
) -> QueryOutcome {
    match compute_on(store, ws, request) {
        Ok((body, _hint)) => body.shape_into(&request.opts),
        Err(e) => QueryOutcome::Error(e),
    }
}

/// [`execute_on`] with an optional answer cache in front of the executor.
///
/// When `cache` is `Some` and the request allows it
/// ([`QueryOptions::use_cache`]), the cache is consulted first; on a miss
/// the fresh body is offered back for admission (subject to the cache's
/// sketch-upper-bound admission policy). Cached outcomes are bit-identical
/// to fresh ones: the cache stores the canonical answer body and the
/// same deterministic shaping runs on both paths.
pub fn execute_cached_on<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    request: &QueryRequest,
    cache: Option<&AnswerCache>,
) -> QueryOutcome {
    let Some(cache) = cache.filter(|_| request.opts.use_cache) else {
        return execute_on(store, ws, request);
    };
    let t = ws.obs.start();
    let hit = cache.lookup(request);
    ws.obs.stop(crate::obs::Stage::CacheLookup, t);
    if let Some(outcome) = hit {
        return outcome;
    }
    match compute_on(store, ws, request) {
        Ok((body, hint)) => {
            let t = ws.obs.start();
            cache.admit(request, &body, hint);
            ws.obs.stop(crate::obs::Stage::CacheAdmit, t);
            body.shape_into(&request.opts)
        }
        Err(e) => QueryOutcome::Error(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QbsConfig, QbsIndex};
    use crate::store::ViewStore;
    use qbs_graph::fixtures::figure4_graph;

    fn index() -> QbsIndex {
        QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        )
    }

    #[test]
    fn modes_dispatch_to_matching_outcomes() {
        let index = index();
        let mut ws = QueryWorkspace::new();
        let d = execute_on(&index, &mut ws, &QueryRequest::distance(6, 11));
        assert_eq!(d, QueryOutcome::Distance(5));
        assert_eq!(d.distance(), Some(5));
        assert!(d.path_graph().is_none() && d.sketch().is_none() && d.error().is_none());

        let pg = execute_on(&index, &mut ws, &QueryRequest::path_graph(6, 11));
        assert!(matches!(pg, QueryOutcome::PathGraph(_)));
        assert_eq!(pg.path_graph().unwrap().distance(), 5);
        assert_eq!(pg.distance(), Some(5));
        assert!(pg.answer().is_none(), "stats were not requested");

        let full = execute_on(
            &index,
            &mut ws,
            &QueryRequest::path_graph(6, 11).with_stats(),
        );
        let answer = full.answer().expect("stats requested");
        assert_eq!(answer.path_graph, index.query(6, 11).unwrap());
        assert_eq!(full.sketch().unwrap().upper_bound, 5);

        let sk = execute_on(&index, &mut ws, &QueryRequest::sketch(6, 11));
        assert_eq!(sk.sketch().unwrap(), &index.sketch(6, 11).unwrap());
        assert_eq!(sk.distance(), None, "a sketch only bounds the distance");
    }

    #[test]
    fn outcomes_match_legacy_entry_points_on_both_backends() {
        let owned = index();
        let store = ViewStore::new(owned.as_view());
        let mut ws = QueryWorkspace::new();
        for u in 0..15u32 {
            for v in 0..15u32 {
                for mode in QueryMode::ALL {
                    let req = QueryRequest::new(u, v, mode).with_stats();
                    let a = execute_on(&owned, &mut ws, &req);
                    let b = execute_on(&store, &mut ws, &req);
                    assert_eq!(a, b, "({u},{v}) {mode} diverged across backends");
                }
                assert_eq!(
                    execute_on(&owned, &mut ws, &QueryRequest::distance(u, v)).distance(),
                    Some(owned.distance(u, v).unwrap()),
                    "distance({u},{v})"
                );
            }
        }
    }

    #[test]
    fn errors_are_per_request_values() {
        let index = index();
        let mut ws = QueryWorkspace::new();
        for mode in QueryMode::ALL {
            let outcome = execute_on(&index, &mut ws, &QueryRequest::new(0, 99, mode));
            assert!(outcome.is_error(), "{mode}");
            assert_eq!(
                outcome.error(),
                Some(&RequestError::VertexOutOfRange {
                    vertex: 99,
                    num_vertices: 15
                })
            );
            assert!(matches!(
                outcome.into_result(),
                Err(QbsError::VertexOutOfRange { vertex: 99, .. })
            ));
        }
        let ok = execute_on(&index, &mut ws, &QueryRequest::distance(0, 1));
        assert!(ok.is_ok());
        assert!(ok.clone().into_result().is_ok());
    }

    #[test]
    fn request_builders_set_options() {
        let req = QueryRequest::path_graph(1, 2).with_stats().uncached();
        assert!(req.opts.collect_stats && !req.opts.use_cache);
        assert_eq!(QueryRequest::distance(1, 2).opts, QueryOptions::default());
        assert_eq!(QueryMode::Distance.to_string(), "distance");
        assert_eq!(QueryMode::PathGraph.name(), "path");
        assert_eq!(QueryMode::Sketch.name(), "sketch");
        let err = RequestError::VertexOutOfRange {
            vertex: 7,
            num_vertices: 3,
        };
        assert!(err.to_string().contains("vertex 7"));
    }
}
