//! Guided searching (Algorithm 4).
//!
//! Given the sketch `S_uv`, the answer `G_uv` is assembled from up to three
//! searches over the sparsified graph `G⁻ = G[V \ R]` and the labelling
//! scheme (Eq. 5):
//!
//! 1. **Bidirectional search** — an alternating level-by-level BFS from both
//!    endpoints on `G⁻`, steered by the per-side budgets `d*_u`, `d*_v` from
//!    the sketch and bounded by `d⊤_uv`. It either finds
//!    `d_{G⁻}(u, v) ≤ d⊤_uv` or proves `d_{G⁻}(u, v) > d⊤_uv`.
//! 2. **Reverse search** — if the frontiers met, walk back from the meeting
//!    vertices along strictly decreasing BFS depths to materialise every
//!    shortest path inside `G⁻` (`G⁻_uv`).
//! 3. **Recover search** — if some shortest path passes a landmark
//!    (`d_{G⁻} ≥ d⊤`), use the labels to materialise the landmark-passing
//!    paths (`G^L_uv`): label-guided walks from the search frontiers to the
//!    sketch landmarks, plus the precomputed Δ path graphs for the sketch's
//!    meta edges.
//!
//! Queries whose endpoint happens to be a landmark are handled by giving
//! that endpoint the synthetic label `{(itself, 0)}` and keeping it inside
//! the sparsified view for this query only, which generalises the paper's
//! formulation (labels are only defined on `V \ R`) without changing any of
//! its guarantees.
//!
//! Every index read goes through the [`IndexStore`] trait, so the same
//! search serves the owned [`crate::QbsIndex`] and a zero-copy
//! [`crate::store::ViewStore`] over an index file — answers are
//! bit-identical across backends. All mutable search state lives in a
//! caller-provided [`QueryWorkspace`] ([`guided_search_with`]): the
//! per-vertex depth fields and visited sets are epoch-stamped, so repeated
//! queries perform **zero `O(|V|)` allocations or clears**.

use serde::{Deserialize, Serialize};

use qbs_graph::view::NeighborAccess;
use qbs_graph::workspace::{DistanceField, VisitedSet};
use qbs_graph::{Distance, PathGraph, VertexFilter, VertexId, INFINITE_DISTANCE};

use crate::sketch::{Sketch, SketchBounds};
use crate::store::{IndexStore, SparsifiedStore};
use crate::workspace::{QueryWorkspace, SideState};

/// Work counters and intermediate quantities of one guided search, used by
/// the §6.5 traversal comparison and the Figure 8 coverage analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// `d⊤_uv` from the sketch.
    pub upper_bound: Distance,
    /// `d_{G⁻}(u, v)` if the bidirectional search determined it, otherwise
    /// [`INFINITE_DISTANCE`] (meaning "greater than the bound" or truly
    /// disconnected in `G⁻`).
    pub sparsified_distance: Distance,
    /// The final query distance.
    pub distance: Distance,
    /// Directed edges relaxed by the bidirectional search.
    pub edges_traversed: usize,
    /// Vertices settled by the bidirectional search.
    pub vertices_settled: usize,
    /// Levels expanded from the source side.
    pub forward_levels: usize,
    /// Levels expanded from the target side.
    pub backward_levels: usize,
    /// Whether the reverse search ran (some shortest path avoids landmarks).
    pub used_reverse_search: bool,
    /// Whether the recover search ran (some shortest path passes a landmark).
    pub used_recover_search: bool,
}

/// Answers `SPG(source, target)` guided by `sketch` (Algorithm 4) on a
/// throwaway workspace.
///
/// The caller guarantees `source != target` and that both vertices exist.
/// Hot query loops should hold a [`QueryWorkspace`] and call
/// [`guided_search_with`] instead.
pub fn guided_search<S: IndexStore>(
    store: &S,
    source: VertexId,
    target: VertexId,
    sketch: &Sketch,
) -> (PathGraph, SearchStats) {
    let mut ws = QueryWorkspace::new();
    guided_search_with(store, &mut ws, source, target, sketch)
}

/// Answers `SPG(source, target)` guided by `sketch`, reusing every buffer
/// in `ws`. Results are bit-identical to [`guided_search`], and identical
/// across [`IndexStore`] backends.
pub fn guided_search_with<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    source: VertexId,
    target: VertexId,
    sketch: &Sketch,
) -> (PathGraph, SearchStats) {
    let n = store.num_vertices();
    ws.record_query();
    let mut stats = SearchStats {
        upper_bound: sketch.upper_bound,
        sparsified_distance: INFINITE_DISTANCE,
        distance: INFINITE_DISTANCE,
        ..SearchStats::default()
    };

    let QueryWorkspace {
        fwd,
        bwd,
        visited,
        stack,
        walk_visited,
        walk_stack,
        meeting,
        edges,
        scratch_filter,
        ..
    } = &mut *ws;

    let view = sparsified_view(store, scratch_filter, source, target);

    let d_top = sketch.upper_bound;

    // ---- Stage 1: guided bidirectional search on G⁻ (lines 6-15). ----
    fwd.begin(n, source);
    bwd.begin(n, target);
    let meeting_distance = bidirectional_stage(
        &view,
        fwd,
        bwd,
        d_top,
        sketch.source_budget(),
        sketch.target_budget(),
        &mut stats,
    );
    stats.sparsified_distance = meeting_distance;

    // ---- Stage 2/3: combine per Eq. 5. ----
    edges.clear();
    let distance;
    if meeting_distance < d_top {
        // Every shortest path avoids the landmarks.
        distance = meeting_distance;
        stats.used_reverse_search = true;
        reverse_search(&view, distance, fwd, bwd, visited, stack, meeting, edges);
    } else if meeting_distance == d_top && d_top != INFINITE_DISTANCE {
        distance = d_top;
        stats.used_reverse_search = true;
        stats.used_recover_search = true;
        reverse_search(&view, distance, fwd, bwd, visited, stack, meeting, edges);
        recover_search(
            store,
            sketch,
            &view,
            fwd,
            bwd,
            walk_visited,
            walk_stack,
            stack,
            edges,
        );
    } else if d_top != INFINITE_DISTANCE {
        // d_{G⁻} > d⊤: every shortest path passes a landmark.
        distance = d_top;
        stats.used_recover_search = true;
        recover_search(
            store,
            sketch,
            &view,
            fwd,
            bwd,
            walk_visited,
            walk_stack,
            stack,
            edges,
        );
    } else {
        // No landmark route and no G⁻ route: disconnected.
        stats.distance = INFINITE_DISTANCE;
        return (PathGraph::unreachable(source, target), stats);
    }
    stats.distance = distance;
    (
        PathGraph::from_edges(source, target, distance, edges.iter().copied()),
        stats,
    )
}

/// Computes only the query *distance* (Eq. 5: `min(d_{G⁻}, d⊤)`), skipping
/// the reverse/recover materialisation entirely.
///
/// This is the fully allocation-free hot path: with a warmed-up workspace
/// it touches no heap at all.
pub fn guided_distance_with<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    source: VertexId,
    target: VertexId,
    bounds: &SketchBounds,
) -> (Distance, SearchStats) {
    let n = store.num_vertices();
    ws.record_query();
    let mut stats = SearchStats {
        upper_bound: bounds.upper_bound,
        sparsified_distance: INFINITE_DISTANCE,
        distance: INFINITE_DISTANCE,
        ..SearchStats::default()
    };

    let QueryWorkspace {
        fwd,
        bwd,
        scratch_filter,
        ..
    } = &mut *ws;
    let view = sparsified_view(store, scratch_filter, source, target);

    fwd.begin(n, source);
    bwd.begin(n, target);
    let meeting_distance = bidirectional_stage(
        &view,
        fwd,
        bwd,
        bounds.upper_bound,
        bounds.source_budget,
        bounds.target_budget,
        &mut stats,
    );
    stats.sparsified_distance = meeting_distance;
    let distance = meeting_distance.min(bounds.upper_bound);
    stats.distance = distance;
    (distance, stats)
}

/// Distance-only guided search that *resumes* a forward BFS kept alive in
/// `ws.shared_fwd` across consecutive same-source queries — the batch
/// planner's shared-forward-BFS path.
///
/// The persistent side may hold levels deeper than this query has earned,
/// so the search tracks a per-query *revealed level* `vf`: the forward
/// frontier of this query is `levels[vf]`, forward depths `> vf` are
/// treated as unset by the meeting scan, and a forward step either reveals
/// an already-computed level (counted into `reused_levels`) or lazily
/// extends the real BFS by one level. With that cap the schedule — side
/// preference, budgets, breaks, meeting scans — is step-for-step the one
/// [`guided_distance_with`] runs (BFS levels from a fixed origin on the
/// fixed `G⁻` are canonical), so the returned distance is not merely
/// provably equal (Eq. 5's `min(d_{G⁻}, d⊤)` is schedule-independent) but
/// computed by an identical alternation.
///
/// Callers must guarantee `source != target`, both endpoints in range, and
/// neither endpoint a landmark — the latter so the sparsified view is the
/// store's own `G⁻` filter, the same view every retained level was
/// computed on.
pub(crate) fn guided_distance_resumed<S: IndexStore>(
    store: &S,
    ws: &mut QueryWorkspace,
    source: VertexId,
    target: VertexId,
    bounds: &SketchBounds,
    reused_levels: &mut u64,
) -> (Distance, SearchStats) {
    let n = store.num_vertices();
    ws.record_query();
    let mut stats = SearchStats {
        upper_bound: bounds.upper_bound,
        sparsified_distance: INFINITE_DISTANCE,
        distance: INFINITE_DISTANCE,
        ..SearchStats::default()
    };

    let QueryWorkspace {
        shared_fwd: fwd,
        bwd,
        ..
    } = &mut *ws;
    debug_assert!(
        !store.landmark_filter().contains(source) && !store.landmark_filter().contains(target),
        "shared forward BFS is only valid on the plain G⁻ view"
    );
    let view = SparsifiedStore::new(store, store.landmark_filter());

    fwd.resume(n, source);
    bwd.begin(n, target);

    let d_top = bounds.upper_bound;
    let mut meeting_distance = INFINITE_DISTANCE;
    let mut vf: Distance = 0;
    // What `fwd.settled` would read in the vanilla schedule: the vertex
    // count of the revealed levels only.
    let mut revealed_settled = fwd.levels[0].len();
    loop {
        if vf.saturating_add(bwd.level) >= d_top {
            break; // bound reached (d_u + d_v = d⊤)
        }
        let fwd_alive = !fwd.levels[vf as usize].is_empty();
        let bwd_alive = !bwd.frontier().is_empty();
        if !fwd_alive && !bwd_alive {
            break; // G⁻ exhausted without a meeting
        }

        let prefer_fwd = bounds.source_budget > vf;
        let prefer_bwd = bounds.target_budget > bwd.level;
        let expand_forward = match (prefer_fwd && fwd_alive, prefer_bwd && bwd_alive) {
            (true, false) => true,
            (false, true) => false,
            _ => {
                if !fwd_alive {
                    false
                } else if !bwd_alive {
                    true
                } else {
                    revealed_settled <= bwd.settled
                }
            }
        };

        if expand_forward {
            stats.forward_levels += 1;
            vf += 1;
            if fwd.level < vf {
                fwd.expand(&view, &mut stats);
            } else {
                *reused_levels += 1;
            }
            revealed_settled += fwd.levels[vf as usize].len();
            for &w in &fwd.levels[vf as usize] {
                let od = bwd.depth.get(w);
                if od != INFINITE_DISTANCE {
                    meeting_distance = meeting_distance.min(vf + od);
                }
            }
        } else {
            stats.backward_levels += 1;
            bwd.expand(&view, &mut stats);
            for &w in bwd.frontier() {
                let fd = fwd.depth.get(w);
                if fd != INFINITE_DISTANCE && fd <= vf {
                    meeting_distance = meeting_distance.min(bwd.level + fd);
                }
            }
        }
        if meeting_distance != INFINITE_DISTANCE {
            break;
        }
    }
    stats.sparsified_distance = meeting_distance;
    let distance = meeting_distance.min(bounds.upper_bound);
    stats.distance = distance;
    (distance, stats)
}

/// The sparsified view for one query: all landmarks removed, except a query
/// endpoint that happens to be a landmark itself. The common
/// (non-landmark-endpoint) case borrows the store's filter directly; the
/// rare case copies it into the workspace's scratch filter, so neither path
/// allocates in the steady state. Shared by the full search and the
/// distance-only path so the endpoint rule lives in exactly one place.
fn sparsified_view<'v, S: IndexStore>(
    store: &'v S,
    scratch_filter: &'v mut VertexFilter,
    source: VertexId,
    target: VertexId,
) -> SparsifiedStore<'v, S> {
    let landmark_filter = store.landmark_filter();
    let endpoint_is_landmark = landmark_filter.contains(source) || landmark_filter.contains(target);
    let query_filter: &VertexFilter = if endpoint_is_landmark {
        scratch_filter.copy_from(landmark_filter);
        scratch_filter.remove(source);
        scratch_filter.remove(target);
        scratch_filter
    } else {
        landmark_filter
    };
    SparsifiedStore::new(store, query_filter)
}

/// Recover search (Algorithm 4, lines 18-24): materialises the shortest
/// paths that pass through at least one landmark.
#[allow(clippy::too_many_arguments)]
fn recover_search<S: IndexStore>(
    store: &S,
    sketch: &Sketch,
    view: &SparsifiedStore<'_, S>,
    fwd: &SideState,
    bwd: &SideState,
    walk_visited: &mut VisitedSet,
    walk_stack: &mut Vec<(VertexId, Distance)>,
    stack: &mut Vec<VertexId>,
    edges: &mut Vec<(VertexId, VertexId)>,
) {
    // Landmark-to-landmark segments: splice in the precomputed Δ path
    // graph of every sketch meta edge.
    for &(i, j, _) in &sketch.meta_edges {
        if let Some(k) = store.meta_edge_index(i, j) {
            store.for_each_delta_edge(k, |a, b| edges.push((a, b)));
        }
    }
    // Endpoint-to-landmark segments on both sides.
    for hop in &sketch.source_hops {
        recover_side(
            store,
            hop.landmark_idx,
            hop.distance,
            fwd,
            view,
            walk_visited,
            walk_stack,
            stack,
            edges,
        );
    }
    for hop in &sketch.target_hops {
        recover_side(
            store,
            hop.landmark_idx,
            hop.distance,
            bwd,
            view,
            walk_visited,
            walk_stack,
            stack,
            edges,
        );
    }
}

/// Recovers the shortest paths between one query endpoint and one sketch
/// landmark: finds the frontier vertices `Z` of Algorithm 4 (lines 19-23),
/// then label-walks from them to the landmark and depth-walks from them
/// back to the endpoint.
#[allow(clippy::too_many_arguments)]
fn recover_side<S: IndexStore>(
    store: &S,
    landmark_idx: usize,
    sigma: Distance,
    side: &SideState,
    view: &SparsifiedStore<'_, S>,
    walk_visited: &mut VisitedSet,
    walk_stack: &mut Vec<(VertexId, Distance)>,
    stack: &mut Vec<VertexId>,
    edges: &mut Vec<(VertexId, VertexId)>,
) {
    if sigma == 0 {
        return; // the endpoint is this landmark; nothing to recover
    }
    let landmark = store.landmark(landmark_idx);
    let dm = (sigma - 1).min(side.level);
    let needed_label = sigma - dm;
    let Some(level) = side.levels.get(dm as usize) else {
        return;
    };
    for &w in level {
        let matches = if store.is_landmark(w) {
            // An endpoint that is itself a landmark only matches its own
            // synthetic zero label.
            w == landmark && needed_label == 0
        } else {
            store.label_distance(w, landmark_idx) == Some(needed_label)
        };
        if !matches {
            continue;
        }
        // w → landmark via the labels.
        label_walk(
            store,
            w,
            landmark_idx,
            landmark,
            needed_label,
            walk_visited,
            walk_stack,
            edges,
        );
        // endpoint → w via the search depths.
        depth_walk(view, w, &side.depth, walk_visited, stack, edges);
    }
}

/// Walks from `start` (whose label towards the landmark is
/// `start_distance`) down to the landmark, following neighbours whose label
/// decreases by exactly one; every traversed edge lies on a shortest path
/// between `start` and the landmark that avoids all other landmarks.
#[allow(clippy::too_many_arguments)]
fn label_walk<S: IndexStore>(
    store: &S,
    start: VertexId,
    landmark_idx: usize,
    landmark: VertexId,
    start_distance: Distance,
    walk_visited: &mut VisitedSet,
    walk_stack: &mut Vec<(VertexId, Distance)>,
    edges: &mut Vec<(VertexId, VertexId)>,
) {
    if start_distance == 0 {
        return;
    }
    walk_visited.reset(store.num_vertices());
    walk_visited.insert(start);
    walk_stack.clear();
    walk_stack.push((start, start_distance));
    while let Some((x, dx)) = walk_stack.pop() {
        if dx == 1 {
            edges.push((x, landmark));
            continue;
        }
        store.for_each_neighbor(x, |y| {
            if store.is_landmark(y) {
                return; // other landmarks cannot be interior vertices
            }
            if store.label_distance(y, landmark_idx) == Some(dx - 1) {
                edges.push((x, y));
                if walk_visited.insert(y) {
                    walk_stack.push((y, dx - 1));
                }
            }
        });
    }
}

/// Stage 1 of Algorithm 4: the alternating, budget-steered bidirectional
/// level expansion on the sparsified view. Returns the meeting distance
/// (`d_{G⁻}(u, v)` when it is `≤ d⊤`, [`INFINITE_DISTANCE`] otherwise).
fn bidirectional_stage<V: NeighborAccess>(
    view: &V,
    fwd: &mut SideState,
    bwd: &mut SideState,
    d_top: Distance,
    d_star_u: Distance,
    d_star_v: Distance,
    stats: &mut SearchStats,
) -> Distance {
    let mut meeting_distance = INFINITE_DISTANCE;
    loop {
        if fwd.level.saturating_add(bwd.level) >= d_top {
            break; // bound reached (d_u + d_v = d⊤)
        }
        let fwd_alive = !fwd.frontier().is_empty();
        let bwd_alive = !bwd.frontier().is_empty();
        if !fwd_alive && !bwd_alive {
            break; // G⁻ exhausted without a meeting
        }

        // pick_search (line 7): prefer the side whose sketch budget is
        // not yet exhausted; break ties (or the both/neither case) by
        // expanding the smaller settled set.
        let prefer_fwd = d_star_u > fwd.level;
        let prefer_bwd = d_star_v > bwd.level;
        let expand_forward = match (prefer_fwd && fwd_alive, prefer_bwd && bwd_alive) {
            (true, false) => true,
            (false, true) => false,
            _ => {
                if !fwd_alive {
                    false
                } else if !bwd_alive {
                    true
                } else {
                    fwd.settled <= bwd.settled
                }
            }
        };

        let (just, other): (&SideState, &SideState) = if expand_forward {
            stats.forward_levels += 1;
            fwd.expand(view, stats);
            (fwd, bwd)
        } else {
            stats.backward_levels += 1;
            bwd.expand(view, stats);
            (bwd, fwd)
        };

        // Meeting check (lines 14-15).
        for &w in just.frontier() {
            let od = other.depth.get(w);
            if od != INFINITE_DISTANCE {
                meeting_distance = meeting_distance.min(just.level + od);
            }
        }
        if meeting_distance != INFINITE_DISTANCE {
            break;
        }
    }
    meeting_distance
}

/// Reverse search (Algorithm 4, lines 16-17): collects every edge on a
/// shortest `source ⇝ target` path inside the sparsified view, walking back
/// from the meeting vertices along strictly decreasing depths on both sides.
///
/// Meeting vertices are found by scanning the settled levels of the side
/// with the *smaller* settled set (instead of all `|V|` vertex slots, as a
/// fresh-allocation implementation would), so the whole phase is
/// proportional to the work of the search, not to the graph size.
#[allow(clippy::too_many_arguments)]
fn reverse_search<V: NeighborAccess>(
    view: &V,
    distance: Distance,
    fwd: &SideState,
    bwd: &SideState,
    visited: &mut VisitedSet,
    stack: &mut Vec<VertexId>,
    meeting: &mut Vec<VertexId>,
    edges: &mut Vec<(VertexId, VertexId)>,
) {
    let n = view.vertex_count();
    meeting.clear();
    let (scan, other) = if fwd.settled <= bwd.settled {
        (fwd, bwd)
    } else {
        (bwd, fwd)
    };
    for (d, level) in scan.levels.iter().enumerate().take(scan.level as usize + 1) {
        let d = d as Distance;
        if d > distance {
            break;
        }
        for &w in level {
            let od = other.depth.get(w);
            if od != INFINITE_DISTANCE && d + od == distance {
                meeting.push(w);
            }
        }
    }

    for forward in [true, false] {
        let depth = if forward { &fwd.depth } else { &bwd.depth };
        visited.reset(n);
        stack.clear();
        for &w in meeting.iter() {
            visited.insert(w);
            stack.push(w);
        }
        while let Some(x) = stack.pop() {
            let dx = depth.get(x);
            if dx == 0 {
                continue;
            }
            view.for_each_neighbor(x, |p| {
                if depth.is_set(p) && depth.get(p) + 1 == dx {
                    edges.push((p, x));
                    if visited.insert(p) {
                        stack.push(p);
                    }
                }
            });
        }
    }
}

/// Walks from `start` back to the search origin following strictly
/// decreasing depths, collecting the traversed edges (the endpoint-to-`Z`
/// part of the recover search).
fn depth_walk<V: NeighborAccess>(
    view: &V,
    start: VertexId,
    depth: &DistanceField,
    visited: &mut VisitedSet,
    stack: &mut Vec<VertexId>,
    edges: &mut Vec<(VertexId, VertexId)>,
) {
    if !depth.is_set(start) || depth.get(start) == 0 {
        return;
    }
    visited.reset(view.vertex_count());
    visited.insert(start);
    stack.clear();
    stack.push(start);
    while let Some(x) = stack.pop() {
        let dx = depth.get(x);
        if dx == 0 {
            continue;
        }
        view.for_each_neighbor(x, |p| {
            if depth.is_set(p) && depth.get(p) + 1 == dx {
                edges.push((p, x));
                if visited.insert(p) {
                    stack.push(p);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QbsConfig, QbsIndex};
    use crate::sketch;
    use crate::store::ViewStore;
    use qbs_graph::fixtures::{figure4_graph, figure4_spg_6_11_edges};
    use qbs_graph::Graph;

    /// The figure-4 running example indexed with the paper's landmark set,
    /// queried through the generic search entry points — once over the
    /// owned store and once over a zero-copy view store, so every unit test
    /// here exercises both backends.
    struct Fixture {
        graph: Graph,
        owned: QbsIndex,
        view: ViewStore,
    }

    impl Fixture {
        fn figure4() -> Self {
            let graph = figure4_graph();
            let owned = QbsIndex::build(
                graph.clone(),
                QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
            );
            let view = ViewStore::new(owned.as_view());
            Fixture { graph, owned, view }
        }

        fn query_store<S: IndexStore>(
            store: &S,
            u: VertexId,
            v: VertexId,
        ) -> (PathGraph, SearchStats) {
            let mut src = Vec::new();
            let mut tgt = Vec::new();
            store.fill_effective_label(u, &mut src);
            store.fill_effective_label(v, &mut tgt);
            let sk = sketch::compute(store, u, v, &src, &tgt);
            guided_search(store, u, v, &sk)
        }

        /// Queries both backends, asserts they agree, returns the answer.
        fn query(&self, u: VertexId, v: VertexId) -> (PathGraph, SearchStats) {
            let from_owned = Self::query_store(&self.owned, u, v);
            let from_view = Self::query_store(&self.view, u, v);
            assert_eq!(
                from_owned, from_view,
                "store backends diverged on ({u},{v})"
            );
            from_owned
        }

        fn query_with(
            &self,
            ws: &mut QueryWorkspace,
            u: VertexId,
            v: VertexId,
        ) -> (PathGraph, SearchStats) {
            let mut src = Vec::new();
            let mut tgt = Vec::new();
            self.owned.fill_effective_label(u, &mut src);
            self.owned.fill_effective_label(v, &mut tgt);
            let sk = sketch::compute(&self.owned, u, v, &src, &tgt);
            guided_search_with(&self.owned, ws, u, v, &sk)
        }
    }

    #[test]
    fn reproduces_figure_6f() {
        let fx = Fixture::figure4();
        let (answer, stats) = fx.query(6, 11);
        assert_eq!(answer.distance(), 5);
        let expected = PathGraph::from_edges(6, 11, 5, figure4_spg_6_11_edges());
        assert_eq!(answer, expected);
        assert_eq!(stats.upper_bound, 5);
        assert_eq!(stats.sparsified_distance, 5);
        assert!(stats.used_reverse_search);
        assert!(stats.used_recover_search);
        assert_eq!(stats.distance, 5);
    }

    #[test]
    fn all_pairs_match_ground_truth_on_figure4() {
        let fx = Fixture::figure4();
        for u in 1..15u32 {
            for v in 1..15u32 {
                if u == v {
                    continue;
                }
                let expected = exact_spg(&fx.graph, u, v);
                let (got, stats) = fx.query(u, v);
                assert_eq!(got, expected, "query ({u},{v})");
                assert!(
                    stats.upper_bound >= stats.distance || stats.upper_bound == INFINITE_DISTANCE
                );
            }
        }
    }

    #[test]
    fn one_workspace_reused_across_all_pairs_matches_fresh_runs() {
        let fx = Fixture::figure4();
        let mut ws = QueryWorkspace::new();
        for u in 1..15u32 {
            for v in 1..15u32 {
                if u == v {
                    continue;
                }
                let (fresh, fresh_stats) = fx.query(u, v);
                let (reused, reused_stats) = fx.query_with(&mut ws, u, v);
                assert_eq!(reused, fresh, "query ({u},{v})");
                assert_eq!(reused_stats, fresh_stats, "stats of ({u},{v})");
            }
        }
        assert_eq!(ws.queries_served(), 14 * 13);
    }

    #[test]
    fn distance_only_path_agrees_with_full_search() {
        let fx = Fixture::figure4();
        let mut ws = QueryWorkspace::new();
        let mut src = Vec::new();
        let mut tgt = Vec::new();
        for u in 1..15u32 {
            for v in 1..15u32 {
                if u == v {
                    continue;
                }
                let (full, _) = fx.query(u, v);
                fx.owned.fill_effective_label(u, &mut src);
                fx.owned.fill_effective_label(v, &mut tgt);
                let bounds = sketch::compute_bounds(&fx.owned, &src, &tgt);
                let (d, stats) = guided_distance_with(&fx.owned, &mut ws, u, v, &bounds);
                assert_eq!(d, full.distance(), "distance of ({u},{v})");
                assert_eq!(stats.distance, d);
                // The view-backed distance path agrees bit-for-bit.
                let (dv, stats_v) = guided_distance_with(&fx.view, &mut ws, u, v, &bounds);
                assert_eq!(dv, d, "view distance of ({u},{v})");
                assert_eq!(stats_v, stats, "view stats of ({u},{v})");
            }
        }
    }

    #[test]
    fn pure_sparsified_query_skips_recover() {
        let fx = Fixture::figure4();
        // d(7, 9) = 2 via 7-8-9 (no landmark) but every landmark route is
        // longer, so only the reverse search runs.
        let (answer, stats) = fx.query(7, 9);
        assert_eq!(answer.distance(), 2);
        assert_eq!(answer.edges(), &[(7, 8), (8, 9)]);
        assert!(stats.used_reverse_search);
        assert!(!stats.used_recover_search);
        assert!(stats.sparsified_distance < stats.upper_bound);
    }

    #[test]
    fn pure_landmark_query_skips_reverse() {
        let fx = Fixture::figure4();
        // d(4, 12) = 2 via 4-3-12 only (through landmark 3); in G⁻ vertex 4
        // is isolated, so only the recover search contributes.
        let (answer, stats) = fx.query(4, 12);
        assert_eq!(answer.distance(), 2);
        assert_eq!(answer.edges(), &[(3, 4), (3, 12)]);
        assert!(!stats.used_reverse_search);
        assert!(stats.used_recover_search);
        assert_eq!(stats.sparsified_distance, INFINITE_DISTANCE);
    }

    #[test]
    fn landmark_endpoints_are_supported() {
        let fx = Fixture::figure4();
        let mut ws = QueryWorkspace::new();
        for &u in &[1u32, 2, 3] {
            for v in 1..15u32 {
                if u == v {
                    continue;
                }
                let expected = exact_spg(&fx.graph, u, v);
                let (got, _) = fx.query(u, v);
                assert_eq!(got, expected, "query ({u},{v})");
                // The scratch-filter path must agree as well.
                let (got, _) = fx.query_with(&mut ws, u, v);
                assert_eq!(got, expected, "workspace query ({u},{v})");
            }
        }
    }

    #[test]
    fn stats_report_search_effort() {
        let fx = Fixture::figure4();
        let (_, stats) = fx.query(6, 11);
        assert!(stats.vertices_settled > 0);
        assert!(stats.edges_traversed > 0);
        assert!(stats.forward_levels + stats.backward_levels > 0);
    }

    /// Exact answer via two BFSs (kept local to avoid a dev-dependency cycle
    /// with qbs-baselines inside unit tests).
    fn exact_spg(graph: &Graph, u: VertexId, v: VertexId) -> PathGraph {
        use qbs_graph::traversal::bfs_distances;
        if u == v {
            return PathGraph::trivial(u);
        }
        let du = bfs_distances(graph, u);
        let total = du[v as usize];
        if total == INFINITE_DISTANCE {
            return PathGraph::unreachable(u, v);
        }
        let dv = bfs_distances(graph, v);
        let mut edges = Vec::new();
        for (a, b) in graph.edges() {
            if du[a as usize] == INFINITE_DISTANCE || du[b as usize] == INFINITE_DISTANCE {
                continue;
            }
            if du[a as usize] + 1 + dv[b as usize] == total
                || du[b as usize] + 1 + dv[a as usize] == total
            {
                edges.push((a, b));
            }
        }
        PathGraph::from_edges(u, v, total, edges)
    }
}
