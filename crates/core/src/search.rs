//! Guided searching (Algorithm 4).
//!
//! Given the sketch `S_uv`, the answer `G_uv` is assembled from up to three
//! searches over the sparsified graph `G⁻ = G[V \ R]` and the labelling
//! scheme (Eq. 5):
//!
//! 1. **Bidirectional search** — an alternating level-by-level BFS from both
//!    endpoints on `G⁻`, steered by the per-side budgets `d*_u`, `d*_v` from
//!    the sketch and bounded by `d⊤_uv`. It either finds
//!    `d_{G⁻}(u, v) ≤ d⊤_uv` or proves `d_{G⁻}(u, v) > d⊤_uv`.
//! 2. **Reverse search** — if the frontiers met, walk back from the meeting
//!    vertices along strictly decreasing BFS depths to materialise every
//!    shortest path inside `G⁻` (`G⁻_uv`).
//! 3. **Recover search** — if some shortest path passes a landmark
//!    (`d_{G⁻} ≥ d⊤`), use the labels to materialise the landmark-passing
//!    paths (`G^L_uv`): label-guided walks from the search frontiers to the
//!    sketch landmarks, plus the precomputed Δ path graphs for the sketch's
//!    meta edges.
//!
//! Queries whose endpoint happens to be a landmark are handled by giving
//! that endpoint the synthetic label `{(itself, 0)}` and keeping it inside
//! the sparsified view for this query only, which generalises the paper's
//! formulation (labels are only defined on `V \ R`) without changing any of
//! its guarantees.

use serde::{Deserialize, Serialize};

use qbs_graph::view::NeighborAccess;
use qbs_graph::{
    Distance, FilteredGraph, Graph, PathGraph, VertexFilter, VertexId, INFINITE_DISTANCE,
};

use crate::labelling::PathLabelling;
use crate::meta_graph::MetaGraph;
use crate::sketch::Sketch;

/// Work counters and intermediate quantities of one guided search, used by
/// the §6.5 traversal comparison and the Figure 8 coverage analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// `d⊤_uv` from the sketch.
    pub upper_bound: Distance,
    /// `d_{G⁻}(u, v)` if the bidirectional search determined it, otherwise
    /// [`INFINITE_DISTANCE`] (meaning "greater than the bound" or truly
    /// disconnected in `G⁻`).
    pub sparsified_distance: Distance,
    /// The final query distance.
    pub distance: Distance,
    /// Directed edges relaxed by the bidirectional search.
    pub edges_traversed: usize,
    /// Vertices settled by the bidirectional search.
    pub vertices_settled: usize,
    /// Levels expanded from the source side.
    pub forward_levels: usize,
    /// Levels expanded from the target side.
    pub backward_levels: usize,
    /// Whether the reverse search ran (some shortest path avoids landmarks).
    pub used_reverse_search: bool,
    /// Whether the recover search ran (some shortest path passes a landmark).
    pub used_recover_search: bool,
}

/// Borrowed view of the index pieces the guided search needs.
#[derive(Clone, Copy)]
pub struct SearchContext<'a> {
    /// The indexed graph.
    pub graph: &'a Graph,
    /// Meta-graph with APSP and Δ.
    pub meta: &'a MetaGraph,
    /// The path labelling.
    pub labelling: &'a PathLabelling,
    /// Filter marking every landmark (the removal set of `G⁻`).
    pub landmark_filter: &'a VertexFilter,
    /// Per-vertex landmark column (`u32::MAX` for non-landmarks).
    pub landmark_column: &'a [u32],
}

/// One side (forward or backward) of the guided bidirectional search.
struct Side {
    depth: Vec<Distance>,
    /// `levels[d]` lists the vertices settled at depth `d`.
    levels: Vec<Vec<VertexId>>,
    /// Number of settled vertices (|P| in Algorithm 4).
    settled: usize,
    /// Current level (d_u / d_v in Algorithm 4).
    level: Distance,
}

impl Side {
    fn new(n: usize, origin: VertexId) -> Self {
        let mut depth = vec![INFINITE_DISTANCE; n];
        depth[origin as usize] = 0;
        Side { depth, levels: vec![vec![origin]], settled: 1, level: 0 }
    }

    fn frontier(&self) -> &[VertexId] {
        &self.levels[self.level as usize]
    }

    /// Expands the current frontier one level on the view; returns the
    /// number of newly settled vertices.
    fn expand(&mut self, view: &FilteredGraph<'_>, stats: &mut SearchStats) -> usize {
        let mut next: Vec<VertexId> = Vec::new();
        let next_depth = self.level + 1;
        for i in 0..self.levels[self.level as usize].len() {
            let u = self.levels[self.level as usize][i];
            stats.vertices_settled += 1;
            view.for_each_neighbor(u, |w| {
                stats.edges_traversed += 1;
                if self.depth[w as usize] == INFINITE_DISTANCE {
                    self.depth[w as usize] = next_depth;
                    next.push(w);
                }
            });
        }
        let added = next.len();
        self.settled += added;
        self.levels.push(next);
        self.level = next_depth;
        added
    }
}

impl<'a> SearchContext<'a> {
    /// Answers `SPG(source, target)` guided by `sketch` (Algorithm 4).
    ///
    /// The caller guarantees `source != target` and that both vertices exist.
    pub fn guided_search(
        &self,
        source: VertexId,
        target: VertexId,
        sketch: &Sketch,
    ) -> (PathGraph, SearchStats) {
        let n = self.graph.num_vertices();
        let mut stats = SearchStats {
            upper_bound: sketch.upper_bound,
            sparsified_distance: INFINITE_DISTANCE,
            distance: INFINITE_DISTANCE,
            ..SearchStats::default()
        };

        // The sparsified view for this query: all landmarks removed, except
        // a query endpoint that happens to be a landmark itself.
        let endpoint_is_landmark = self.landmark_filter.contains(source)
            || self.landmark_filter.contains(target);
        let query_filter: VertexFilter = if endpoint_is_landmark {
            VertexFilter::from_vertices(
                n,
                self.landmark_filter.iter().filter(|&x| x != source && x != target),
            )
        } else {
            self.landmark_filter.clone()
        };
        let view = FilteredGraph::new(self.graph, &query_filter);

        let d_top = sketch.upper_bound;
        let (d_star_u, d_star_v) = (sketch.source_budget(), sketch.target_budget());

        // ---- Stage 1: guided bidirectional search on G⁻ (lines 6-15). ----
        let mut fwd = Side::new(n, source);
        let mut bwd = Side::new(n, target);
        let mut meeting_distance = INFINITE_DISTANCE;

        loop {
            if fwd.level.saturating_add(bwd.level) >= d_top {
                break; // bound reached (d_u + d_v = d⊤)
            }
            let fwd_alive = !fwd.frontier().is_empty();
            let bwd_alive = !bwd.frontier().is_empty();
            if !fwd_alive && !bwd_alive {
                break; // G⁻ exhausted without a meeting
            }

            // pick_search (line 7): prefer the side whose sketch budget is
            // not yet exhausted; break ties (or the both/neither case) by
            // expanding the smaller settled set.
            let prefer_fwd = d_star_u > fwd.level;
            let prefer_bwd = d_star_v > bwd.level;
            let expand_forward = match (prefer_fwd && fwd_alive, prefer_bwd && bwd_alive) {
                (true, false) => true,
                (false, true) => false,
                _ => {
                    if !fwd_alive {
                        false
                    } else if !bwd_alive {
                        true
                    } else {
                        fwd.settled <= bwd.settled
                    }
                }
            };

            let (just, other) = if expand_forward {
                stats.forward_levels += 1;
                fwd.expand(&view, &mut stats);
                (&fwd, &bwd)
            } else {
                stats.backward_levels += 1;
                bwd.expand(&view, &mut stats);
                (&bwd, &fwd)
            };

            // Meeting check (lines 14-15).
            for &w in just.frontier() {
                let od = other.depth[w as usize];
                if od != INFINITE_DISTANCE {
                    meeting_distance = meeting_distance.min(just.level + od);
                }
            }
            if meeting_distance != INFINITE_DISTANCE {
                break;
            }
        }
        stats.sparsified_distance = meeting_distance;

        // ---- Stage 2/3: combine per Eq. 5. ----
        let mut answer_edges: Vec<(VertexId, VertexId)> = Vec::new();
        let distance;
        if meeting_distance < d_top {
            // Every shortest path avoids the landmarks.
            distance = meeting_distance;
            stats.used_reverse_search = true;
            reverse_search(&view, distance, &fwd.depth, &bwd.depth, &mut answer_edges);
        } else if meeting_distance == d_top && d_top != INFINITE_DISTANCE {
            distance = d_top;
            stats.used_reverse_search = true;
            stats.used_recover_search = true;
            reverse_search(&view, distance, &fwd.depth, &bwd.depth, &mut answer_edges);
            self.recover_search(sketch, &view, &fwd, &bwd, &mut answer_edges);
        } else if d_top != INFINITE_DISTANCE {
            // d_{G⁻} > d⊤: every shortest path passes a landmark.
            distance = d_top;
            stats.used_recover_search = true;
            self.recover_search(sketch, &view, &fwd, &bwd, &mut answer_edges);
        } else {
            // No landmark route and no G⁻ route: disconnected.
            stats.distance = INFINITE_DISTANCE;
            return (PathGraph::unreachable(source, target), stats);
        }
        stats.distance = distance;
        (PathGraph::from_edges(source, target, distance, answer_edges), stats)
    }

    /// Recover search (Algorithm 4, lines 18-24): materialises the shortest
    /// paths that pass through at least one landmark.
    fn recover_search(
        &self,
        sketch: &Sketch,
        view: &FilteredGraph<'_>,
        fwd: &Side,
        bwd: &Side,
        edges: &mut Vec<(VertexId, VertexId)>,
    ) {
        // Landmark-to-landmark segments: splice in the precomputed Δ path
        // graph of every sketch meta edge.
        for &(i, j, _) in &sketch.meta_edges {
            if let Some(k) = self.meta.edge_index(i, j) {
                edges.extend_from_slice(self.meta.delta_edges(k));
            }
        }
        // Endpoint-to-landmark segments on both sides.
        for hop in &sketch.source_hops {
            self.recover_side(hop.landmark_idx, hop.distance, fwd, view, edges);
        }
        for hop in &sketch.target_hops {
            self.recover_side(hop.landmark_idx, hop.distance, bwd, view, edges);
        }
    }

    /// Recovers the shortest paths between one query endpoint and one sketch
    /// landmark: finds the frontier vertices `Z` of Algorithm 4 (lines
    /// 19-23), then label-walks from them to the landmark and depth-walks
    /// from them back to the endpoint.
    fn recover_side(
        &self,
        landmark_idx: usize,
        sigma: Distance,
        side: &Side,
        view: &FilteredGraph<'_>,
        edges: &mut Vec<(VertexId, VertexId)>,
    ) {
        if sigma == 0 {
            return; // the endpoint is this landmark; nothing to recover
        }
        let landmark = self.meta.landmarks()[landmark_idx];
        let dm = (sigma - 1).min(side.level);
        let needed_label = sigma - dm;
        let Some(level) = side.levels.get(dm as usize) else {
            return;
        };
        for &w in level {
            let matches = if self.landmark_filter.contains(w) {
                // An endpoint that is itself a landmark only matches its own
                // synthetic zero label.
                w == landmark && needed_label == 0
            } else {
                self.labelling.get(w, landmark_idx) == Some(needed_label)
            };
            if !matches {
                continue;
            }
            // w → landmark via the labels.
            self.label_walk(w, landmark_idx, landmark, needed_label, edges);
            // endpoint → w via the search depths.
            depth_walk(view, w, &side.depth, edges);
        }
    }

    /// Walks from `start` (whose label towards the landmark is
    /// `start_distance`) down to the landmark, following neighbours whose
    /// label decreases by exactly one; every traversed edge lies on a
    /// shortest path between `start` and the landmark that avoids all other
    /// landmarks.
    fn label_walk(
        &self,
        start: VertexId,
        landmark_idx: usize,
        landmark: VertexId,
        start_distance: Distance,
        edges: &mut Vec<(VertexId, VertexId)>,
    ) {
        if start_distance == 0 {
            return;
        }
        let mut stack = vec![(start, start_distance)];
        let mut visited = std::collections::HashSet::new();
        visited.insert(start);
        while let Some((x, dx)) = stack.pop() {
            if dx == 1 {
                edges.push((x, landmark));
                continue;
            }
            for &y in self.graph.neighbors(x) {
                if self.landmark_column[y as usize] != u32::MAX {
                    continue; // other landmarks cannot be interior vertices
                }
                if self.labelling.get(y, landmark_idx) == Some(dx - 1) {
                    edges.push((x, y));
                    if visited.insert(y) {
                        stack.push((y, dx - 1));
                    }
                }
            }
        }
    }
}

/// Reverse search (Algorithm 4, lines 16-17): collects every edge on a
/// shortest `source ⇝ target` path inside the sparsified view, walking back
/// from the meeting vertices along strictly decreasing depths on both sides.
fn reverse_search(
    view: &FilteredGraph<'_>,
    distance: Distance,
    depth_fwd: &[Distance],
    depth_bwd: &[Distance],
    edges: &mut Vec<(VertexId, VertexId)>,
) {
    let n = view.vertex_count();
    let mut meeting: Vec<VertexId> = Vec::new();
    for w in 0..n as VertexId {
        let (df, db) = (depth_fwd[w as usize], depth_bwd[w as usize]);
        if df != INFINITE_DISTANCE && db != INFINITE_DISTANCE && df + db == distance {
            meeting.push(w);
        }
    }
    for depth in [depth_fwd, depth_bwd] {
        let mut visited = vec![false; n];
        let mut stack = meeting.clone();
        for &w in &meeting {
            visited[w as usize] = true;
        }
        while let Some(x) = stack.pop() {
            let dx = depth[x as usize];
            if dx == 0 {
                continue;
            }
            view.for_each_neighbor(x, |p| {
                if depth[p as usize] != INFINITE_DISTANCE && depth[p as usize] + 1 == dx {
                    edges.push((p, x));
                    if !visited[p as usize] {
                        visited[p as usize] = true;
                        stack.push(p);
                    }
                }
            });
        }
    }
}

/// Walks from `start` back to the search origin following strictly
/// decreasing depths, collecting the traversed edges (the endpoint-to-`Z`
/// part of the recover search).
fn depth_walk(
    view: &FilteredGraph<'_>,
    start: VertexId,
    depth: &[Distance],
    edges: &mut Vec<(VertexId, VertexId)>,
) {
    if depth[start as usize] == 0 || depth[start as usize] == INFINITE_DISTANCE {
        return;
    }
    let mut visited = std::collections::HashSet::new();
    visited.insert(start);
    let mut stack = vec![start];
    while let Some(x) = stack.pop() {
        let dx = depth[x as usize];
        if dx == 0 {
            continue;
        }
        view.for_each_neighbor(x, |p| {
            if depth[p as usize] != INFINITE_DISTANCE && depth[p as usize] + 1 == dx {
                edges.push((p, x));
                if visited.insert(p) {
                    stack.push(p);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labelling::{build_sequential, landmark_column_map};
    use crate::sketch;
    use qbs_graph::fixtures::{figure4_graph, figure4_landmarks, figure4_spg_6_11_edges};

    struct Fixture {
        graph: Graph,
        meta: MetaGraph,
        labelling: PathLabelling,
        landmarks: Vec<VertexId>,
        filter: VertexFilter,
        columns: Vec<u32>,
    }

    impl Fixture {
        fn figure4() -> Self {
            let graph = figure4_graph();
            let landmarks = figure4_landmarks();
            let scheme = build_sequential(&graph, &landmarks);
            let meta = MetaGraph::build(&graph, &landmarks, &scheme.meta_edges);
            let filter =
                VertexFilter::from_vertices(graph.num_vertices(), landmarks.iter().copied());
            let columns = landmark_column_map(&graph, &landmarks);
            Fixture { graph, meta, labelling: scheme.labelling, landmarks, filter, columns }
        }

        fn context(&self) -> SearchContext<'_> {
            SearchContext {
                graph: &self.graph,
                meta: &self.meta,
                labelling: &self.labelling,
                landmark_filter: &self.filter,
                landmark_column: &self.columns,
            }
        }

        fn effective_label(&self, v: VertexId) -> Vec<(usize, Distance)> {
            if let Some(idx) = self.landmarks.iter().position(|&r| r == v) {
                vec![(idx, 0)]
            } else {
                self.labelling.entries(v).collect()
            }
        }

        fn query(&self, u: VertexId, v: VertexId) -> (PathGraph, SearchStats) {
            let sk = sketch::compute(
                &self.meta,
                u,
                v,
                &self.effective_label(u),
                &self.effective_label(v),
            );
            self.context().guided_search(u, v, &sk)
        }
    }

    #[test]
    fn reproduces_figure_6f() {
        let fx = Fixture::figure4();
        let (answer, stats) = fx.query(6, 11);
        assert_eq!(answer.distance(), 5);
        let expected = PathGraph::from_edges(6, 11, 5, figure4_spg_6_11_edges());
        assert_eq!(answer, expected);
        assert_eq!(stats.upper_bound, 5);
        assert_eq!(stats.sparsified_distance, 5);
        assert!(stats.used_reverse_search);
        assert!(stats.used_recover_search);
        assert_eq!(stats.distance, 5);
    }

    #[test]
    fn all_pairs_match_ground_truth_on_figure4() {
        let fx = Fixture::figure4();
        for u in 1..15u32 {
            for v in 1..15u32 {
                if u == v {
                    continue;
                }
                let expected = exact_spg(&fx.graph, u, v);
                let (got, stats) = fx.query(u, v);
                assert_eq!(got, expected, "query ({u},{v})");
                assert!(stats.upper_bound >= stats.distance || stats.upper_bound == INFINITE_DISTANCE);
            }
        }
    }

    #[test]
    fn pure_sparsified_query_skips_recover() {
        let fx = Fixture::figure4();
        // d(7, 9) = 2 via 7-8-9 (no landmark) but every landmark route is
        // longer, so only the reverse search runs.
        let (answer, stats) = fx.query(7, 9);
        assert_eq!(answer.distance(), 2);
        assert_eq!(answer.edges(), &[(7, 8), (8, 9)]);
        assert!(stats.used_reverse_search);
        assert!(!stats.used_recover_search);
        assert!(stats.sparsified_distance < stats.upper_bound);
    }

    #[test]
    fn pure_landmark_query_skips_reverse() {
        let fx = Fixture::figure4();
        // d(4, 12) = 2 via 4-3-12 only (through landmark 3); in G⁻ vertex 4
        // is isolated, so only the recover search contributes.
        let (answer, stats) = fx.query(4, 12);
        assert_eq!(answer.distance(), 2);
        assert_eq!(answer.edges(), &[(3, 4), (3, 12)]);
        assert!(!stats.used_reverse_search);
        assert!(stats.used_recover_search);
        assert_eq!(stats.sparsified_distance, INFINITE_DISTANCE);
    }

    #[test]
    fn landmark_endpoints_are_supported() {
        let fx = Fixture::figure4();
        for &u in &[1u32, 2, 3] {
            for v in 1..15u32 {
                if u == v {
                    continue;
                }
                let expected = exact_spg(&fx.graph, u, v);
                let (got, _) = fx.query(u, v);
                assert_eq!(got, expected, "query ({u},{v})");
            }
        }
    }

    #[test]
    fn stats_report_search_effort() {
        let fx = Fixture::figure4();
        let (_, stats) = fx.query(6, 11);
        assert!(stats.vertices_settled > 0);
        assert!(stats.edges_traversed > 0);
        assert!(stats.forward_levels + stats.backward_levels > 0);
    }

    /// Exact answer via two BFSs (kept local to avoid a dev-dependency cycle
    /// with qbs-baselines inside unit tests).
    fn exact_spg(graph: &Graph, u: VertexId, v: VertexId) -> PathGraph {
        use qbs_graph::traversal::bfs_distances;
        if u == v {
            return PathGraph::trivial(u);
        }
        let du = bfs_distances(graph, u);
        let total = du[v as usize];
        if total == INFINITE_DISTANCE {
            return PathGraph::unreachable(u, v);
        }
        let dv = bfs_distances(graph, v);
        let mut edges = Vec::new();
        for (a, b) in graph.edges() {
            if du[a as usize] == INFINITE_DISTANCE || du[b as usize] == INFINITE_DISTANCE {
                continue;
            }
            if du[a as usize] + 1 + dv[b as usize] == total
                || du[b as usize] + 1 + dv[a as usize] == total
            {
                edges.push((a, b));
            }
        }
        PathGraph::from_edges(u, v, total, edges)
    }
}
