//! Index persistence.
//!
//! The labelling phase is the expensive part of QbS (minutes to hours on the
//! paper's largest graphs), so a production deployment builds the index once
//! and serves queries from it afterwards. This module persists a built
//! [`QbsIndex`] to disk and restores it, with a small header so version or
//! format mismatches are reported instead of silently mis-read.

use std::path::Path;

use crate::query::QbsIndex;
use crate::{QbsError, Result};

/// Magic prefix of the serialised index format.
const MAGIC: &str = "qbs-index-v1";

/// Serialises the index to a self-describing byte buffer.
pub fn to_bytes(index: &QbsIndex) -> Result<Vec<u8>> {
    let body = serde_json::to_vec(index)
        .map_err(|e| QbsError::Corrupt(format!("serialisation failed: {e}")))?;
    let mut out = Vec::with_capacity(MAGIC.len() + 1 + body.len());
    out.extend_from_slice(MAGIC.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(&body);
    Ok(out)
}

/// Restores an index from a buffer produced by [`to_bytes`].
pub fn from_bytes(data: &[u8]) -> Result<QbsIndex> {
    let prefix_len = MAGIC.len() + 1;
    if data.len() < prefix_len
        || &data[..MAGIC.len()] != MAGIC.as_bytes()
        || data[MAGIC.len()] != b'\n'
    {
        return Err(QbsError::Corrupt("missing qbs-index-v1 header".into()));
    }
    serde_json::from_slice(&data[prefix_len..])
        .map_err(|e| QbsError::Corrupt(format!("deserialisation failed: {e}")))
}

/// Writes the index to a file.
pub fn save_to_file<P: AsRef<Path>>(index: &QbsIndex, path: P) -> Result<()> {
    std::fs::write(path, to_bytes(index)?)?;
    Ok(())
}

/// Reads an index from a file written by [`save_to_file`].
pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<QbsIndex> {
    from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QbsConfig;
    use qbs_graph::fixtures::figure4_graph;

    fn index() -> QbsIndex {
        QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        )
    }

    #[test]
    fn roundtrip_preserves_answers_and_stats() {
        let original = index();
        let bytes = to_bytes(&original).expect("serialize");
        let restored = from_bytes(&bytes).expect("deserialize");
        assert_eq!(original.landmarks(), restored.landmarks());
        assert_eq!(original.labelling(), restored.labelling());
        assert_eq!(original.meta_graph(), restored.meta_graph());
        for (u, v) in [(6u32, 11u32), (4, 12), (7, 9), (13, 8)] {
            assert_eq!(original.query(u, v), restored.query(u, v));
        }
        assert_eq!(
            original.stats().total_index_bytes(),
            restored.stats().total_index_bytes()
        );
    }

    #[test]
    fn rejects_corrupt_data() {
        let mut bytes = to_bytes(&index()).expect("serialize");
        assert!(from_bytes(&bytes[..5]).is_err());
        assert!(from_bytes(b"not an index at all").is_err());
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
        // Valid header but truncated body.
        let ok = to_bytes(&index()).expect("serialize");
        assert!(from_bytes(&ok[..MAGIC.len() + 10]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("qbs_core_serialize_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("figure4.qbs");
        let original = index();
        save_to_file(&original, &path).expect("save");
        let restored = load_from_file(&path).expect("load");
        assert_eq!(original.query(6, 11), restored.query(6, 11));
        assert!(load_from_file(dir.join("missing.qbs")).is_err());
    }
}
