//! Index persistence.
//!
//! The labelling phase is the expensive part of QbS (minutes to hours on the
//! paper's largest graphs), so a production deployment builds the index once
//! and serves queries from it afterwards. Two on-disk formats exist:
//!
//! * **v1** (`qbs-index-v1`): a JSON body behind a one-line magic header.
//!   Human-inspectable, but loading costs `O(index)` text parsing plus a
//!   full heap reconstruction.
//! * **v2** (`qbs-index-v2`, [`crate::format`]): a flat little-endian
//!   binary layout with an aligned section table and checksum, loaded by a
//!   single buffer read plus typed views — the *wide* binary profile.
//! * **v3** (`qbs-index-v3`, [`crate::format`]): the *compact* binary
//!   profile — same section table and checksum discipline as v2, but with
//!   a header-declared width profile, front-coded varint label/adjacency
//!   runs and narrow APSP/Δ tables. Typically well under half the size of
//!   v2 and served zero-copy through [`crate::store::CompactStore`].
//!
//! [`load_from_file`] dispatches on the magic bytes and reads every
//! version, so old v1/v2 files keep working; re-save with
//! [`IndexFormat::Binary`] (and pick an [`IndexProfile`]) to migrate.
//! Corrupt inputs are always reported as [`QbsError::Corrupt`] — never a
//! panic — and error messages embed at most an [`EXCERPT_LEN`]-byte
//! excerpt of the offending data.

use std::io::Read;
use std::path::Path;

use crate::format::{self, CompactView, IndexView, ViewBuf};
use crate::query::QbsIndex;
use crate::{QbsError, Result};

/// Magic prefix of the v1 serialised index format.
pub const MAGIC_V1: &str = "qbs-index-v1";

/// Maximum number of payload bytes quoted inside a corruption error.
pub const EXCERPT_LEN: usize = 32;

/// On-disk index formats understood by this module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexFormat {
    /// v1: JSON behind a magic header. Kept for compatibility and
    /// human inspection.
    Json,
    /// v2: the flat binary `qbs-index-v2` layout — the default.
    #[default]
    Binary,
}

impl std::fmt::Display for IndexFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexFormat::Json => write!(f, "json"),
            IndexFormat::Binary => write!(f, "binary"),
        }
    }
}

/// Width profile of the binary index layout: which of the two binary
/// versions ([`IndexFormat::Binary`]) a writer emits. Orthogonal to the
/// JSON/binary split — v1 JSON has no profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexProfile {
    /// v2: fixed 32/64-bit fields throughout — the compatibility default.
    #[default]
    Wide,
    /// v3: header-declared narrow widths, front-coded varint runs.
    Compact,
}

impl std::fmt::Display for IndexProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexProfile::Wide => write!(f, "wide"),
            IndexProfile::Compact => write!(f, "compact"),
        }
    }
}

/// Serialises the index to a self-describing v1 JSON byte buffer.
pub fn to_bytes(index: &QbsIndex) -> Result<Vec<u8>> {
    let body = serde_json::to_vec(index)
        .map_err(|e| QbsError::Corrupt(format!("serialisation failed: {e}")))?;
    let mut out = Vec::with_capacity(MAGIC_V1.len() + 1 + body.len());
    out.extend_from_slice(MAGIC_V1.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(&body);
    Ok(out)
}

/// Restores an index from a v1 buffer produced by [`to_bytes`].
///
/// The magic header is validated before the body is touched; a v2 binary
/// buffer is rejected with a pointer at the v2 loader instead of a JSON
/// parse error.
pub fn from_bytes(data: &[u8]) -> Result<QbsIndex> {
    if data.starts_with(&format::MAGIC_V2) {
        return Err(QbsError::Corrupt(
            "this is a qbs-index-v2 binary index; decode it with from_bytes_v2 or \
             load_from_file (which reads both versions)"
                .into(),
        ));
    }
    if data.starts_with(&format::MAGIC_V3) {
        return Err(QbsError::Corrupt(
            "this is a qbs-index-v3 compact binary index; decode it with from_bytes_v3 or \
             load_from_file (which reads every version)"
                .into(),
        ));
    }
    let prefix_len = MAGIC_V1.len() + 1;
    if data.len() < prefix_len
        || &data[..MAGIC_V1.len()] != MAGIC_V1.as_bytes()
        || data[MAGIC_V1.len()] != b'\n'
    {
        return Err(QbsError::Corrupt(format!(
            "missing qbs-index-v1 header; data starts with {}",
            excerpt(data)
        )));
    }
    serde_json::from_slice(&data[prefix_len..])
        .map_err(|e| QbsError::Corrupt(format!("deserialisation failed: {}", truncate_message(&e))))
}

/// Serialises the index to a v2 flat binary buffer ([`crate::format`]).
pub fn to_bytes_v2(index: &QbsIndex) -> Result<Vec<u8>> {
    format::write_v2(index)
}

/// Restores an index from a v2 buffer produced by [`to_bytes_v2`].
pub fn from_bytes_v2(data: &[u8]) -> Result<QbsIndex> {
    let view = IndexView::parse(ViewBuf::Heap(data.to_vec()))?;
    Ok(QbsIndex::from_view(&view))
}

/// Serialises the index to a v3 compact binary buffer ([`crate::format`]).
pub fn to_bytes_v3(index: &QbsIndex) -> Result<Vec<u8>> {
    format::write_v3(index)
}

/// Restores an index from a v3 buffer produced by [`to_bytes_v3`].
pub fn from_bytes_v3(data: &[u8]) -> Result<QbsIndex> {
    let view = CompactView::parse(ViewBuf::Heap(data.to_vec()))?;
    Ok(QbsIndex::from_compact_view(&view))
}

/// Serialises the index in the requested format (binary output uses the
/// wide v2 profile; see [`to_bytes_with_profile`]).
pub fn to_bytes_with(index: &QbsIndex, format: IndexFormat) -> Result<Vec<u8>> {
    to_bytes_with_profile(index, format, IndexProfile::Wide)
}

/// Serialises the index in the requested format and (for binary output)
/// width profile. The profile is ignored for [`IndexFormat::Json`], which
/// has exactly one layout.
pub fn to_bytes_with_profile(
    index: &QbsIndex,
    format: IndexFormat,
    profile: IndexProfile,
) -> Result<Vec<u8>> {
    match (format, profile) {
        (IndexFormat::Json, _) => to_bytes(index),
        (IndexFormat::Binary, IndexProfile::Wide) => to_bytes_v2(index),
        (IndexFormat::Binary, IndexProfile::Compact) => to_bytes_v3(index),
    }
}

/// Writes the index to a file in the default ([`IndexFormat::Binary`],
/// wide profile) format.
pub fn save_to_file<P: AsRef<Path>>(index: &QbsIndex, path: P) -> Result<()> {
    save_to_file_with(index, path, IndexFormat::default())
}

/// Writes the index to a file in the requested format (wide profile for
/// binary output).
pub fn save_to_file_with<P: AsRef<Path>>(
    index: &QbsIndex,
    path: P,
    format: IndexFormat,
) -> Result<()> {
    save_to_file_with_profile(index, path, format, IndexProfile::Wide)
}

/// Writes the index to a file in the requested format and width profile.
pub fn save_to_file_with_profile<P: AsRef<Path>>(
    index: &QbsIndex,
    path: P,
    format: IndexFormat,
    profile: IndexProfile,
) -> Result<()> {
    std::fs::write(path, to_bytes_with_profile(index, format, profile)?)?;
    Ok(())
}

/// Reads an index from a file written by [`save_to_file_with`] in either
/// format.
///
/// The magic bytes are sniffed from the first [`format::HEADER_LEN`] bytes
/// *before* the body is read, so an unrecognised file is rejected without
/// pulling its full contents into memory, and the error quotes at most an
/// [`EXCERPT_LEN`]-byte excerpt.
pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<QbsIndex> {
    let (head, file) = read_header(path.as_ref())?;
    match sniff_format(&head)? {
        IndexFormat::Json => from_bytes(&read_rest(head, file)?),
        // Hand the file buffer to the view directly — unlike the
        // `from_bytes_*` entry points (which serve borrowed slices and
        // must copy), this path never duplicates the buffer.
        IndexFormat::Binary if head.starts_with(&format::MAGIC_V3) => {
            let view = CompactView::parse(ViewBuf::Heap(read_rest(head, file)?))?;
            Ok(QbsIndex::from_compact_view(&view))
        }
        IndexFormat::Binary => {
            let view = IndexView::parse(ViewBuf::Heap(read_rest(head, file)?))?;
            Ok(QbsIndex::from_view(&view))
        }
    }
}

/// How [`load_view_from_file`] acquires (and vets) the index bytes.
///
/// The two modes are the two halves of the serving story:
///
/// * [`MapMode::Read`] — copy the file into a heap buffer and run **full**
///   integrity validation (checksum + structural scans). The ingest /
///   inspection path: use it for files of unknown provenance.
/// * [`MapMode::Mmap`] — memory-map the immutable index file
///   ([`crate::mmap`]) and validate only the **geometry** (header, section
///   table, every array length the header implies), deferring the
///   `O(file)` checksum and structural scans. Opening is `O(1)` in the
///   index size — pages stream in on demand as queries touch them — which
///   is what lets a cold shard process answer its first query in the time
///   it takes to map one file. Intended for immutable files your own build
///   pipeline wrote (the writer checksums every file); run
///   [`IndexView::verify`] — or `qbs inspect` — when provenance is in
///   doubt. On targets without the mmap shim the bytes are transparently
///   read to the heap instead, with the same deferred-validation
///   semantics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MapMode {
    /// Heap copy + full validation (the safe default).
    #[default]
    Read,
    /// Memory-map + geometry-only validation (the serving fast path).
    Mmap,
}

impl std::fmt::Display for MapMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapMode::Read => write!(f, "read"),
            MapMode::Mmap => write!(f, "mmap"),
        }
    }
}

/// Opens a v2 index file as a zero-copy [`IndexView`] without materialising
/// the runtime structures — the entry point for callers that only need
/// section metadata or the raw label / adjacency accessors, and (wrapped in
/// a [`crate::store::ViewStore`]) for serving queries straight from the
/// file. See [`MapMode`] for the buffer-acquisition and validation
/// semantics of the two modes.
pub fn load_view_from_file<P: AsRef<Path>>(path: P, mode: MapMode) -> Result<IndexView> {
    let path = path.as_ref();
    match mode {
        MapMode::Read => {
            let (head, file) = read_header(path)?;
            reject_non_binary(&head)?;
            IndexView::parse(ViewBuf::Heap(read_rest(head, file)?))
        }
        MapMode::Mmap => {
            let region = crate::mmap::MmapRegion::map_file(path)?;
            reject_non_binary(region.as_slice())?;
            IndexView::parse_trusted(ViewBuf::Mmap(std::sync::Arc::new(region)))
        }
    }
}

/// Opens a v2 index file as a ready-to-serve [`crate::store::ViewStore`]:
/// [`load_view_from_file`] plus the store wrapper. With [`MapMode::Mmap`]
/// this is the whole cold-start path of a shard process — map, wrap, serve.
pub fn open_store_from_file<P: AsRef<Path>>(
    path: P,
    mode: MapMode,
) -> Result<crate::store::ViewStore> {
    Ok(crate::store::ViewStore::new(load_view_from_file(
        path, mode,
    )?))
}

/// Opens a v3 compact index file as a zero-copy
/// [`CompactView`] — the v3 twin of [`load_view_from_file`], with the same
/// [`MapMode`] semantics (`Read` = heap copy + full validation, `Mmap` =
/// map + geometry-only validation with [`CompactView::verify`] deferred).
pub fn load_compact_view_from_file<P: AsRef<Path>>(path: P, mode: MapMode) -> Result<CompactView> {
    let path = path.as_ref();
    match mode {
        MapMode::Read => {
            let (head, file) = read_header(path)?;
            reject_non_compact(&head)?;
            CompactView::parse(ViewBuf::Heap(read_rest(head, file)?))
        }
        MapMode::Mmap => {
            let region = crate::mmap::MmapRegion::map_file(path)?;
            reject_non_compact(region.as_slice())?;
            CompactView::parse_trusted(ViewBuf::Mmap(std::sync::Arc::new(region)))
        }
    }
}

/// Opens a v3 compact index file as a ready-to-serve
/// [`crate::store::CompactStore`]: [`load_compact_view_from_file`] plus the
/// store wrapper. The compact twin of [`open_store_from_file`].
pub fn open_compact_store_from_file<P: AsRef<Path>>(
    path: P,
    mode: MapMode,
) -> Result<crate::store::CompactStore> {
    Ok(crate::store::CompactStore::new(
        load_compact_view_from_file(path, mode)?,
    ))
}

/// Rejects v1 (and unrecognised) headers on the view path with a
/// migration hint instead of a parse error.
fn reject_non_binary(head: &[u8]) -> Result<()> {
    if sniff_format(head)? != IndexFormat::Binary {
        return Err(QbsError::Corrupt(
            "this is a qbs-index-v1 JSON index; only v2 binary files support zero-copy \
             views — load it with load_from_file and re-save with the binary format to \
             migrate"
                .into(),
        ));
    }
    Ok(())
}

/// Rejects everything but a v3 header on the compact-view path, with a
/// version-specific migration hint.
fn reject_non_compact(head: &[u8]) -> Result<()> {
    if head.starts_with(&format::MAGIC_V3) {
        Ok(())
    } else if head.starts_with(&format::MAGIC_V2) {
        Err(QbsError::Corrupt(
            "this is a qbs-index-v2 wide index; open it with load_view_from_file, or \
             convert it to the compact profile with `qbs convert` and re-open"
                .into(),
        ))
    } else if head.starts_with(MAGIC_V1.as_bytes()) {
        Err(QbsError::Corrupt(
            "this is a qbs-index-v1 JSON index; only binary files support zero-copy \
             views — load it with load_from_file and re-save with the compact profile \
             to migrate"
                .into(),
        ))
    } else {
        sniff_format(head).map(|_| ())?;
        unreachable!("sniff_format accepts only magics handled above")
    }
}

/// Identifies the on-disk format of `path` from its magic bytes, reading
/// only the header.
pub fn detect_format<P: AsRef<Path>>(path: P) -> Result<IndexFormat> {
    let (head, _) = read_header(path.as_ref())?;
    sniff_format(&head)
}

/// Identifies the width profile of `path` from its magic bytes, reading
/// only the header. v1 JSON and v2 files report [`IndexProfile::Wide`]
/// (fixed-width layouts); v3 files report [`IndexProfile::Compact`].
pub fn detect_profile<P: AsRef<Path>>(path: P) -> Result<IndexProfile> {
    let (head, _) = read_header(path.as_ref())?;
    sniff_format(&head)?;
    if head.starts_with(&format::MAGIC_V3) {
        Ok(IndexProfile::Compact)
    } else {
        Ok(IndexProfile::Wide)
    }
}

/// Reads just enough of the file to dispatch on the magic bytes.
fn read_header(path: &Path) -> Result<(Vec<u8>, std::fs::File)> {
    let mut file = std::fs::File::open(path)?;
    let mut head = Vec::with_capacity(format::HEADER_LEN);
    file.by_ref()
        .take(format::HEADER_LEN as u64)
        .read_to_end(&mut head)?;
    Ok((head, file))
}

/// Appends the remainder of the file to the already-read header bytes.
fn read_rest(mut head: Vec<u8>, mut file: std::fs::File) -> Result<Vec<u8>> {
    file.read_to_end(&mut head)?;
    Ok(head)
}

/// Dispatches on the magic bytes of a header excerpt.
fn sniff_format(head: &[u8]) -> Result<IndexFormat> {
    if head.starts_with(&format::MAGIC_V2) || head.starts_with(&format::MAGIC_V3) {
        Ok(IndexFormat::Binary)
    } else if head.starts_with(MAGIC_V1.as_bytes()) {
        Ok(IndexFormat::Json)
    } else {
        // Only the header was read here; trim to the excerpt budget so the
        // message does not misreport the header length as the file size.
        Err(QbsError::Corrupt(format!(
            "not a qbs index file: expected the '{MAGIC_V1}', qbs-index-v2 or \
             qbs-index-v3 magic, found {}",
            excerpt(&head[..head.len().min(EXCERPT_LEN)])
        )))
    }
}

/// A bounded, printable excerpt of untrusted bytes for error messages —
/// never more than [`EXCERPT_LEN`] source bytes, non-ASCII escaped.
pub(crate) fn excerpt(data: &[u8]) -> String {
    let head = &data[..data.len().min(EXCERPT_LEN)];
    let printable: String = head
        .iter()
        .flat_map(|&b| std::ascii::escape_default(b))
        .map(char::from)
        .collect();
    if data.len() > EXCERPT_LEN {
        format!("\"{printable}\"... ({} bytes total)", data.len())
    } else {
        format!("\"{printable}\"")
    }
}

/// Caps a decoder error message so corrupt payload fragments embedded in it
/// cannot blow up logs.
fn truncate_message(err: &impl std::fmt::Display) -> String {
    const MAX: usize = 160;
    let mut msg = err.to_string();
    if msg.len() > MAX {
        let mut cut = MAX;
        while !msg.is_char_boundary(cut) {
            cut -= 1;
        }
        msg.truncate(cut);
        msg.push_str("... (truncated)");
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QbsConfig;
    use qbs_graph::fixtures::figure4_graph;

    fn index() -> QbsIndex {
        QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        )
    }

    #[test]
    fn v1_roundtrip_preserves_answers_and_stats() {
        let original = index();
        let bytes = to_bytes(&original).expect("serialize");
        let restored = from_bytes(&bytes).expect("deserialize");
        assert_eq!(original.landmarks(), restored.landmarks());
        assert_eq!(original.labelling(), restored.labelling());
        assert_eq!(original.meta_graph(), restored.meta_graph());
        for (u, v) in [(6u32, 11u32), (4, 12), (7, 9), (13, 8)] {
            assert_eq!(original.query(u, v).unwrap(), restored.query(u, v).unwrap());
        }
        assert_eq!(
            original.stats().total_index_bytes(),
            restored.stats().total_index_bytes()
        );
    }

    #[test]
    fn v2_roundtrip_preserves_answers_and_stats() {
        let original = index();
        let bytes = to_bytes_v2(&original).expect("serialize");
        let restored = from_bytes_v2(&bytes).expect("deserialize");
        assert_eq!(original.landmarks(), restored.landmarks());
        assert_eq!(original.labelling(), restored.labelling());
        assert_eq!(original.meta_graph(), restored.meta_graph());
        for (u, v) in [(6u32, 11u32), (4, 12), (7, 9), (13, 8)] {
            assert_eq!(original.query(u, v).unwrap(), restored.query(u, v).unwrap());
        }
        assert_eq!(
            original.stats().total_index_bytes(),
            restored.stats().total_index_bytes()
        );
    }

    #[test]
    fn rejects_corrupt_data() {
        let mut bytes = to_bytes(&index()).expect("serialize");
        assert!(from_bytes(&bytes[..5]).is_err());
        assert!(from_bytes(b"not an index at all").is_err());
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
        // Valid header but truncated body.
        let ok = to_bytes(&index()).expect("serialize");
        assert!(from_bytes(&ok[..MAGIC_V1.len() + 10]).is_err());
    }

    #[test]
    fn cross_version_errors_point_at_the_right_loader() {
        let idx = index();
        let v2 = to_bytes_v2(&idx).expect("serialize v2");
        let err = from_bytes(&v2).unwrap_err();
        assert!(err.to_string().contains("from_bytes_v2"), "{err}");

        let v1 = to_bytes(&idx).expect("serialize v1");
        let err = from_bytes_v2(&v1).unwrap_err();
        assert!(err.to_string().contains("migrate"), "{err}");
    }

    #[test]
    fn corrupt_excerpts_are_truncated() {
        let mut junk = vec![0xEEu8; 4096];
        junk[0] = b'{';
        let err = from_bytes(&junk).unwrap_err().to_string();
        assert!(err.len() < 400, "error message is bounded: {err}");
        assert!(err.contains("4096 bytes total"), "{err}");
        let err2 = from_bytes_v2(&junk).unwrap_err().to_string();
        assert!(err2.len() < 400, "error message is bounded: {err2}");

        // A valid v1 header followed by garbage: the decoder error must be
        // capped too.
        let mut bytes = format!("{MAGIC_V1}\n").into_bytes();
        bytes.extend(std::iter::repeat_n(b'x', 10_000));
        let err3 = from_bytes(&bytes).unwrap_err().to_string();
        assert!(err3.len() < 400, "decoder error is bounded: {err3}");
    }

    #[test]
    fn excerpt_is_bounded_and_printable() {
        assert_eq!(excerpt(b"abc"), "\"abc\"");
        let long = excerpt(&vec![0u8; 1000]);
        assert!(long.contains("1000 bytes total"));
        assert!(long.len() < 4 * EXCERPT_LEN + 40);
        assert!(excerpt(b"\xFF\x00").contains("\\x"));
    }

    #[test]
    fn file_roundtrip_both_formats() {
        let dir = std::env::temp_dir().join("qbs_core_serialize_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let original = index();
        for (format, name) in [
            (IndexFormat::Json, "figure4.v1.qbs"),
            (IndexFormat::Binary, "figure4.v2.qbs"),
        ] {
            let path = dir.join(name);
            save_to_file_with(&original, &path, format).expect("save");
            assert_eq!(detect_format(&path).expect("detect"), format);
            let restored = load_from_file(&path).expect("load");
            assert_eq!(
                original.query(6, 11).unwrap(),
                restored.query(6, 11).unwrap()
            );
        }
        assert!(load_from_file(dir.join("missing.qbs")).is_err());

        // Unrecognised files are rejected from the header alone.
        let junk = dir.join("junk.qbs");
        std::fs::write(&junk, vec![0x42u8; 1 << 16]).expect("write junk");
        let err = load_from_file(&junk).unwrap_err().to_string();
        assert!(err.contains("not a qbs index file"), "{err}");
        assert!(err.len() < 400, "{err}");
    }

    #[test]
    fn view_loading_from_file() {
        let dir = std::env::temp_dir().join("qbs_core_serialize_view_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let original = index();
        let v2 = dir.join("fig4.qbs2");
        save_to_file_with(&original, &v2, IndexFormat::Binary).expect("save v2");
        let view = load_view_from_file(&v2, MapMode::Read).expect("view");
        assert!(view.is_verified());
        assert_eq!(view.num_landmarks(), 3);
        assert_eq!(
            original.query(6, 11).unwrap(),
            QbsIndex::from_view(&view).query(6, 11).unwrap()
        );

        // The mmap mode serves identical bytes with deferred validation.
        let mapped = load_view_from_file(&v2, MapMode::Mmap).expect("mmap view");
        assert!(!mapped.is_verified());
        mapped.verify().expect("deferred verification passes");
        assert!(matches!(mapped.buf(), ViewBuf::Mmap(_)));
        assert_eq!(
            QbsIndex::from_view(&mapped).query(6, 11).unwrap(),
            original.query(6, 11).unwrap()
        );

        // Serving stores open through the same dispatcher.
        let store = open_store_from_file(&v2, MapMode::Mmap).expect("store");
        assert_eq!(store.view().num_landmarks(), 3);

        let v1 = dir.join("fig4.qbs1");
        save_to_file_with(&original, &v1, IndexFormat::Json).expect("save v1");
        for mode in [MapMode::Read, MapMode::Mmap] {
            let err = load_view_from_file(&v1, mode).unwrap_err();
            assert!(err.to_string().contains("re-save"), "{mode}: {err}");
        }
        assert_eq!(MapMode::Read.to_string(), "read");
        assert_eq!(MapMode::Mmap.to_string(), "mmap");
        assert_eq!(MapMode::default(), MapMode::Read);
    }

    #[test]
    fn format_display_names() {
        assert_eq!(IndexFormat::Json.to_string(), "json");
        assert_eq!(IndexFormat::Binary.to_string(), "binary");
        assert_eq!(IndexFormat::default(), IndexFormat::Binary);
        assert_eq!(IndexProfile::Wide.to_string(), "wide");
        assert_eq!(IndexProfile::Compact.to_string(), "compact");
        assert_eq!(IndexProfile::default(), IndexProfile::Wide);
    }

    #[test]
    fn v3_roundtrip_and_dispatching_loader() {
        let original = index();
        let bytes = to_bytes_v3(&original).expect("serialize v3");
        let restored = from_bytes_v3(&bytes).expect("deserialize v3");
        assert_eq!(original.landmarks(), restored.landmarks());
        assert_eq!(original.labelling(), restored.labelling());
        assert_eq!(original.meta_graph(), restored.meta_graph());
        for (u, v) in [(6u32, 11u32), (4, 12), (7, 9), (13, 8)] {
            assert_eq!(original.query(u, v).unwrap(), restored.query(u, v).unwrap());
        }

        // File round trip through the profile-aware writer and the
        // magic-sniffing loader.
        let dir = std::env::temp_dir().join("qbs_core_serialize_v3_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("fig4.qbs3");
        save_to_file_with_profile(&original, &path, IndexFormat::Binary, IndexProfile::Compact)
            .expect("save v3");
        assert_eq!(detect_format(&path).expect("detect"), IndexFormat::Binary);
        assert_eq!(
            detect_profile(&path).expect("profile"),
            IndexProfile::Compact
        );
        let loaded = load_from_file(&path).expect("load v3");
        assert_eq!(original.query(6, 11).unwrap(), loaded.query(6, 11).unwrap());

        // A wide file reports the wide profile; v1 too.
        let wide = dir.join("fig4.qbs2");
        save_to_file_with(&original, &wide, IndexFormat::Binary).expect("save v2");
        assert_eq!(detect_profile(&wide).expect("profile"), IndexProfile::Wide);
        let json = dir.join("fig4.qbs1");
        save_to_file_with(&original, &json, IndexFormat::Json).expect("save v1");
        assert_eq!(detect_profile(&json).expect("profile"), IndexProfile::Wide);

        // The profile is ignored for JSON output (one layout only).
        let j = to_bytes_with_profile(&original, IndexFormat::Json, IndexProfile::Compact)
            .expect("json bytes");
        assert!(j.starts_with(MAGIC_V1.as_bytes()));
    }

    #[test]
    fn compact_view_loading_from_file() {
        let dir = std::env::temp_dir().join("qbs_core_serialize_compact_view_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let original = index();
        let v3 = dir.join("fig4.qbs3");
        save_to_file_with_profile(&original, &v3, IndexFormat::Binary, IndexProfile::Compact)
            .expect("save v3");

        let view = load_compact_view_from_file(&v3, MapMode::Read).expect("view");
        assert!(view.is_verified());
        assert_eq!(view.num_landmarks(), 3);
        assert_eq!(
            original.query(6, 11).unwrap(),
            QbsIndex::from_compact_view(&view).query(6, 11).unwrap()
        );

        // The mmap mode serves identical bytes with deferred validation.
        let mapped = load_compact_view_from_file(&v3, MapMode::Mmap).expect("mmap view");
        assert!(!mapped.is_verified());
        mapped.verify().expect("deferred verification passes");
        assert!(matches!(mapped.buf(), ViewBuf::Mmap(_)));
        assert_eq!(
            QbsIndex::from_compact_view(&mapped).query(6, 11).unwrap(),
            original.query(6, 11).unwrap()
        );

        // Serving stores open through the same dispatcher.
        let store = open_compact_store_from_file(&v3, MapMode::Mmap).expect("store");
        assert_eq!(store.view().num_landmarks(), 3);

        // Wrong-version files are rejected with pointed hints, both modes.
        let v2 = dir.join("fig4.qbs2");
        save_to_file_with(&original, &v2, IndexFormat::Binary).expect("save v2");
        let v1 = dir.join("fig4.qbs1");
        save_to_file_with(&original, &v1, IndexFormat::Json).expect("save v1");
        for mode in [MapMode::Read, MapMode::Mmap] {
            let err = load_compact_view_from_file(&v2, mode).unwrap_err();
            assert!(err.to_string().contains("qbs convert"), "{mode}: {err}");
            let err = load_compact_view_from_file(&v1, mode).unwrap_err();
            assert!(err.to_string().contains("re-save"), "{mode}: {err}");
            // And the v2 view path points v3 files back the other way.
            let err = load_view_from_file(&v3, mode).unwrap_err();
            assert!(err.to_string().contains("compact"), "{mode}: {err}");
        }

        // v1 decoding of a v3 buffer names the right loader.
        let v3_bytes = to_bytes_v3(&original).expect("serialize v3");
        let err = from_bytes(&v3_bytes).unwrap_err();
        assert!(err.to_string().contains("from_bytes_v3"), "{err}");
    }
}
