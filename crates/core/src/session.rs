//! The [`Qbs`] session façade: one handle that hides the owned-vs-view
//! backend choice.
//!
//! Production serving has two ways to get an index into memory — build it
//! (or load + materialise it) as an owned [`QbsIndex`], or map an
//! immutable `qbs-index-v2` file and serve straight from the bytes
//! through a [`ViewStore`]. Every query API in this crate is generic over
//! that choice, but downstream code should not have to be: a [`Qbs`]
//! session wraps either backend behind one type, carries the session's
//! thread budget and optional [`AnswerCache`], and keeps a persistent
//! workspace pool so its steady state allocates nothing per query.
//!
//! ```
//! use qbs_core::request::QueryRequest;
//! use qbs_core::{CacheConfig, Qbs, QbsConfig};
//! use qbs_graph::fixtures::figure4_graph;
//!
//! let qbs = Qbs::build(figure4_graph(), QbsConfig::with_landmark_count(3))
//!     .unwrap()
//!     .with_cache(CacheConfig::default());
//! assert_eq!(qbs.distance(6, 11).unwrap(), 5);
//! let outcomes = qbs.submit(&[
//!     QueryRequest::distance(6, 11),
//!     QueryRequest::path_graph(4, 12),
//! ]);
//! assert!(outcomes.iter().all(|o| o.is_ok()));
//! ```
//!
//! Opening a session from a file picks the backend from the file itself:
//! a v2 binary index is served zero-copy through a view, a v3 compact
//! index through a [`CompactStore`] (with [`MapMode::Mmap`], open is
//! `O(1)` in the index size for both), while a v1 JSON index — which has
//! no flat layout to point into — is materialised as an owned index. See
//! `docs/api.md` for the migration table from the pre-façade entry
//! points.

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qbs_graph::{Distance, Graph, PathGraph, VertexFilter, VertexId};

use crate::cache::{AnswerCache, CacheConfig, CacheStats};
use crate::engine::QueryEngine;
use crate::obs::{Metrics, MetricsSnapshot, Stage, StageNanos};
use crate::plan::{PlannerCounters, PlannerStats};
use crate::query::{QbsConfig, QbsIndex, QueryAnswer};
use crate::request::{execute_cached_on, QueryOutcome, QueryRequest};
use crate::serialize::{self, IndexFormat, IndexProfile, MapMode};
use crate::sketch::Sketch;
use crate::stats::IndexStats;
use crate::store::{CompactStore, IndexStore, ViewStore};
use crate::workspace::QueryWorkspace;
use crate::QbsError;

/// The storage backend of a [`Qbs`] session.
#[derive(Debug)]
pub enum QbsBackend {
    /// Heap-materialised index (built in process or loaded from v1/v2).
    /// Boxed: the owned index is an order of magnitude larger than the
    /// view wrapper, and sessions move through builder methods.
    Owned(Box<QbsIndex>),
    /// Zero-copy view over a `qbs-index-v2` buffer (heap or mmap).
    View(ViewStore),
    /// Zero-copy view over a `qbs-index-v3` compact buffer (heap or mmap).
    Compact(CompactStore),
}

impl QbsBackend {
    /// A short name for reports: `"owned"`, `"view"` or `"compact"`.
    pub fn name(&self) -> &'static str {
        match self {
            QbsBackend::Owned(_) => "owned",
            QbsBackend::View(_) => "view",
            QbsBackend::Compact(_) => "compact",
        }
    }
}

/// A stable snapshot of a session's serving counters — the payload of the
/// network protocol's `Stats` frame and of `qbs client --stats`, with a
/// canonical byte encoding in [`crate::wire`] (so the CLI and the server
/// share one struct instead of ad-hoc printing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Vertices in the served index.
    pub num_vertices: u64,
    /// Landmarks in the served index.
    pub num_landmarks: u64,
    /// Configured worker-thread budget.
    pub threads: u64,
    /// Whether the session serves from a zero-copy view (vs owned index).
    pub view_backed: bool,
    /// Typed requests executed (single and batched).
    pub requests: u64,
    /// [`Qbs::submit`] batches executed.
    pub batches: u64,
    /// Requests that resolved to a per-request error outcome.
    pub errors: u64,
    /// Batch execution planner counters (see [`crate::plan`]).
    pub planner: PlannerStats,
    /// Counter snapshot of the attached answer cache, if any.
    pub cache: Option<CacheStats>,
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "backend:   {} ({} vertices, {} landmarks)",
            if self.view_backed { "view" } else { "owned" },
            self.num_vertices,
            self.num_landmarks
        )?;
        writeln!(f, "threads:   {}", self.threads)?;
        writeln!(
            f,
            "requests:  {} in {} batches ({} errors)",
            self.requests, self.batches, self.errors
        )?;
        write!(
            f,
            "planner:   {} coalesced, {} labels memoized, {} fwd levels reused",
            self.planner.dedup_hits, self.planner.labels_memoized, self.planner.fwd_levels_reused
        )?;
        match &self.cache {
            Some(cache) => write!(f, "\n{cache}"),
            None => write!(f, "\ncache:     none attached"),
        }
    }
}

/// A ready-to-serve QbS session over either storage backend.
///
/// `Qbs` implements [`IndexStore`] itself (by delegation), so it plugs
/// into every generic API in the crate — including borrowing it as the
/// store of a [`QueryEngine`].
#[derive(Debug)]
pub struct Qbs {
    backend: QbsBackend,
    threads: usize,
    cache: Option<Arc<AnswerCache>>,
    /// Persistent workspace pool handed to the transient engines behind
    /// [`Qbs::submit`], so repeated batches reuse warm scratch state.
    pool: Mutex<Vec<QueryWorkspace>>,
    /// Serving counters behind [`Qbs::engine_stats`].
    requests: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    /// Batch-planner counters, shared with every transient engine so they
    /// accumulate for the session's lifetime.
    planner: Arc<PlannerCounters>,
    /// Observability registry (per-stage latency histograms), shared with
    /// every transient engine for the same reason.
    metrics: Arc<Metrics>,
}

impl Qbs {
    fn from_backend(backend: QbsBackend) -> Self {
        Qbs {
            backend,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache: None,
            pool: Mutex::new(Vec::new()),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            planner: Arc::new(PlannerCounters::default()),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Builds an owned index over `graph` and wraps it in a session.
    pub fn build(graph: Graph, config: QbsConfig) -> crate::Result<Self> {
        Self::build_with_profile(graph, config, IndexProfile::Wide)
    }

    /// Builds an index over `graph` and wraps it in a session serving the
    /// requested width profile: [`IndexProfile::Wide`] keeps the owned
    /// index, while [`IndexProfile::Compact`] re-serialises it into a
    /// `qbs-index-v3` heap buffer and serves zero-copy from those bytes —
    /// the in-process way to measure (or bank) the compact profile's
    /// footprint without touching disk. Answers are bit-identical across
    /// profiles.
    pub fn build_with_profile(
        graph: Graph,
        config: QbsConfig,
        profile: IndexProfile,
    ) -> crate::Result<Self> {
        let index = QbsIndex::try_build(graph, config)?;
        Ok(match profile {
            IndexProfile::Wide => Self::from_backend(QbsBackend::Owned(Box::new(index))),
            IndexProfile::Compact => Self::from_backend(QbsBackend::Compact(CompactStore::new(
                index.as_compact_view()?,
            ))),
        })
    }

    /// Wraps an already-built index in a session.
    pub fn from_index(index: QbsIndex) -> Self {
        Self::from_backend(QbsBackend::Owned(Box::new(index)))
    }

    /// Wraps an already-opened view store in a session — for callers that
    /// require the zero-copy backend and want format mismatches to fail
    /// loudly (pair with [`crate::serialize::open_store_from_file`], which
    /// rejects v1 files with a migration hint), rather than [`Qbs::open`]'s
    /// transparent owned fallback.
    pub fn from_view_store(store: ViewStore) -> Self {
        Self::from_backend(QbsBackend::View(store))
    }

    /// Wraps an already-opened compact store in a session — the v3 twin of
    /// [`Qbs::from_view_store`] (pair with
    /// [`crate::serialize::open_compact_store_from_file`]).
    pub fn from_compact_store(store: CompactStore) -> Self {
        Self::from_backend(QbsBackend::Compact(store))
    }

    /// Opens an index file for serving, picking the backend from the file
    /// format *and profile*: a v2 binary index is served zero-copy through
    /// a [`ViewStore`], a v3 compact index through a [`CompactStore`]
    /// (with [`MapMode::Mmap`] either is the `O(1)` cold-start path — map,
    /// wrap, serve), while a v1 JSON index is materialised as an owned
    /// index (`mode` is irrelevant then; re-save as binary to migrate).
    pub fn open<P: AsRef<Path>>(path: P, mode: MapMode) -> crate::Result<Self> {
        let path = path.as_ref();
        let backend = match serialize::detect_format(path)? {
            IndexFormat::Binary => match serialize::detect_profile(path)? {
                IndexProfile::Wide => {
                    QbsBackend::View(serialize::open_store_from_file(path, mode)?)
                }
                IndexProfile::Compact => {
                    QbsBackend::Compact(serialize::open_compact_store_from_file(path, mode)?)
                }
            },
            IndexFormat::Json => QbsBackend::Owned(Box::new(serialize::load_from_file(path)?)),
        };
        Ok(Self::from_backend(backend))
    }

    /// Opens an index file and materialises the owned index regardless of
    /// format — the choice for long-lived processes that prefer the owned
    /// arrays' per-query speed over the view's `O(1)` start-up.
    pub fn load<P: AsRef<Path>>(path: P) -> crate::Result<Self> {
        Ok(Self::from_backend(QbsBackend::Owned(Box::new(
            serialize::load_from_file(path)?,
        ))))
    }

    /// Sets the worker-thread budget of [`Qbs::submit`] batches.
    ///
    /// Fails with [`QbsError::ThreadPool`] when `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> crate::Result<Self> {
        if threads == 0 {
            return Err(QbsError::ThreadPool(
                "a Qbs session requires at least one worker thread".into(),
            ));
        }
        self.threads = threads;
        Ok(self)
    }

    /// Attaches a sharded LRU answer cache to the session (see
    /// [`crate::cache`]).
    pub fn with_cache(mut self, config: CacheConfig) -> Self {
        self.cache = Some(Arc::new(AnswerCache::new(config)));
        self
    }

    /// The session's storage backend.
    pub fn backend(&self) -> &QbsBackend {
        &self.backend
    }

    /// The owned index, when this session serves one (`None` on a
    /// view-backed session).
    pub fn index(&self) -> Option<&QbsIndex> {
        match &self.backend {
            QbsBackend::Owned(index) => Some(index),
            QbsBackend::View(_) | QbsBackend::Compact(_) => None,
        }
    }

    /// The view store, when this session serves straight from a v2 index
    /// buffer (`None` on an owned or compact session).
    pub fn view_store(&self) -> Option<&ViewStore> {
        match &self.backend {
            QbsBackend::View(store) => Some(store),
            QbsBackend::Owned(_) | QbsBackend::Compact(_) => None,
        }
    }

    /// The compact store, when this session serves straight from a v3
    /// index buffer (`None` on an owned or wide-view session).
    pub fn compact_store(&self) -> Option<&CompactStore> {
        match &self.backend {
            QbsBackend::Compact(store) => Some(store),
            QbsBackend::Owned(_) | QbsBackend::View(_) => None,
        }
    }

    /// Size/timing statistics — owned sessions only (a view never
    /// materialises the structures the report measures).
    pub fn stats(&self) -> Option<IndexStats> {
        self.index().map(QbsIndex::stats)
    }

    /// The configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached answer cache, if any.
    pub fn cache(&self) -> Option<&AnswerCache> {
        self.cache.as_deref()
    }

    /// Counter snapshot of the attached cache.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// A consistent snapshot of the session's serving counters — shared by
    /// the network `Stats` protocol frame and `qbs client --stats`.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            num_vertices: IndexStore::num_vertices(self) as u64,
            num_landmarks: self.num_landmarks() as u64,
            threads: self.threads as u64,
            view_backed: !matches!(self.backend, QbsBackend::Owned(_)),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            planner: self.planner.snapshot(),
            cache: self.cache_stats(),
        }
    }

    /// Folds one executed batch into the serving counters.
    fn count_outcomes(&self, outcomes: &[QueryOutcome]) {
        self.requests
            .fetch_add(outcomes.len() as u64, Ordering::Relaxed);
        let errors = outcomes.iter().filter(|o| o.is_error()).count() as u64;
        if errors > 0 {
            self.errors.fetch_add(errors, Ordering::Relaxed);
        }
    }

    /// Executes one typed request on a pooled workspace, through the
    /// session cache when attached.
    ///
    /// The backend is resolved **once per call**, so the search's inner
    /// loops run over the concrete monomorphised store, not through the
    /// façade's per-accessor delegation.
    pub fn execute(&self, request: &QueryRequest) -> QueryOutcome {
        let mut ws = self.checkout();
        let cache = self.cache.as_deref();
        let observed = self.metrics.is_enabled();
        ws.obs.enabled = observed;
        let t = ws.obs.start();
        let outcome = match &self.backend {
            QbsBackend::Owned(s) => execute_cached_on(s.as_ref(), &mut ws, request, cache),
            QbsBackend::View(s) => execute_cached_on(s, &mut ws, request, cache),
            QbsBackend::Compact(s) => execute_cached_on(s, &mut ws, request, cache),
        };
        ws.obs.stop(Stage::Execute, t);
        if observed {
            let ns = ws.obs.take();
            self.metrics.record_request(request.mode, &ns);
            ws.obs.enabled = false;
        }
        self.checkin(ws);
        self.count_outcomes(std::slice::from_ref(&outcome));
        outcome
    }

    /// Executes a heterogeneous batch of typed requests over the worker
    /// pool, with per-request outcomes ([`QueryEngine::submit`] semantics:
    /// one bad request fails alone). The session's workspace pool persists
    /// across calls, so repeated batches run allocation-free; concurrent
    /// `submit` calls merge their recovered pools (bounded at the thread
    /// budget) instead of clobbering each other's warm workspaces. The
    /// backend is resolved once per batch, so the workers run over the
    /// concrete monomorphised store.
    pub fn submit(&self, requests: &[QueryRequest]) -> Vec<QueryOutcome> {
        self.submit_observed(requests).0
    }

    /// [`Qbs::submit`] plus the batch's aggregate per-stage wall time,
    /// for callers (the serving tier) that feed a slow-query log.
    ///
    /// The returned [`StageNanos`] sums every stage across the whole
    /// batch; it is all zeros when metrics are disabled.
    pub fn submit_observed(&self, requests: &[QueryRequest]) -> (Vec<QueryOutcome>, StageNanos) {
        let pool = std::mem::take(&mut *self.pool.lock().expect("workspace pool poisoned"));
        let metrics = Some(Arc::clone(&self.metrics));
        let (outcomes, stage_ns, recovered) = match &self.backend {
            QbsBackend::Owned(s) => {
                let engine = QueryEngine::with_pool(
                    s.as_ref(),
                    self.threads,
                    pool,
                    self.cache.clone(),
                    Arc::clone(&self.planner),
                    metrics,
                );
                let outcomes = engine.submit(requests);
                (outcomes, engine.take_batch_obs(), engine.into_pool())
            }
            QbsBackend::View(s) => {
                let engine = QueryEngine::with_pool(
                    s,
                    self.threads,
                    pool,
                    self.cache.clone(),
                    Arc::clone(&self.planner),
                    metrics,
                );
                let outcomes = engine.submit(requests);
                (outcomes, engine.take_batch_obs(), engine.into_pool())
            }
            QbsBackend::Compact(s) => {
                let engine = QueryEngine::with_pool(
                    s,
                    self.threads,
                    pool,
                    self.cache.clone(),
                    Arc::clone(&self.planner),
                    metrics,
                );
                let outcomes = engine.submit(requests);
                (outcomes, engine.take_batch_obs(), engine.into_pool())
            }
        };
        let mut pool = self.pool.lock().expect("workspace pool poisoned");
        pool.extend(recovered);
        pool.truncate(self.threads);
        drop(pool);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.count_outcomes(&outcomes);
        (outcomes, stage_ns)
    }

    /// The session's observability registry. Shared with every transient
    /// engine, so per-stage histograms accumulate across batches.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Snapshot of the per-stage latency histograms accumulated so far.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Answers `SPG(source, target)` — the façade sibling of
    /// [`QbsIndex::query`], served from either backend.
    pub fn query(&self, source: VertexId, target: VertexId) -> crate::Result<PathGraph> {
        match self.execute(&QueryRequest::path_graph(source, target)) {
            QueryOutcome::PathGraph(pg) => Ok(*pg),
            outcome => Err(expect_error(outcome)),
        }
    }

    /// Answers `SPG(source, target)` with the sketch and search
    /// statistics behind it.
    pub fn query_with_stats(
        &self,
        source: VertexId,
        target: VertexId,
    ) -> crate::Result<QueryAnswer> {
        match self.execute(&QueryRequest::path_graph(source, target).with_stats()) {
            QueryOutcome::PathGraphWithStats(answer) => Ok(*answer),
            outcome => Err(expect_error(outcome)),
        }
    }

    /// Shortest-path distance between two vertices.
    pub fn distance(&self, source: VertexId, target: VertexId) -> crate::Result<Distance> {
        match self.execute(&QueryRequest::distance(source, target)) {
            QueryOutcome::Distance(d) => Ok(d),
            outcome => Err(expect_error(outcome)),
        }
    }

    /// The sketch of a query (no search).
    pub fn sketch(&self, source: VertexId, target: VertexId) -> crate::Result<Sketch> {
        match self.execute(&QueryRequest::sketch(source, target)) {
            QueryOutcome::Sketch(s) => Ok(*s),
            outcome => Err(expect_error(outcome)),
        }
    }

    fn checkout(&self) -> QueryWorkspace {
        self.pool
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_else(|| QueryWorkspace::for_vertices(IndexStore::num_vertices(self)))
    }

    fn checkin(&self, ws: QueryWorkspace) {
        let mut pool = self.pool.lock().expect("workspace pool poisoned");
        if pool.len() < self.threads {
            pool.push(ws);
        }
    }
}

/// Converts a non-matching outcome of a mode-specific façade method into
/// its error. The executor returns exactly the outcome variant the
/// request's mode asked for, so anything else must be the error variant.
fn expect_error(outcome: QueryOutcome) -> QbsError {
    match outcome {
        QueryOutcome::Error(e) => e.into(),
        other => unreachable!("executor returned a mismatched outcome variant: {other:?}"),
    }
}

/// The session is itself a storage backend: every accessor delegates to
/// the wrapped owned index or view store, so `Qbs` slots into any
/// `S: IndexStore` API (including a borrowed [`QueryEngine`]).
impl IndexStore for Qbs {
    #[inline]
    fn num_vertices(&self) -> usize {
        match &self.backend {
            QbsBackend::Owned(s) => s.num_vertices(),
            QbsBackend::View(s) => s.num_vertices(),
            QbsBackend::Compact(s) => s.num_vertices(),
        }
    }

    #[inline]
    fn num_landmarks(&self) -> usize {
        match &self.backend {
            QbsBackend::Owned(s) => s.num_landmarks(),
            QbsBackend::View(s) => s.num_landmarks(),
            QbsBackend::Compact(s) => s.num_landmarks(),
        }
    }

    #[inline]
    fn landmark(&self, idx: usize) -> VertexId {
        match &self.backend {
            QbsBackend::Owned(s) => s.landmark(idx),
            QbsBackend::View(s) => s.landmark(idx),
            QbsBackend::Compact(s) => s.landmark(idx),
        }
    }

    #[inline]
    fn landmark_filter(&self) -> &VertexFilter {
        match &self.backend {
            QbsBackend::Owned(s) => s.landmark_filter(),
            QbsBackend::View(s) => s.landmark_filter(),
            QbsBackend::Compact(s) => s.landmark_filter(),
        }
    }

    #[inline]
    fn landmark_column(&self, v: VertexId) -> Option<usize> {
        match &self.backend {
            QbsBackend::Owned(s) => s.landmark_column(v),
            QbsBackend::View(s) => s.landmark_column(v),
            QbsBackend::Compact(s) => s.landmark_column(v),
        }
    }

    #[inline]
    fn is_landmark(&self, v: VertexId) -> bool {
        match &self.backend {
            QbsBackend::Owned(s) => IndexStore::is_landmark(s.as_ref(), v),
            QbsBackend::View(s) => s.is_landmark(v),
            QbsBackend::Compact(s) => s.is_landmark(v),
        }
    }

    #[inline]
    fn label_distance(&self, v: VertexId, landmark_idx: usize) -> Option<Distance> {
        match &self.backend {
            QbsBackend::Owned(s) => s.label_distance(v, landmark_idx),
            QbsBackend::View(s) => s.label_distance(v, landmark_idx),
            QbsBackend::Compact(s) => s.label_distance(v, landmark_idx),
        }
    }

    fn fill_label_entries(&self, v: VertexId, out: &mut Vec<(usize, Distance)>) {
        match &self.backend {
            QbsBackend::Owned(s) => s.fill_label_entries(v, out),
            QbsBackend::View(s) => s.fill_label_entries(v, out),
            QbsBackend::Compact(s) => s.fill_label_entries(v, out),
        }
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, visit: F) {
        match &self.backend {
            QbsBackend::Owned(s) => s.for_each_neighbor(v, visit),
            QbsBackend::View(s) => s.for_each_neighbor(v, visit),
            QbsBackend::Compact(s) => s.for_each_neighbor(v, visit),
        }
    }

    #[inline]
    fn meta_distance(&self, i: usize, j: usize) -> Distance {
        match &self.backend {
            QbsBackend::Owned(s) => s.meta_distance(i, j),
            QbsBackend::View(s) => s.meta_distance(i, j),
            QbsBackend::Compact(s) => s.meta_distance(i, j),
        }
    }

    #[inline]
    fn num_meta_edges(&self) -> usize {
        match &self.backend {
            QbsBackend::Owned(s) => s.num_meta_edges(),
            QbsBackend::View(s) => s.num_meta_edges(),
            QbsBackend::Compact(s) => s.num_meta_edges(),
        }
    }

    #[inline]
    fn meta_edge(&self, k: usize) -> (usize, usize, Distance) {
        match &self.backend {
            QbsBackend::Owned(s) => s.meta_edge(k),
            QbsBackend::View(s) => s.meta_edge(k),
            QbsBackend::Compact(s) => s.meta_edge(k),
        }
    }

    #[inline]
    fn meta_edge_index(&self, i: usize, j: usize) -> Option<usize> {
        match &self.backend {
            QbsBackend::Owned(s) => s.meta_edge_index(i, j),
            QbsBackend::View(s) => s.meta_edge_index(i, j),
            QbsBackend::Compact(s) => s.meta_edge_index(i, j),
        }
    }

    fn for_each_delta_edge<F: FnMut(VertexId, VertexId)>(&self, k: usize, visit: F) {
        match &self.backend {
            QbsBackend::Owned(s) => s.for_each_delta_edge(k, visit),
            QbsBackend::View(s) => s.for_each_delta_edge(k, visit),
            QbsBackend::Compact(s) => s.for_each_delta_edge(k, visit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryMode;
    use qbs_graph::fixtures::figure4_graph;

    fn session() -> Qbs {
        Qbs::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        )
        .expect("build")
    }

    #[test]
    fn facade_answers_match_the_index() {
        let qbs = session();
        assert_eq!(qbs.backend().name(), "owned");
        let index = qbs.index().expect("owned backend").clone();
        assert!(qbs.view_store().is_none());
        assert_eq!(qbs.query(6, 11).unwrap(), index.query(6, 11).unwrap());
        assert_eq!(qbs.distance(6, 11).unwrap(), 5);
        assert_eq!(qbs.sketch(6, 11).unwrap(), index.sketch(6, 11).unwrap());
        assert_eq!(
            qbs.query_with_stats(6, 11).unwrap(),
            index.query_with_stats(6, 11).unwrap()
        );
        assert!(qbs.stats().is_some());
        assert!(qbs.query(0, 99).is_err());
        assert!(qbs.distance(99, 0).is_err());
    }

    #[test]
    fn open_picks_the_backend_from_the_file() {
        let dir = std::env::temp_dir().join("qbs_session_open_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let index = session().index().unwrap().clone();

        let v2 = dir.join("fig4.qbs2");
        serialize::save_to_file_with(&index, &v2, IndexFormat::Binary).expect("save v2");
        for mode in [MapMode::Read, MapMode::Mmap] {
            let qbs = Qbs::open(&v2, mode).expect("open v2");
            assert_eq!(qbs.backend().name(), "view");
            assert!(qbs.stats().is_none(), "views have no materialised stats");
            assert_eq!(qbs.query(6, 11).unwrap(), index.query(6, 11).unwrap());
        }
        let owned = Qbs::load(&v2).expect("load materialised");
        assert_eq!(owned.backend().name(), "owned");

        let v1 = dir.join("fig4.qbs1");
        serialize::save_to_file_with(&index, &v1, IndexFormat::Json).expect("save v1");
        let qbs = Qbs::open(&v1, MapMode::Mmap).expect("open v1 falls back to owned");
        assert_eq!(qbs.backend().name(), "owned");
        assert_eq!(qbs.distance(6, 11).unwrap(), 5);

        assert!(Qbs::open(dir.join("missing.qbs"), MapMode::Read).is_err());
    }

    #[test]
    fn compact_profile_serves_bit_identical_answers() {
        let dir = std::env::temp_dir().join("qbs_session_compact_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let index = session().index().unwrap().clone();

        // A v3 file opens onto the compact backend, both map modes.
        let v3 = dir.join("fig4.qbs3");
        serialize::save_to_file_with_profile(
            &index,
            &v3,
            IndexFormat::Binary,
            serialize::IndexProfile::Compact,
        )
        .expect("save v3");
        for mode in [MapMode::Read, MapMode::Mmap] {
            let qbs = Qbs::open(&v3, mode).expect("open v3");
            assert_eq!(qbs.backend().name(), "compact");
            assert!(qbs.index().is_none() && qbs.view_store().is_none());
            assert!(qbs.compact_store().is_some());
            assert!(qbs.stats().is_none());
            assert!(qbs.engine_stats().view_backed);
            assert_eq!(qbs.query(6, 11).unwrap(), index.query(6, 11).unwrap());
            assert_eq!(qbs.distance(6, 11).unwrap(), 5);
            assert_eq!(qbs.sketch(6, 11).unwrap(), index.sketch(6, 11).unwrap());
            let outcomes = qbs.submit(&[
                QueryRequest::distance(6, 11),
                QueryRequest::path_graph(4, 12),
            ]);
            assert!(outcomes.iter().all(|o| o.is_ok()));
        }

        // The in-process profile knob serves from a heap v3 buffer.
        let qbs = Qbs::build_with_profile(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
            serialize::IndexProfile::Compact,
        )
        .expect("build compact");
        assert_eq!(qbs.backend().name(), "compact");
        assert_eq!(qbs.query(6, 11).unwrap(), index.query(6, 11).unwrap());
        let direct = Qbs::from_compact_store(
            serialize::open_compact_store_from_file(&v3, MapMode::Read).expect("store"),
        );
        assert_eq!(direct.backend().name(), "compact");
        assert_eq!(direct.distance(6, 11).unwrap(), 5);
    }

    #[test]
    fn submit_persists_the_workspace_pool_and_cache() {
        let qbs = session()
            .with_threads(2)
            .expect("threads")
            .with_cache(CacheConfig::default().admit_above(0));
        assert_eq!(qbs.threads(), 2);
        let requests: Vec<QueryRequest> = (0..15u32)
            .flat_map(|u| (0..15u32).map(move |v| QueryRequest::new(u, v, QueryMode::PathGraph)))
            .collect();
        let first = qbs.submit(&requests);
        let second = qbs.submit(&requests);
        assert_eq!(first, second, "cache hits are bit-identical");
        assert!(
            !qbs.pool.lock().unwrap().is_empty(),
            "workspace pool survives across submits"
        );
        let stats = qbs.cache_stats().expect("cache attached");
        assert!(stats.hits > 0 && stats.insertions > 0, "{stats:?}");
        assert!(qbs.cache().is_some());
        assert!(Qbs::from_index(session().index().unwrap().clone())
            .with_threads(0)
            .is_err());
    }

    #[test]
    fn engine_stats_count_requests_batches_and_errors() {
        let qbs = session().with_cache(CacheConfig::default().admit_above(0));
        let fresh = qbs.engine_stats();
        assert_eq!((fresh.requests, fresh.batches, fresh.errors), (0, 0, 0));
        assert!(!fresh.view_backed);
        assert_eq!(fresh.num_vertices, 15);
        assert_eq!(fresh.num_landmarks, 3);

        qbs.submit(&[
            QueryRequest::distance(6, 11),
            QueryRequest::path_graph(4, 12),
            QueryRequest::distance(99, 0),
        ]);
        let _ = qbs.execute(&QueryRequest::sketch(6, 11));
        let stats = qbs.engine_stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.batches, 1, "execute is not a batch");
        assert_eq!(stats.errors, 1, "the poisoned pair counts once");
        assert!(stats.cache.is_some());
        let rendered = stats.to_string();
        assert!(rendered.contains("requests:  4"), "{rendered}");
        assert!(rendered.contains("owned"), "{rendered}");
        let uncached = session().engine_stats().to_string();
        assert!(uncached.contains("none attached"), "{uncached}");
    }

    #[test]
    fn session_is_an_index_store() {
        let qbs = session();
        let index = qbs.index().unwrap().clone();
        let engine = QueryEngine::with_threads(&qbs, 2).expect("engine over the façade");
        let outcomes = engine.submit(&[
            QueryRequest::path_graph(6, 11),
            QueryRequest::path_graph(4, 12),
        ]);
        let answer = outcomes[0].path_graph().expect("in range");
        assert_eq!(*answer, index.query(6, 11).unwrap());
        assert_eq!(IndexStore::num_vertices(&qbs), 15);
        assert_eq!(qbs.num_landmarks(), 3);
        assert!(IndexStore::is_landmark(&qbs, 1));
        assert_eq!(qbs.landmark_column(2), Some(1));
        assert_eq!(qbs.meta_edge_index(0, 1), index.meta_edge_index(0, 1));
    }
}
