//! Fast sketching (Algorithm 3).
//!
//! For a query `SPG(u, v)`, the sketch summarises how `u` and `v` connect
//! through the landmarks:
//!
//! * `d⊤_uv` (Eq. 3) — the length of the shortest `u ⇝ v` walk that passes
//!   through at least one landmark, evaluated from `L(u)`, `L(v)` and the
//!   precomputed meta-graph distances. By Corollary 4.6, `d⊤_uv ≥ d_G(u, v)`.
//! * the sketch edges achieving that minimum: the `(u, r)` / `(r', v)` label
//!   hops and every meta edge on a shortest meta-path between the chosen
//!   landmark pairs;
//! * the per-side search budgets `d*_u`, `d*_v` (Eq. 4) that steer the
//!   guided bidirectional search.
//!
//! With the meta-graph APSP precomputed, sketch construction is `O(|R|²)`
//! (§5.2) — constant per query for the default `|R| = 20`.

use serde::{Deserialize, Serialize};

use qbs_graph::{Distance, VertexId, INFINITE_DISTANCE};

use crate::store::IndexStore;

/// One endpoint-side sketch edge: the query vertex hops to a landmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchHop {
    /// Landmark column index.
    pub landmark_idx: usize,
    /// `σ_S`: the exact distance from the query endpoint to that landmark.
    pub distance: Distance,
}

/// The sketch `S_uv` for one query (Definition 4.5).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sketch {
    /// The query endpoints.
    pub source: VertexId,
    /// The query endpoints.
    pub target: VertexId,
    /// `d⊤_uv`: length of the best landmark-passing route
    /// ([`INFINITE_DISTANCE`] when the labels of the endpoints share no
    /// connected landmark pair).
    pub upper_bound: Distance,
    /// Sketch edges incident to the source (`(u, r)` with weight `δ_ur`).
    pub source_hops: Vec<SketchHop>,
    /// Sketch edges incident to the target (`(r', v)` with weight `δ_r'v`).
    pub target_hops: Vec<SketchHop>,
    /// Meta edges `(i, j, σ)` on the shortest meta-paths between the chosen
    /// landmark pairs — the interior of the sketch.
    pub meta_edges: Vec<(usize, usize, Distance)>,
}

impl Sketch {
    /// A sketch stating that no landmark-passing route exists.
    pub fn unreachable(source: VertexId, target: VertexId) -> Self {
        Sketch {
            source,
            target,
            upper_bound: INFINITE_DISTANCE,
            source_hops: Vec::new(),
            target_hops: Vec::new(),
            meta_edges: Vec::new(),
        }
    }

    /// Whether some landmark-passing route exists.
    pub fn is_reachable_via_landmarks(&self) -> bool {
        self.upper_bound != INFINITE_DISTANCE
    }

    /// `d*` for the source side (Eq. 4): the largest source hop minus one —
    /// the number of levels the forward search needs before the labels take
    /// over. Zero when the source itself is a landmark.
    pub fn source_budget(&self) -> Distance {
        Self::budget(&self.source_hops)
    }

    /// `d*` for the target side (Eq. 4).
    pub fn target_budget(&self) -> Distance {
        Self::budget(&self.target_hops)
    }

    fn budget(hops: &[SketchHop]) -> Distance {
        hops.iter()
            .map(|h| h.distance.saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// Number of distinct vertices in the sketch (endpoints + landmarks on
    /// it), mirroring `V_S` of Definition 4.5. Used by reporting only.
    pub fn num_sketch_vertices(&self) -> usize {
        let mut landmarks: Vec<usize> = self
            .source_hops
            .iter()
            .chain(self.target_hops.iter())
            .map(|h| h.landmark_idx)
            .chain(self.meta_edges.iter().flat_map(|&(i, j, _)| [i, j]))
            .collect();
        landmarks.sort_unstable();
        landmarks.dedup();
        landmarks.len() + if self.source == self.target { 1 } else { 2 }
    }
}

/// Computes the sketch for a query (Algorithm 3).
///
/// `source_label` and `target_label` are the effective labels of the two
/// endpoints as `(landmark_idx, distance)` pairs — for a landmark endpoint
/// the caller passes the synthetic label `[(its own column, 0)]`. The
/// meta-graph is read through the [`IndexStore`] abstraction, so the same
/// sketcher serves the owned index and a zero-copy index-file view.
pub fn compute<S: IndexStore>(
    store: &S,
    source: VertexId,
    target: VertexId,
    source_label: &[(usize, Distance)],
    target_label: &[(usize, Distance)],
) -> Sketch {
    // Pass 1: find d⊤ = min over label pairs of δ_ur + d_M(r, r') + δ_r'v,
    // memoising each pair's meta distance so pass 2 reads the scratch row
    // instead of hitting the store a second time.
    let mut upper_bound = INFINITE_DISTANCE;
    let mut meta_memo: Vec<Distance> = Vec::with_capacity(source_label.len() * target_label.len());
    for &(r, du) in source_label {
        for &(rp, dv) in target_label {
            let dm = store.meta_distance(r, rp);
            meta_memo.push(dm);
            if dm == INFINITE_DISTANCE {
                continue;
            }
            let total = du + dm + dv;
            if total < upper_bound {
                upper_bound = total;
            }
        }
    }
    if upper_bound == INFINITE_DISTANCE {
        return Sketch::unreachable(source, target);
    }

    // Pass 2: collect every pair achieving the minimum and assemble the
    // sketch edges (Algorithm 3, lines 7-13). Meta edges are collected
    // unconditionally and deduplicated once at the end — the final sorted
    // unique list is the same as the old linear-scan dedupe produced,
    // without its O(edges²) worst case.
    let mut source_hops: Vec<SketchHop> = Vec::new();
    let mut target_hops: Vec<SketchHop> = Vec::new();
    let mut meta_edges: Vec<(usize, usize, Distance)> = Vec::new();
    let mut memo = meta_memo.iter();
    for &(r, du) in source_label {
        for &(rp, dv) in target_label {
            let dm = *memo.next().expect("memo covers every label pair");
            if dm == INFINITE_DISTANCE || du + dm + dv != upper_bound {
                continue;
            }
            push_unique_hop(
                &mut source_hops,
                SketchHop {
                    landmark_idx: r,
                    distance: du,
                },
            );
            push_unique_hop(
                &mut target_hops,
                SketchHop {
                    landmark_idx: rp,
                    distance: dv,
                },
            );
            store.for_each_shortest_meta_edge(r, rp, |edge| meta_edges.push(edge));
        }
    }
    meta_edges.sort_unstable();
    meta_edges.dedup();

    Sketch {
        source,
        target,
        upper_bound,
        source_hops,
        target_hops,
        meta_edges,
    }
}

fn push_unique_hop(hops: &mut Vec<SketchHop>, hop: SketchHop) {
    if !hops.iter().any(|h| h.landmark_idx == hop.landmark_idx) {
        hops.push(hop);
    }
}

/// The scalar core of a sketch: the distance upper bound and the two search
/// budgets of Eq. 4, without the materialised hop/meta-edge lists.
///
/// [`compute_bounds`] derives these with zero heap allocation, which makes
/// them the input of choice for the distance-only hot path
/// ([`crate::search::guided_distance_with`]) where the full [`Sketch`] —
/// whose vectors exist to drive the recover search — would be wasted work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchBounds {
    /// `d⊤_uv` (Eq. 3); [`INFINITE_DISTANCE`] when no landmark route exists.
    pub upper_bound: Distance,
    /// `d*_u` (Eq. 4): forward-side search budget.
    pub source_budget: Distance,
    /// `d*_v` (Eq. 4): backward-side search budget.
    pub target_budget: Distance,
}

impl SketchBounds {
    /// Bounds stating that no landmark-passing route exists.
    pub fn unreachable() -> Self {
        SketchBounds {
            upper_bound: INFINITE_DISTANCE,
            source_budget: 0,
            target_budget: 0,
        }
    }
}

/// Computes only the sketch *bounds* (Algorithm 3 without line 7-13's edge
/// assembly): `d⊤` plus the per-side budgets, allocation-free.
///
/// Agrees with [`compute`]: `compute_bounds(...).upper_bound ==
/// compute(...).upper_bound` and likewise for the budgets (asserted by the
/// unit tests below).
pub fn compute_bounds<S: IndexStore>(
    store: &S,
    source_label: &[(usize, Distance)],
    target_label: &[(usize, Distance)],
) -> SketchBounds {
    let mut upper_bound = INFINITE_DISTANCE;
    for &(r, du) in source_label {
        for &(rp, dv) in target_label {
            let dm = store.meta_distance(r, rp);
            if dm == INFINITE_DISTANCE {
                continue;
            }
            upper_bound = upper_bound.min(du + dm + dv);
        }
    }
    if upper_bound == INFINITE_DISTANCE {
        return SketchBounds::unreachable();
    }
    // Budgets: max σ - 1 over the hops participating in a minimising pair.
    let mut max_src_hop = 0;
    let mut max_tgt_hop = 0;
    for &(r, du) in source_label {
        for &(rp, dv) in target_label {
            let dm = store.meta_distance(r, rp);
            if dm != INFINITE_DISTANCE && du + dm + dv == upper_bound {
                max_src_hop = max_src_hop.max(du);
                max_tgt_hop = max_tgt_hop.max(dv);
            }
        }
    }
    SketchBounds {
        upper_bound,
        source_budget: max_src_hop.saturating_sub(1),
        target_budget: max_tgt_hop.saturating_sub(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QbsConfig, QbsIndex};
    use crate::store::ViewStore;
    use qbs_graph::fixtures::{figure4_graph, figure4_landmarks};
    use qbs_graph::Graph;

    fn setup() -> (Graph, QbsIndex) {
        let g = figure4_graph();
        let index = QbsIndex::build(
            g.clone(),
            QbsConfig::with_explicit_landmarks(figure4_landmarks()),
        );
        (g, index)
    }

    fn label_of(index: &QbsIndex, v: VertexId) -> Vec<(usize, Distance)> {
        index.labelling().entries(v).collect()
    }

    #[test]
    fn example_4_7_sketch_for_query_6_11() {
        let (_, meta) = setup();
        let sketch = compute(&meta, 6, 11, &label_of(&meta, 6), &label_of(&meta, 11));
        // d⊤(6,11) = 5 = d_G(6,11).
        assert_eq!(sketch.upper_bound, 5);
        assert!(sketch.is_reachable_via_landmarks());
        // Source hop: (6,1) with σ = 1; budgets d*_6 = 0 and d*_11 = 2.
        assert_eq!(
            sketch.source_hops,
            vec![SketchHop {
                landmark_idx: 0,
                distance: 1
            }]
        );
        assert_eq!(sketch.source_budget(), 0);
        assert_eq!(sketch.target_budget(), 2);
        // Target hops: (3,11) σ=2 and (2,11) σ=3 (landmark columns 2 and 1).
        let mut target: Vec<(usize, Distance)> = sketch
            .target_hops
            .iter()
            .map(|h| (h.landmark_idx, h.distance))
            .collect();
        target.sort_unstable();
        assert_eq!(target, vec![(1, 3), (2, 2)]);
        // The sketch contains all three meta edges (Figure 6(b)).
        assert_eq!(sketch.meta_edges.len(), 3);
        // Vertices of the sketch: 2 endpoints + 3 landmarks.
        assert_eq!(sketch.num_sketch_vertices(), 5);
    }

    #[test]
    fn upper_bound_is_an_upper_bound_on_the_true_distance() {
        // Corollary 4.6 on every labelled pair of the figure graph.
        let (g, meta) = setup();
        for u in g.vertices() {
            for v in g.vertices() {
                let lu = label_of(&meta, u);
                let lv = label_of(&meta, v);
                if lu.is_empty() || lv.is_empty() || u == v {
                    continue;
                }
                let sketch = compute(&meta, u, v, &lu, &lv);
                let d = qbs_graph::traversal::bfs_distances(&g, u)[v as usize];
                assert!(
                    sketch.upper_bound >= d,
                    "pair ({u},{v}): {} < {d}",
                    sketch.upper_bound
                );
            }
        }
    }

    #[test]
    fn tight_bound_when_a_shortest_path_passes_a_landmark() {
        let (_, meta) = setup();
        // d(4, 9) = 3 via 4-3-2-9 (through landmarks 3 and 2) — the sketch
        // must find exactly 3.
        let sketch = compute(&meta, 4, 9, &label_of(&meta, 4), &label_of(&meta, 9));
        assert_eq!(sketch.upper_bound, 3);
    }

    #[test]
    fn landmark_endpoint_uses_synthetic_zero_label() {
        let (_, meta) = setup();
        // Query from landmark 1 (column 0) to vertex 11.
        let sketch = compute(&meta, 1, 11, &[(0, 0)], &label_of(&meta, 11));
        // d(1, 11) = 4 (1-2-9-10-11 or 1-4-3-12-11); through landmarks it is
        // also 4 (e.g. meta path 1→3 of length 2 plus δ(11,3)=2).
        assert_eq!(sketch.upper_bound, 4);
        assert_eq!(sketch.source_budget(), 0);
    }

    #[test]
    fn unreachable_sketch_when_labels_do_not_connect() {
        let (_, meta) = setup();
        let sketch = compute(&meta, 6, 0, &[(0, 1)], &[]);
        assert!(!sketch.is_reachable_via_landmarks());
        assert_eq!(sketch.upper_bound, INFINITE_DISTANCE);
        assert_eq!(sketch.source_budget(), 0);
        assert_eq!(Sketch::unreachable(6, 0), sketch);
    }

    #[test]
    fn bounds_agree_with_full_sketch_on_all_pairs() {
        let (g, meta) = setup();
        for u in g.vertices() {
            for v in g.vertices() {
                let lu = label_of(&meta, u);
                let lv = label_of(&meta, v);
                let sketch = compute(&meta, u, v, &lu, &lv);
                let bounds = compute_bounds(&meta, &lu, &lv);
                assert_eq!(bounds.upper_bound, sketch.upper_bound, "d⊤ of ({u},{v})");
                assert_eq!(
                    bounds.source_budget,
                    sketch.source_budget(),
                    "d*_u of ({u},{v})"
                );
                assert_eq!(
                    bounds.target_budget,
                    sketch.target_budget(),
                    "d*_v of ({u},{v})"
                );
            }
        }
        assert_eq!(
            compute_bounds(&meta, &[(0, 1)], &[]),
            SketchBounds::unreachable()
        );
    }

    #[test]
    fn sketches_agree_between_owned_and_view_stores() {
        let (g, owned) = setup();
        let view = ViewStore::new(owned.as_view());
        for u in g.vertices() {
            for v in g.vertices() {
                let lu = label_of(&owned, u);
                let lv = label_of(&owned, v);
                assert_eq!(
                    compute(&owned, u, v, &lu, &lv),
                    compute(&view, u, v, &lu, &lv),
                    "sketch of ({u},{v}) diverged between store backends"
                );
                assert_eq!(
                    compute_bounds(&owned, &lu, &lv),
                    compute_bounds(&view, &lu, &lv),
                    "bounds of ({u},{v}) diverged between store backends"
                );
            }
        }
    }

    #[test]
    fn sketch_never_duplicates_hops_or_meta_edges() {
        let (g, meta) = setup();
        for u in g.vertices() {
            for v in g.vertices() {
                let sketch = compute(&meta, u, v, &label_of(&meta, u), &label_of(&meta, v));
                let mut hops: Vec<usize> =
                    sketch.source_hops.iter().map(|h| h.landmark_idx).collect();
                hops.sort_unstable();
                let before = hops.len();
                hops.dedup();
                assert_eq!(before, hops.len());
                let mut edges = sketch.meta_edges.clone();
                let before = edges.len();
                edges.dedup();
                assert_eq!(before, edges.len());
            }
        }
    }
}
