//! Index size and timing accounting — the numbers behind Tables 2 and 3 and
//! Figures 9–10.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::query::QbsIndex;

/// Size and timing statistics of one built index.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Number of vertices of the indexed graph.
    pub num_vertices: usize,
    /// Number of undirected edges of the indexed graph.
    pub num_edges: usize,
    /// Number of landmarks `|R|`.
    pub num_landmarks: usize,
    /// `size(L)` under the paper's accounting: `|R|` bytes per vertex
    /// (8 bits per landmark slot), §6.1/§6.4.2.
    pub labelling_paper_bytes: usize,
    /// Actual in-memory bytes of the dense labelling matrix.
    pub labelling_memory_bytes: usize,
    /// Number of non-empty label entries, `Σ_v |L(v)|`.
    pub labelling_entries: usize,
    /// `size(Δ)`: bytes of the precomputed landmark-to-landmark path graphs
    /// (8 bytes per stored edge), the second QbS column of Table 3.
    pub delta_bytes: usize,
    /// Size of the meta-graph itself (the paper bounds it by 0.01 MB even
    /// for `|R| = 100`).
    pub meta_graph_bytes: usize,
    /// Number of meta edges.
    pub meta_edges: usize,
    /// Adjacency size of the indexed graph (the `|G|` column of Table 1).
    pub graph_bytes: usize,
    /// Labelling construction time.
    pub labelling_time: Duration,
    /// Meta-graph + Δ construction time.
    pub meta_time: Duration,
    /// End-to-end build time.
    pub total_build_time: Duration,
}

impl IndexStats {
    /// Collects the statistics from a built index.
    pub fn from_index(index: &QbsIndex) -> Self {
        let timings = index.timings();
        IndexStats {
            num_vertices: index.graph().num_vertices(),
            num_edges: index.graph().num_edges(),
            num_landmarks: index.landmarks().len(),
            labelling_paper_bytes: index.labelling().paper_size_bytes(),
            labelling_memory_bytes: index.labelling().memory_size_bytes(),
            labelling_entries: index.labelling().total_entries(),
            delta_bytes: index.meta_graph().delta_size_bytes(),
            meta_graph_bytes: index.meta_graph().meta_size_bytes(),
            meta_edges: index.meta_graph().edges().len(),
            graph_bytes: index.graph().size_bytes(),
            labelling_time: timings.labelling,
            meta_time: timings.meta_graph,
            total_build_time: timings.total,
        }
    }

    /// Total index footprint: labelling (paper accounting) + Δ + meta-graph.
    pub fn total_index_bytes(&self) -> usize {
        self.labelling_paper_bytes + self.delta_bytes + self.meta_graph_bytes
    }

    /// Ratio of the index footprint to the graph size — the paper's
    /// observation that "the labelling sizes constructed by QbS are
    /// generally smaller than the original sizes of graphs".
    pub fn index_to_graph_ratio(&self) -> f64 {
        if self.graph_bytes == 0 {
            0.0
        } else {
            self.total_index_bytes() as f64 / self.graph_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QbsConfig;
    use qbs_graph::fixtures::figure4_graph;

    #[test]
    fn stats_reflect_figure4_index() {
        let index = QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        );
        let s = index.stats();
        assert_eq!(s.num_vertices, 15);
        assert_eq!(s.num_edges, 19);
        assert_eq!(s.num_landmarks, 3);
        assert_eq!(s.labelling_paper_bytes, 45);
        assert_eq!(s.labelling_memory_bytes, 90);
        assert_eq!(s.labelling_entries, 18);
        assert_eq!(s.meta_edges, 3);
        assert_eq!(s.delta_bytes, 4 * 8);
        assert_eq!(s.total_index_bytes(), 45 + 32 + 36);
        assert!(s.index_to_graph_ratio() > 0.0);
        assert!(s.total_build_time >= s.labelling_time);
    }

    #[test]
    fn larger_landmark_sets_grow_the_labelling_linearly() {
        // Figure 9's shape: size(L) is linear in |R| under the paper's
        // accounting.
        let g = figure4_graph();
        let s2 = QbsIndex::build(g.clone(), QbsConfig::with_landmark_count(2)).stats();
        let s4 = QbsIndex::build(g, QbsConfig::with_landmark_count(4)).stats();
        assert_eq!(s2.labelling_paper_bytes * 2, s4.labelling_paper_bytes);
    }
}
