//! The storage-backend abstraction behind the online query path.
//!
//! Every read the sketching ([`crate::sketch`]) and guided searching
//! ([`crate::search`]) phases perform goes through the [`IndexStore`]
//! trait: landmark set and filter, path-label lookups, graph adjacency, and
//! the meta-graph APSP/Δ tables. Two backends implement it:
//!
//! * [`crate::QbsIndex`] — the owned, heap-materialised index (built in
//!   process or loaded via [`crate::QbsIndex::from_view`]);
//! * [`ViewStore`] — a zero-copy wrapper over a validated
//!   [`IndexView`], serving every lookup straight out of the flat
//!   `qbs-index-v2` buffer (heap or mmap, see [`crate::format::ViewBuf`])
//!   without materialising a single per-vertex `Vec`.
//!
//! Because [`crate::query::query_on`], [`crate::search`] and
//! [`crate::engine::QueryEngine`] are generic over `S: IndexStore`, a cold
//! shard process can map one immutable index file and answer its first
//! query without ever building the owned structures — the serving story of
//! disk-resident labelling systems (IS-LABEL et al.) applied to QbS.
//! Answers are **bit-identical** across backends; the differential tests in
//! `crates/core/tests/view_serving.rs` assert this on the golden fixture
//! and on proptest-generated graph families.
//!
//! # Lifetime and ownership rules
//!
//! An [`IndexStore`] is an immutable, `Sync` object: queries borrow it
//! shared and keep all mutable state in a caller-owned
//! [`crate::QueryWorkspace`]. [`ViewStore`] owns its [`IndexView`] (which
//! owns the buffer or the mapping), so the store is self-contained — drop
//! order is store → view → buffer, and an engine borrowing the store
//! (`QueryEngine<'_, ViewStore>`) cannot outlive the mapping by
//! construction.

use qbs_graph::view::NeighborAccess;
use qbs_graph::{Distance, VertexFilter, VertexId, INFINITE_DISTANCE};

use crate::format::{CompactView, IndexView};

/// Read-only access to every index component the online query path needs.
///
/// All methods take *validated* indices: vertex arguments must be
/// `< num_vertices()`, landmark columns `< num_landmarks()`, meta-edge
/// positions `< num_meta_edges()` — the public query entry points
/// ([`crate::query::query_on`] and friends) bounds-check the user-supplied
/// endpoints once and everything derived stays in range. Implementations
/// may panic on out-of-range arguments, exactly like slice indexing.
pub trait IndexStore: Sync {
    /// Number of vertices of the indexed graph.
    fn num_vertices(&self) -> usize;

    /// Number of landmarks `|R|`.
    fn num_landmarks(&self) -> usize;

    /// The landmark vertex id of column `idx`.
    fn landmark(&self, idx: usize) -> VertexId;

    /// Bitmap of the landmark vertices — the removal set of the sparsified
    /// graph `G⁻ = G[V \ R]` the guided search runs on.
    fn landmark_filter(&self) -> &VertexFilter;

    /// The landmark column of `v`, or `None` when `v` is not a landmark.
    fn landmark_column(&self, v: VertexId) -> Option<usize>;

    /// Whether `v` is a landmark.
    #[inline]
    fn is_landmark(&self, v: VertexId) -> bool {
        self.landmark_filter().contains(v)
    }

    /// The label distance of `(v, landmark_idx)`, or `None` when the pair
    /// has no entry.
    fn label_distance(&self, v: VertexId, landmark_idx: usize) -> Option<Distance>;

    /// Appends the raw label entries of `v` to `out` in ascending
    /// landmark-column order (does not clear `out`).
    fn fill_label_entries(&self, v: VertexId, out: &mut Vec<(usize, Distance)>);

    /// Calls `visit` for every neighbour of `v` in the **full** graph.
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, visit: F);

    /// `d_M(i, j)`: the meta-graph shortest-path distance between landmark
    /// columns.
    fn meta_distance(&self, i: usize, j: usize) -> Distance;

    /// Number of meta edges `|E_R|`.
    fn num_meta_edges(&self) -> usize;

    /// The `k`-th meta edge `(i, j, σ)` with `i < j`, in stored order.
    fn meta_edge(&self, k: usize) -> (usize, usize, Distance);

    /// Position of the meta edge between columns `i` and `j`, if present.
    fn meta_edge_index(&self, i: usize, j: usize) -> Option<usize> {
        let key = (i.min(j), i.max(j));
        (0..self.num_meta_edges()).find(|&k| {
            let (a, b, _) = self.meta_edge(k);
            (a, b) == key
        })
    }

    /// Calls `visit` for every edge of the precomputed Δ path graph of meta
    /// edge `k`.
    fn for_each_delta_edge<F: FnMut(VertexId, VertexId)>(&self, k: usize, visit: F);

    /// Fills `buf` with the *effective* label of `v`: its path label, or
    /// the synthetic `{(itself, 0)}` when `v` is a landmark (the paper's
    /// labels are only defined on `V \ R`).
    fn fill_effective_label(&self, v: VertexId, buf: &mut Vec<(usize, Distance)>) {
        buf.clear();
        if let Some(col) = self.landmark_column(v) {
            buf.push((col, 0));
        } else {
            self.fill_label_entries(v, buf);
        }
    }

    /// Calls `visit` for every meta edge lying on at least one shortest
    /// meta-path between columns `i` and `j` — the landmark interior of a
    /// sketch whose minimum is achieved by the pair `(i, j)`.
    fn for_each_shortest_meta_edge<F: FnMut((usize, usize, Distance))>(
        &self,
        i: usize,
        j: usize,
        mut visit: F,
    ) {
        let dij = self.meta_distance(i, j);
        if dij == INFINITE_DISTANCE || i == j {
            return;
        }
        for k in 0..self.num_meta_edges() {
            let (a, b, w) = self.meta_edge(k);
            let forward = self
                .meta_distance(i, a)
                .saturating_add(w)
                .saturating_add(self.meta_distance(b, j))
                == dij;
            let backward = self
                .meta_distance(i, b)
                .saturating_add(w)
                .saturating_add(self.meta_distance(a, j))
                == dij;
            if forward || backward {
                visit((a, b, w));
            }
        }
    }
}

/// A zero-copy [`IndexStore`] over a parsed [`IndexView`].
///
/// Construction builds exactly one derived structure: the landmark bitmap
/// (`|V|` *bits*, filled from the `|R|`-entry landmark section), which the
/// sparsified search needs as a [`VertexFilter`] and which the workspace
/// scratch filter copies on landmark-endpoint queries. Everything else —
/// labels, adjacency, APSP, Δ — is decoded on demand from the underlying
/// buffer; no per-vertex or per-label `Vec` is ever materialised.
#[derive(Debug)]
pub struct ViewStore {
    view: IndexView,
    landmark_filter: VertexFilter,
}

impl ViewStore {
    /// Wraps a parsed view for serving.
    pub fn new(view: IndexView) -> Self {
        let landmark_filter = VertexFilter::from_vertices(view.num_vertices(), view.landmarks());
        ViewStore {
            view,
            landmark_filter,
        }
    }

    /// The wrapped view.
    pub fn view(&self) -> &IndexView {
        &self.view
    }
}

impl IndexStore for ViewStore {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.view.num_vertices()
    }

    #[inline]
    fn num_landmarks(&self) -> usize {
        self.view.num_landmarks()
    }

    #[inline]
    fn landmark(&self, idx: usize) -> VertexId {
        self.view.landmark(idx)
    }

    #[inline]
    fn landmark_filter(&self) -> &VertexFilter {
        &self.landmark_filter
    }

    fn landmark_column(&self, v: VertexId) -> Option<usize> {
        if !self.landmark_filter.contains(v) {
            return None;
        }
        // |R| is tiny (≤ 100 in every experiment); a scan of the landmark
        // section beats materialising a |V|-sized column map.
        self.view.landmarks().position(|r| r == v)
    }

    #[inline]
    fn label_distance(&self, v: VertexId, landmark_idx: usize) -> Option<Distance> {
        self.view.label_distance(v, landmark_idx)
    }

    fn fill_label_entries(&self, v: VertexId, out: &mut Vec<(usize, Distance)>) {
        out.extend(self.view.label_entries(v));
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut visit: F) {
        for w in self.view.graph_neighbors(v) {
            visit(w);
        }
    }

    #[inline]
    fn meta_distance(&self, i: usize, j: usize) -> Distance {
        self.view.meta_distance(i, j)
    }

    #[inline]
    fn num_meta_edges(&self) -> usize {
        self.view.num_meta_edges()
    }

    #[inline]
    fn meta_edge(&self, k: usize) -> (usize, usize, Distance) {
        self.view.meta_edge(k)
    }

    fn for_each_delta_edge<F: FnMut(VertexId, VertexId)>(&self, k: usize, mut visit: F) {
        for (a, b) in self.view.delta_edges(k) {
            visit(a, b);
        }
    }
}

/// A zero-copy [`IndexStore`] over a parsed [`CompactView`] — the
/// `qbs-index-v3` sibling of [`ViewStore`].
///
/// Like `ViewStore`, construction builds exactly one derived structure
/// (the landmark bitmap); everything else is decoded on demand from the
/// compact buffer. Rows are front-coded LEB128 runs, so each access
/// spends a few extra instructions per element in exchange for the
/// smaller working set the compact profile drags through cache — and
/// every consumer decodes rows *sequentially*, which is exactly the
/// access pattern the varint layout is shaped for. Answers are
/// bit-identical to the owned and wide-view backends (asserted by
/// `crates/core/tests/format_v3.rs` and CI's `compactserve`
/// differential).
#[derive(Debug)]
pub struct CompactStore {
    view: CompactView,
    landmark_filter: VertexFilter,
}

impl CompactStore {
    /// Wraps a parsed compact view for serving.
    pub fn new(view: CompactView) -> Self {
        let landmark_filter = VertexFilter::from_vertices(view.num_vertices(), view.landmarks());
        CompactStore {
            view,
            landmark_filter,
        }
    }

    /// The wrapped compact view.
    pub fn view(&self) -> &CompactView {
        &self.view
    }
}

impl IndexStore for CompactStore {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.view.num_vertices()
    }

    #[inline]
    fn num_landmarks(&self) -> usize {
        self.view.num_landmarks()
    }

    #[inline]
    fn landmark(&self, idx: usize) -> VertexId {
        self.view.landmark(idx)
    }

    #[inline]
    fn landmark_filter(&self) -> &VertexFilter {
        &self.landmark_filter
    }

    fn landmark_column(&self, v: VertexId) -> Option<usize> {
        if !self.landmark_filter.contains(v) {
            return None;
        }
        self.view.landmarks().position(|r| r == v)
    }

    #[inline]
    fn label_distance(&self, v: VertexId, landmark_idx: usize) -> Option<Distance> {
        self.view.label_distance(v, landmark_idx)
    }

    fn fill_label_entries(&self, v: VertexId, out: &mut Vec<(usize, Distance)>) {
        out.extend(self.view.label_entries(v));
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut visit: F) {
        for w in self.view.graph_neighbors(v) {
            visit(w);
        }
    }

    #[inline]
    fn meta_distance(&self, i: usize, j: usize) -> Distance {
        self.view.meta_distance(i, j)
    }

    #[inline]
    fn num_meta_edges(&self) -> usize {
        self.view.num_meta_edges()
    }

    #[inline]
    fn meta_edge(&self, k: usize) -> (usize, usize, Distance) {
        self.view.meta_edge(k)
    }

    fn for_each_delta_edge<F: FnMut(VertexId, VertexId)>(&self, k: usize, mut visit: F) {
        for (a, b) in self.view.delta_edges(k) {
            visit(a, b);
        }
    }
}

/// The sparsified graph `G[V \ removed]` of a store — the view the guided
/// bidirectional search traverses, with the landmark set (minus any
/// landmark query endpoint) deleted. Mirrors
/// [`qbs_graph::FilteredGraph`], but sources adjacency from the store so
/// the same search code runs over owned CSR arrays and raw index-file
/// bytes alike.
pub(crate) struct SparsifiedStore<'a, S: IndexStore> {
    store: &'a S,
    removed: &'a VertexFilter,
}

impl<'a, S: IndexStore> SparsifiedStore<'a, S> {
    pub(crate) fn new(store: &'a S, removed: &'a VertexFilter) -> Self {
        debug_assert_eq!(store.num_vertices(), removed.capacity());
        SparsifiedStore { store, removed }
    }
}

impl<S: IndexStore> NeighborAccess for SparsifiedStore<'_, S> {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.store.num_vertices()
    }

    #[inline]
    fn contains_vertex(&self, v: VertexId) -> bool {
        (v as usize) < self.store.num_vertices() && !self.removed.contains(v)
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut visit: F) {
        if self.removed.contains(v) {
            return;
        }
        self.store.for_each_neighbor(v, |w| {
            if !self.removed.contains(w) {
                visit(w);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QbsConfig, QbsIndex};
    use qbs_graph::fixtures::figure4_graph;

    fn index() -> QbsIndex {
        QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        )
    }

    /// Every trait method agrees between the owned index and the view store
    /// wrapping its serialised bytes.
    #[test]
    fn view_store_agrees_with_owned_store_on_every_accessor() {
        let owned = index();
        let store = ViewStore::new(owned.as_view());

        assert_eq!(store.num_vertices(), owned.num_vertices());
        assert_eq!(store.num_landmarks(), owned.num_landmarks());
        assert_eq!(store.num_meta_edges(), owned.num_meta_edges());
        for idx in 0..owned.num_landmarks() {
            assert_eq!(store.landmark(idx), owned.landmark(idx));
        }
        assert_eq!(store.landmark_filter(), owned.landmark_filter());

        let mut a = Vec::new();
        let mut b = Vec::new();
        for v in 0..owned.num_vertices() as VertexId {
            assert_eq!(store.is_landmark(v), owned.is_landmark(v), "vertex {v}");
            assert_eq!(
                store.landmark_column(v),
                IndexStore::landmark_column(&owned, v),
                "column of {v}"
            );
            for idx in 0..owned.num_landmarks() {
                assert_eq!(
                    store.label_distance(v, idx),
                    owned.label_distance(v, idx),
                    "label ({v}, {idx})"
                );
            }
            a.clear();
            b.clear();
            store.fill_effective_label(v, &mut a);
            owned.fill_effective_label(v, &mut b);
            assert_eq!(a, b, "effective label of {v}");
            let mut na = Vec::new();
            let mut nb = Vec::new();
            store.for_each_neighbor(v, |w| na.push(w));
            IndexStore::for_each_neighbor(&owned, v, |w| nb.push(w));
            assert_eq!(na, nb, "neighbours of {v}");
        }

        for i in 0..owned.num_landmarks() {
            for j in 0..owned.num_landmarks() {
                assert_eq!(store.meta_distance(i, j), owned.meta_distance(i, j));
                assert_eq!(store.meta_edge_index(i, j), owned.meta_edge_index(i, j));
                let mut sa = Vec::new();
                let mut sb = Vec::new();
                store.for_each_shortest_meta_edge(i, j, |e| sa.push(e));
                owned.for_each_shortest_meta_edge(i, j, |e| sb.push(e));
                assert_eq!(sa, sb, "shortest meta edges of ({i},{j})");
            }
        }
        for k in 0..owned.num_meta_edges() {
            assert_eq!(store.meta_edge(k), owned.meta_edge(k));
            let mut da = Vec::new();
            let mut db = Vec::new();
            store.for_each_delta_edge(k, |x, y| da.push((x, y)));
            owned.for_each_delta_edge(k, |x, y| db.push((x, y)));
            assert_eq!(da, db, "delta edges of meta edge {k}");
        }
    }

    /// Every trait method agrees between the owned index and the compact
    /// store wrapping its v3 serialisation.
    #[test]
    fn compact_store_agrees_with_owned_store_on_every_accessor() {
        let owned = index();
        let store = CompactStore::new(owned.as_compact_view().expect("serialise v3"));

        assert_eq!(store.num_vertices(), owned.num_vertices());
        assert_eq!(store.num_landmarks(), owned.num_landmarks());
        assert_eq!(store.num_meta_edges(), owned.num_meta_edges());
        assert_eq!(store.landmark_filter(), owned.landmark_filter());

        let mut a = Vec::new();
        let mut b = Vec::new();
        for v in 0..owned.num_vertices() as VertexId {
            assert_eq!(store.is_landmark(v), owned.is_landmark(v), "vertex {v}");
            assert_eq!(
                store.landmark_column(v),
                IndexStore::landmark_column(&owned, v),
                "column of {v}"
            );
            for idx in 0..owned.num_landmarks() {
                assert_eq!(
                    store.label_distance(v, idx),
                    owned.label_distance(v, idx),
                    "label ({v}, {idx})"
                );
            }
            a.clear();
            b.clear();
            store.fill_effective_label(v, &mut a);
            owned.fill_effective_label(v, &mut b);
            assert_eq!(a, b, "effective label of {v}");
            let mut na = Vec::new();
            let mut nb = Vec::new();
            store.for_each_neighbor(v, |w| na.push(w));
            IndexStore::for_each_neighbor(&owned, v, |w| nb.push(w));
            assert_eq!(na, nb, "neighbours of {v}");
        }

        for i in 0..owned.num_landmarks() {
            for j in 0..owned.num_landmarks() {
                assert_eq!(store.meta_distance(i, j), owned.meta_distance(i, j));
                assert_eq!(store.meta_edge_index(i, j), owned.meta_edge_index(i, j));
                let mut sa = Vec::new();
                let mut sb = Vec::new();
                store.for_each_shortest_meta_edge(i, j, |e| sa.push(e));
                owned.for_each_shortest_meta_edge(i, j, |e| sb.push(e));
                assert_eq!(sa, sb, "shortest meta edges of ({i},{j})");
            }
        }
        for k in 0..owned.num_meta_edges() {
            assert_eq!(store.meta_edge(k), owned.meta_edge(k));
            let mut da = Vec::new();
            let mut db = Vec::new();
            store.for_each_delta_edge(k, |x, y| da.push((x, y)));
            owned.for_each_delta_edge(k, |x, y| db.push((x, y)));
            assert_eq!(da, db, "delta edges of meta edge {k}");
        }
    }

    #[test]
    fn sparsified_store_hides_removed_vertices() {
        let owned = index();
        let store = ViewStore::new(owned.as_view());
        let sparse = SparsifiedStore::new(&store, store.landmark_filter());
        assert_eq!(sparse.vertex_count(), 15);
        assert!(!sparse.contains_vertex(1), "landmark 1 is removed");
        assert!(sparse.contains_vertex(6));
        assert!(!sparse.contains_vertex(99));
        // A removed (landmark) vertex contributes no adjacency at all.
        let mut seen = Vec::new();
        sparse.for_each_neighbor(1, |w| seen.push(w));
        assert!(seen.is_empty(), "{seen:?}");
        // A surviving vertex keeps exactly its non-landmark neighbours.
        for v in [6u32, 7, 11] {
            let mut got = Vec::new();
            sparse.for_each_neighbor(v, |w| got.push(w));
            let expected: Vec<VertexId> = figure4_graph()
                .neighbors(v)
                .iter()
                .copied()
                .filter(|w| ![1, 2, 3].contains(w))
                .collect();
            assert_eq!(got, expected, "sparsified neighbours of {v}");
        }
    }
}
