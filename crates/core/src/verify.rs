//! Answer validation.
//!
//! [`validate`] checks a claimed shortest-path-graph answer against the
//! definition (Definition 2.2) using two fresh BFSs: every answer edge must
//! lie on a shortest path, every shortest-path edge must be in the answer,
//! and the reported distance must be exact. The experiment harness runs it
//! on a sample of every method's answers, and the property tests run it on
//! thousands of generated graphs.

use qbs_graph::traversal::bfs_distances;
use qbs_graph::{Graph, PathGraph, INFINITE_DISTANCE};

/// A violation found while validating an answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The reported distance differs from the true BFS distance.
    WrongDistance {
        /// Distance claimed by the answer.
        reported: u32,
        /// True distance.
        actual: u32,
    },
    /// An edge of the answer does not exist in the graph.
    EdgeNotInGraph(u32, u32),
    /// An edge of the answer lies on no shortest path between the endpoints.
    EdgeNotOnShortestPath(u32, u32),
    /// An edge on some shortest path is missing from the answer.
    MissingEdge(u32, u32),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::WrongDistance { reported, actual } => {
                write!(
                    f,
                    "reported distance {reported} but true distance is {actual}"
                )
            }
            Violation::EdgeNotInGraph(a, b) => {
                write!(f, "answer edge ({a},{b}) is not in the graph")
            }
            Violation::EdgeNotOnShortestPath(a, b) => {
                write!(f, "answer edge ({a},{b}) lies on no shortest path")
            }
            Violation::MissingEdge(a, b) => {
                write!(f, "shortest-path edge ({a},{b}) is missing from the answer")
            }
        }
    }
}

/// Validates an answer against Definition 2.2. Returns every violation found
/// (empty = the answer is exactly the shortest path graph).
pub fn validate(graph: &Graph, answer: &PathGraph) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (u, v) = (answer.source(), answer.target());
    if u == v {
        if answer.distance() != 0 || answer.num_edges() != 0 {
            violations.push(Violation::WrongDistance {
                reported: answer.distance(),
                actual: 0,
            });
        }
        return violations;
    }
    let du = bfs_distances(graph, u);
    let dv = bfs_distances(graph, v);
    let actual = du.get(v as usize).copied().unwrap_or(INFINITE_DISTANCE);
    if answer.distance() != actual {
        violations.push(Violation::WrongDistance {
            reported: answer.distance(),
            actual,
        });
    }
    if actual == INFINITE_DISTANCE {
        for &(a, b) in answer.edges() {
            violations.push(Violation::EdgeNotOnShortestPath(a, b));
        }
        return violations;
    }

    let on_shortest = |a: u32, b: u32| -> bool {
        let (da, db) = (du[a as usize], du[b as usize]);
        let (ta, tb) = (dv[a as usize], dv[b as usize]);
        da != INFINITE_DISTANCE
            && db != INFINITE_DISTANCE
            && (da + 1 + tb == actual || db + 1 + ta == actual)
    };

    for &(a, b) in answer.edges() {
        if !graph.has_edge(a, b) {
            violations.push(Violation::EdgeNotInGraph(a, b));
        } else if !on_shortest(a, b) {
            violations.push(Violation::EdgeNotOnShortestPath(a, b));
        }
    }
    for (a, b) in graph.edges() {
        if on_shortest(a, b) && !answer.contains_edge(a, b) {
            violations.push(Violation::MissingEdge(a, b));
        }
    }
    violations
}

/// `true` iff the answer is exactly the shortest path graph.
pub fn is_exact(graph: &Graph, answer: &PathGraph) -> bool {
    validate(graph, answer).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::fixtures::{figure4_graph, figure4_spg_6_11_edges};

    #[test]
    fn accepts_the_correct_answer() {
        let g = figure4_graph();
        let answer = PathGraph::from_edges(6, 11, 5, figure4_spg_6_11_edges());
        assert!(is_exact(&g, &answer));
        assert!(validate(&g, &answer).is_empty());
    }

    #[test]
    fn detects_wrong_distance() {
        let g = figure4_graph();
        let answer = PathGraph::from_edges(6, 11, 4, figure4_spg_6_11_edges());
        let violations = validate(&g, &answer);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::WrongDistance { .. })));
    }

    #[test]
    fn detects_missing_and_extra_edges() {
        let g = figure4_graph();
        // Drop one edge and add an off-path edge.
        let mut edges = figure4_spg_6_11_edges();
        edges.pop();
        edges.push((13, 14));
        let answer = PathGraph::from_edges(6, 11, 5, edges);
        let violations = validate(&g, &answer);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::MissingEdge(..))));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::EdgeNotOnShortestPath(..))));
        assert!(!is_exact(&g, &answer));
    }

    #[test]
    fn detects_fabricated_edges() {
        let g = figure4_graph();
        let answer = PathGraph::from_edges(6, 11, 5, vec![(6u32, 11u32)]);
        let violations = validate(&g, &answer);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::EdgeNotInGraph(6, 11))));
    }

    #[test]
    fn unreachable_answers_must_be_empty() {
        let g = figure4_graph();
        let ok = PathGraph::unreachable(0, 5);
        assert!(is_exact(&g, &ok));
        let bad = PathGraph::from_edges(0, 5, qbs_graph::INFINITE_DISTANCE, vec![(1u32, 2u32)]);
        assert!(!is_exact(&g, &bad));
    }

    #[test]
    fn trivial_answers() {
        let g = figure4_graph();
        assert!(is_exact(&g, &PathGraph::trivial(5)));
        let bad = PathGraph::from_edges(5, 5, 1, vec![(5u32, 1u32)]);
        assert!(!is_exact(&g, &bad));
        let display = format!(
            "{}",
            Violation::WrongDistance {
                reported: 1,
                actual: 0
            }
        );
        assert!(display.contains("true distance"));
    }
}
