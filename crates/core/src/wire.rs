//! Wire encoding of the serving types — the byte layer under
//! `docs/protocol.md`.
//!
//! The network serving subsystem (`qbs-server`) ships [`QueryRequest`]
//! batches and per-request [`QueryOutcome`]s across TCP. This module gives
//! those types (plus the stats snapshots carried by the `Stats` protocol
//! frame) a stable, compact binary encoding that follows the same
//! conventions as the `qbs-index-v2` on-disk format
//! ([`crate::format`]):
//!
//! * everything is **little-endian**, decoded via `from_le_bytes` so no
//!   alignment is ever assumed;
//! * variable-length sequences carry a `u32` element count, validated
//!   against the bytes actually remaining **before** any allocation, so a
//!   corrupted length can never trigger an out-of-memory abort;
//! * every decode failure is a typed [`WireError`] value — malformed
//!   input must never panic (the protocol robustness suite sweeps
//!   truncations and bit flips over every encoder to enforce this).
//!
//! Encoding is canonical: `decode(encode(x)) == x` bit-for-bit for every
//! in-range value, which is what lets the loopback differential tests
//! compare server answers against local [`crate::session::Qbs::submit`]
//! outcomes with plain `==`.
//!
//! ```
//! use qbs_core::wire::{self, Wire};
//! use qbs_core::request::QueryRequest;
//!
//! let request = QueryRequest::path_graph(6, 11).with_stats();
//! let bytes = wire::to_bytes(&request);
//! assert_eq!(wire::from_bytes::<QueryRequest>(&bytes).unwrap(), request);
//! // Truncation is a typed error, not a panic.
//! assert!(wire::from_bytes::<QueryRequest>(&bytes[..3]).is_err());
//! ```

use std::fmt;

use qbs_graph::{Distance, PathGraph, VertexId};

use crate::cache::CacheStats;
use crate::obs::{HistogramSnapshot, MetricsSnapshot};
use crate::query::QueryAnswer;
use crate::request::{QueryMode, QueryOptions, QueryOutcome, QueryRequest, RequestError};
use crate::search::SearchStats;
use crate::session::EngineStats;
use crate::sketch::{Sketch, SketchHop};

/// A typed decode failure. Carries enough structure for protocol layers to
/// map it onto wire error codes without string matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// A top-level decode left unconsumed bytes behind.
    Trailing {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// An enum tag / flag byte held a value outside its domain.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending raw value.
        tag: u64,
    },
    /// A payload failed a structural validity check (e.g. non-UTF-8 text).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                what,
                needed,
                remaining,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete value")
            }
            WireError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag}"),
            WireError::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor over a byte buffer with checked little-endian reads.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                what,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a strict boolean byte (`0` or `1`; anything else is a
    /// [`WireError::BadTag`], so single-bit corruption is caught).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                what,
                tag: tag as u64,
            }),
        }
    }

    /// Reads a `u32` sequence length and validates it against the bytes
    /// remaining (`min_elem_bytes` is the smallest possible encoding of one
    /// element), so a corrupted count fails *here* instead of driving a
    /// gigantic allocation.
    pub fn seq_len(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        let needed = n.saturating_mul(min_elem_bytes.max(1));
        if needed > self.remaining() {
            return Err(WireError::Truncated {
                what,
                needed,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Fails with [`WireError::Trailing`] unless the buffer was fully
    /// consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.remaining(),
            })
        }
    }
}

/// A type with a canonical little-endian wire encoding.
pub trait Wire: Sized {
    /// Smallest possible encoding of one value, in bytes. Sequence
    /// decoders validate their element count against
    /// `count * MIN_ENCODED_LEN <= remaining`, which caps the allocation
    /// amplification of a corrupted count at the (small) in-memory/encoded
    /// size ratio instead of letting a 4-byte count drive an arbitrary
    /// `Vec::with_capacity`.
    const MIN_ENCODED_LEN: usize = 1;

    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes exactly one value from `bytes`, rejecting trailing garbage.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

impl Wire for QueryMode {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            QueryMode::Distance => 0,
            QueryMode::PathGraph => 1,
            QueryMode::Sketch => 2,
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("query mode")? {
            0 => Ok(QueryMode::Distance),
            1 => Ok(QueryMode::PathGraph),
            2 => Ok(QueryMode::Sketch),
            tag => Err(WireError::BadTag {
                what: "query mode",
                tag: tag as u64,
            }),
        }
    }
}

const OPT_COLLECT_STATS: u8 = 1 << 0;
const OPT_USE_CACHE: u8 = 1 << 1;

impl Wire for QueryOptions {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut flags = 0u8;
        if self.collect_stats {
            flags |= OPT_COLLECT_STATS;
        }
        if self.use_cache {
            flags |= OPT_USE_CACHE;
        }
        out.push(flags);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let flags = r.u8("query options")?;
        if flags & !(OPT_COLLECT_STATS | OPT_USE_CACHE) != 0 {
            return Err(WireError::BadTag {
                what: "query options",
                tag: flags as u64,
            });
        }
        Ok(QueryOptions {
            collect_stats: flags & OPT_COLLECT_STATS != 0,
            use_cache: flags & OPT_USE_CACHE != 0,
        })
    }
}

impl Wire for QueryRequest {
    // source u32 + target u32 + mode u8 + opts u8.
    const MIN_ENCODED_LEN: usize = 10;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.source.to_le_bytes());
        out.extend_from_slice(&self.target.to_le_bytes());
        self.mode.encode(out);
        self.opts.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(QueryRequest {
            source: r.u32("request source")?,
            target: r.u32("request target")?,
            mode: QueryMode::decode(r)?,
            opts: QueryOptions::decode(r)?,
        })
    }
}

impl Wire for RequestError {
    // tag u8 + the smallest variant payload (`Unavailable` with an empty
    // reason: a 4-byte string length).
    const MIN_ENCODED_LEN: usize = 5;

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RequestError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                out.push(0);
                out.extend_from_slice(&vertex.to_le_bytes());
                out.extend_from_slice(&num_vertices.to_le_bytes());
            }
            RequestError::Unavailable { reason } => {
                out.push(1);
                reason.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("request error")? {
            0 => Ok(RequestError::VertexOutOfRange {
                vertex: r.u64("out-of-range vertex")?,
                num_vertices: r.u64("vertex count")?,
            }),
            1 => Ok(RequestError::Unavailable {
                reason: String::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "request error",
                tag: tag as u64,
            }),
        }
    }
}

impl Wire for PathGraph {
    // source + target + distance + edge count, all u32.
    const MIN_ENCODED_LEN: usize = 16;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.source().to_le_bytes());
        out.extend_from_slice(&self.target().to_le_bytes());
        out.extend_from_slice(&self.distance().to_le_bytes());
        out.extend_from_slice(&(self.edges().len() as u32).to_le_bytes());
        for &(a, b) in self.edges() {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let source = r.u32("path-graph source")?;
        let target = r.u32("path-graph target")?;
        let distance: Distance = r.u32("path-graph distance")?;
        let n = r.seq_len("path-graph edge list", 8)?;
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n);
        for _ in 0..n {
            edges.push((r.u32("path-graph edge")?, r.u32("path-graph edge")?));
        }
        // `from_edges` re-canonicalises; canonical input (which is what the
        // encoder emits — `edges()` is sorted and deduplicated) survives
        // unchanged, so encode∘decode is the identity.
        Ok(PathGraph::from_edges(source, target, distance, edges))
    }
}

impl Wire for SketchHop {
    const MIN_ENCODED_LEN: usize = 8;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.landmark_idx as u32).to_le_bytes());
        out.extend_from_slice(&self.distance.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SketchHop {
            landmark_idx: r.u32("sketch hop landmark")? as usize,
            distance: r.u32("sketch hop distance")?,
        })
    }
}

impl Wire for Sketch {
    // endpoints + d⊤ + three sequence counts, all u32.
    const MIN_ENCODED_LEN: usize = 24;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.source.to_le_bytes());
        out.extend_from_slice(&self.target.to_le_bytes());
        out.extend_from_slice(&self.upper_bound.to_le_bytes());
        self.source_hops.encode(out);
        self.target_hops.encode(out);
        out.extend_from_slice(&(self.meta_edges.len() as u32).to_le_bytes());
        for &(i, j, d) in &self.meta_edges {
            out.extend_from_slice(&(i as u32).to_le_bytes());
            out.extend_from_slice(&(j as u32).to_le_bytes());
            out.extend_from_slice(&d.to_le_bytes());
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let source = r.u32("sketch source")?;
        let target = r.u32("sketch target")?;
        let upper_bound = r.u32("sketch upper bound")?;
        let source_hops = Vec::<SketchHop>::decode(r)?;
        let target_hops = Vec::<SketchHop>::decode(r)?;
        let n = r.seq_len("sketch meta edges", 12)?;
        let mut meta_edges = Vec::with_capacity(n);
        for _ in 0..n {
            meta_edges.push((
                r.u32("meta edge endpoint")? as usize,
                r.u32("meta edge endpoint")? as usize,
                r.u32("meta edge weight")?,
            ));
        }
        Ok(Sketch {
            source,
            target,
            upper_bound,
            source_hops,
            target_hops,
            meta_edges,
        })
    }
}

const STATS_USED_REVERSE: u8 = 1 << 0;
const STATS_USED_RECOVER: u8 = 1 << 1;

impl Wire for SearchStats {
    // three u32 + four u64 + flag byte.
    const MIN_ENCODED_LEN: usize = 45;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.upper_bound.to_le_bytes());
        out.extend_from_slice(&self.sparsified_distance.to_le_bytes());
        out.extend_from_slice(&self.distance.to_le_bytes());
        out.extend_from_slice(&(self.edges_traversed as u64).to_le_bytes());
        out.extend_from_slice(&(self.vertices_settled as u64).to_le_bytes());
        out.extend_from_slice(&(self.forward_levels as u64).to_le_bytes());
        out.extend_from_slice(&(self.backward_levels as u64).to_le_bytes());
        let mut flags = 0u8;
        if self.used_reverse_search {
            flags |= STATS_USED_REVERSE;
        }
        if self.used_recover_search {
            flags |= STATS_USED_RECOVER;
        }
        out.push(flags);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let upper_bound = r.u32("search upper bound")?;
        let sparsified_distance = r.u32("sparsified distance")?;
        let distance = r.u32("search distance")?;
        let edges_traversed = r.u64("edges traversed")? as usize;
        let vertices_settled = r.u64("vertices settled")? as usize;
        let forward_levels = r.u64("forward levels")? as usize;
        let backward_levels = r.u64("backward levels")? as usize;
        let flags = r.u8("search flags")?;
        if flags & !(STATS_USED_REVERSE | STATS_USED_RECOVER) != 0 {
            return Err(WireError::BadTag {
                what: "search flags",
                tag: flags as u64,
            });
        }
        Ok(SearchStats {
            upper_bound,
            sparsified_distance,
            distance,
            edges_traversed,
            vertices_settled,
            forward_levels,
            backward_levels,
            used_reverse_search: flags & STATS_USED_REVERSE != 0,
            used_recover_search: flags & STATS_USED_RECOVER != 0,
        })
    }
}

impl Wire for QueryAnswer {
    const MIN_ENCODED_LEN: usize =
        PathGraph::MIN_ENCODED_LEN + Sketch::MIN_ENCODED_LEN + SearchStats::MIN_ENCODED_LEN;

    fn encode(&self, out: &mut Vec<u8>) {
        self.path_graph.encode(out);
        self.sketch.encode(out);
        self.stats.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(QueryAnswer {
            path_graph: PathGraph::decode(r)?,
            sketch: Sketch::decode(r)?,
            stats: SearchStats::decode(r)?,
        })
    }
}

impl Wire for QueryOutcome {
    // tag byte + the smallest variant payload (a u32 distance).
    const MIN_ENCODED_LEN: usize = 5;

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            QueryOutcome::Distance(d) => {
                out.push(0);
                out.extend_from_slice(&d.to_le_bytes());
            }
            QueryOutcome::PathGraph(pg) => {
                out.push(1);
                pg.encode(out);
            }
            QueryOutcome::PathGraphWithStats(ans) => {
                out.push(2);
                ans.encode(out);
            }
            QueryOutcome::Sketch(s) => {
                out.push(3);
                s.encode(out);
            }
            QueryOutcome::Error(e) => {
                out.push(4);
                e.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("query outcome")? {
            0 => Ok(QueryOutcome::Distance(r.u32("outcome distance")?)),
            1 => Ok(QueryOutcome::PathGraph(Box::new(PathGraph::decode(r)?))),
            2 => Ok(QueryOutcome::PathGraphWithStats(Box::new(
                QueryAnswer::decode(r)?,
            ))),
            3 => Ok(QueryOutcome::Sketch(Box::new(Sketch::decode(r)?))),
            4 => Ok(QueryOutcome::Error(RequestError::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "query outcome",
                tag: tag as u64,
            }),
        }
    }
}

impl Wire for u64 {
    const MIN_ENCODED_LEN: usize = 8;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64("u64 scalar")
    }
}

impl<T: Wire> Wire for Vec<T> {
    const MIN_ENCODED_LEN: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // The count is validated against the element type's minimum
        // encoded size before the vector is allocated.
        let n = r.seq_len("sequence", T::MIN_ENCODED_LEN)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.bool("option presence")? {
            false => Ok(None),
            true => Ok(Some(T::decode(r)?)),
        }
    }
}

impl Wire for String {
    const MIN_ENCODED_LEN: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len("string", 1)?;
        let bytes = r.take(n, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("utf-8 string"))
    }
}

impl Wire for CacheStats {
    const MIN_ENCODED_LEN: usize = 48;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.hits.to_le_bytes());
        out.extend_from_slice(&self.misses.to_le_bytes());
        out.extend_from_slice(&self.insertions.to_le_bytes());
        out.extend_from_slice(&self.rejected.to_le_bytes());
        out.extend_from_slice(&self.evictions.to_le_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CacheStats {
            hits: r.u64("cache hits")?,
            misses: r.u64("cache misses")?,
            insertions: r.u64("cache insertions")?,
            rejected: r.u64("cache rejections")?,
            evictions: r.u64("cache evictions")?,
            len: r.u64("cache length")? as usize,
        })
    }
}

impl Wire for EngineStats {
    // nine u64 counters + backend bool + cache presence byte.
    const MIN_ENCODED_LEN: usize = 74;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.num_vertices.to_le_bytes());
        out.extend_from_slice(&self.num_landmarks.to_le_bytes());
        out.extend_from_slice(&self.threads.to_le_bytes());
        out.push(self.view_backed as u8);
        out.extend_from_slice(&self.requests.to_le_bytes());
        out.extend_from_slice(&self.batches.to_le_bytes());
        out.extend_from_slice(&self.errors.to_le_bytes());
        out.extend_from_slice(&self.planner.dedup_hits.to_le_bytes());
        out.extend_from_slice(&self.planner.labels_memoized.to_le_bytes());
        out.extend_from_slice(&self.planner.fwd_levels_reused.to_le_bytes());
        self.cache.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(EngineStats {
            num_vertices: r.u64("engine vertices")?,
            num_landmarks: r.u64("engine landmarks")?,
            threads: r.u64("engine threads")?,
            view_backed: r.bool("engine backend")?,
            requests: r.u64("engine requests")?,
            batches: r.u64("engine batches")?,
            errors: r.u64("engine errors")?,
            planner: crate::plan::PlannerStats {
                dedup_hits: r.u64("planner dedup hits")?,
                labels_memoized: r.u64("planner labels memoized")?,
                fwd_levels_reused: r.u64("planner fwd levels reused")?,
            },
            cache: Option::<CacheStats>::decode(r)?,
        })
    }
}

/// Per-replica counters of the scatter/gather routing tier, one entry per
/// configured backend replica. Rides inside [`RouterStats`] on the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// The replica's dial address (`host:port`).
    pub addr: String,
    /// Whether the health subsystem currently considers the replica
    /// servable (not ejected).
    pub healthy: bool,
    /// Requests routed to this replica (admitted sub-batches only).
    pub requests: u64,
    /// Sub-batches routed to this replica.
    pub batches: u64,
    /// Sub-batches re-routed *away* after this replica failed or shed.
    pub retries: u64,
    /// Times the health subsystem ejected this replica.
    pub ejections: u64,
    /// Requests currently in flight on this replica (gauge).
    pub in_flight: u64,
    /// Consecutive probe/serve failures since the last success.
    pub consecutive_failures: u64,
    /// Cumulative failed serve/probe attempts over the replica's lifetime
    /// (unlike `consecutive_failures`, never reset by a success).
    pub failures: u64,
}

impl ReplicaStats {
    /// Failed attempts as a percentage of all serve attempts (successful
    /// sub-batches plus failures). `0.0` when the replica is untried.
    pub fn error_rate(&self) -> f64 {
        let attempts = self.batches + self.failures;
        if attempts == 0 {
            0.0
        } else {
            self.failures as f64 * 100.0 / attempts as f64
        }
    }
}

impl Wire for ReplicaStats {
    // addr length u32 + healthy bool + seven u64 counters.
    const MIN_ENCODED_LEN: usize = 4 + 1 + 7 * 8;

    fn encode(&self, out: &mut Vec<u8>) {
        self.addr.encode(out);
        out.push(self.healthy as u8);
        out.extend_from_slice(&self.requests.to_le_bytes());
        out.extend_from_slice(&self.batches.to_le_bytes());
        out.extend_from_slice(&self.retries.to_le_bytes());
        out.extend_from_slice(&self.ejections.to_le_bytes());
        out.extend_from_slice(&self.in_flight.to_le_bytes());
        out.extend_from_slice(&self.consecutive_failures.to_le_bytes());
        out.extend_from_slice(&self.failures.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ReplicaStats {
            addr: String::decode(r)?,
            healthy: r.bool("replica health")?,
            requests: r.u64("replica requests")?,
            batches: r.u64("replica batches")?,
            retries: r.u64("replica retries")?,
            ejections: r.u64("replica ejections")?,
            in_flight: r.u64("replica in-flight")?,
            consecutive_failures: r.u64("replica failures")?,
            failures: r.u64("replica lifetime failures")?,
        })
    }
}

/// Counters of the scatter/gather routing tier (`qbs route`), carried in
/// the `Stats` response alongside the merged per-replica engine counters
/// so `qbs client --stats` shows the whole serving tier at once.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Client batches the router accepted and scattered.
    pub batches_routed: u64,
    /// Sub-batches produced by splitting (≥ `batches_routed`).
    pub subbatches: u64,
    /// Sub-batches retried on a different replica after a failure or a
    /// typed `Busy`.
    pub retries: u64,
    /// Health ejections across all replicas.
    pub ejections: u64,
    /// Request slots answered `RequestError::Unavailable` because every
    /// offered replica failed.
    pub unavailable_slots: u64,
    /// Per-replica breakdown, in configuration order.
    pub replicas: Vec<ReplicaStats>,
}

impl Wire for RouterStats {
    // five u64 counters + replica sequence length u32.
    const MIN_ENCODED_LEN: usize = 5 * 8 + 4;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.batches_routed.to_le_bytes());
        out.extend_from_slice(&self.subbatches.to_le_bytes());
        out.extend_from_slice(&self.retries.to_le_bytes());
        out.extend_from_slice(&self.ejections.to_le_bytes());
        out.extend_from_slice(&self.unavailable_slots.to_le_bytes());
        self.replicas.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RouterStats {
            batches_routed: r.u64("routed batches")?,
            subbatches: r.u64("routed sub-batches")?,
            retries: r.u64("router retries")?,
            ejections: r.u64("router ejections")?,
            unavailable_slots: r.u64("unavailable slots")?,
            replicas: Vec::<ReplicaStats>::decode(r)?,
        })
    }
}

impl std::fmt::Display for RouterStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "router: {} batches scattered into {} sub-batches, {} retries, {} ejections, \
             {} unavailable slots",
            self.batches_routed,
            self.subbatches,
            self.retries,
            self.ejections,
            self.unavailable_slots
        )?;
        for r in &self.replicas {
            writeln!(
                f,
                "  replica {}: {} — {} requests in {} batches, {} retried away, \
                 {} ejections, {} in flight, {:.1}% errors",
                r.addr,
                if r.healthy { "healthy" } else { "ejected" },
                r.requests,
                r.batches,
                r.retries,
                r.ejections,
                r.in_flight,
                r.error_rate()
            )?;
        }
        Ok(())
    }
}

impl Wire for HistogramSnapshot {
    // four u64 scalars + bucket sequence length u32.
    const MIN_ENCODED_LEN: usize = 4 * 8 + 4;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        self.buckets.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(HistogramSnapshot {
            count: r.u64("histogram count")?,
            sum: r.u64("histogram sum")?,
            min: r.u64("histogram min")?,
            max: r.u64("histogram max")?,
            buckets: Vec::<u64>::decode(r)?,
        })
    }
}

impl Wire for MetricsSnapshot {
    // slow-query counter + histogram sequence length u32.
    const MIN_ENCODED_LEN: usize = 8 + 4;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.slow_queries.to_le_bytes());
        self.hists.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MetricsSnapshot {
            slow_queries: r.u64("slow query count")?,
            hists: Vec::<HistogramSnapshot>::decode(r)?,
        })
    }
}

/// A per-connection request identifier, carried in the protocol-v2 frame
/// envelope (`[len][id][tag][payload]`) so responses can complete out of
/// order. IDs are scoped to one connection and assigned by the client;
/// the server echoes them verbatim. [`RequestId::CONNECTION`] (zero) is
/// reserved for connection-scoped frames — faults that poison the whole
/// stream rather than one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u32);

impl RequestId {
    /// The reserved connection-scoped ID (never assigned to a request).
    pub const CONNECTION: RequestId = RequestId(0);

    /// Whether this is the reserved connection-scoped ID.
    pub fn is_connection_scoped(self) -> bool {
        self == RequestId::CONNECTION
    }

    /// The next ID a client should assign after this one — wraps past
    /// `u32::MAX` but never lands on the reserved zero.
    pub fn next(self) -> RequestId {
        match self.0.wrapping_add(1) {
            0 => RequestId(1),
            n => RequestId(n),
        }
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl Wire for RequestId {
    const MIN_ENCODED_LEN: usize = 4;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RequestId(r.u32("request id")?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QbsConfig, QbsIndex};
    use crate::request::execute_on;
    use crate::workspace::QueryWorkspace;
    use qbs_graph::fixtures::figure4_graph;

    fn index() -> QbsIndex {
        QbsIndex::build(
            figure4_graph(),
            QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
        )
    }

    /// Every real outcome the figure-4 index can produce round-trips
    /// bit-identically through the wire encoding.
    #[test]
    fn outcomes_roundtrip_bit_identically() {
        let index = index();
        let mut ws = QueryWorkspace::new();
        for u in 0..15u32 {
            for v in 0..15u32 {
                for mode in QueryMode::ALL {
                    for req in [
                        QueryRequest::new(u, v, mode),
                        QueryRequest::new(u, v, mode).with_stats().uncached(),
                    ] {
                        assert_eq!(from_bytes::<QueryRequest>(&to_bytes(&req)).unwrap(), req);
                        let outcome = execute_on(&index, &mut ws, &req);
                        let decoded = from_bytes::<QueryOutcome>(&to_bytes(&outcome)).unwrap();
                        assert_eq!(decoded, outcome, "({u},{v}) {mode}");
                    }
                }
            }
        }
    }

    #[test]
    fn error_outcomes_and_stats_roundtrip() {
        let outcome = QueryOutcome::Error(RequestError::VertexOutOfRange {
            vertex: 99,
            num_vertices: 15,
        });
        assert_eq!(
            from_bytes::<QueryOutcome>(&to_bytes(&outcome)).unwrap(),
            outcome
        );
        let unavailable = QueryOutcome::Error(RequestError::Unavailable {
            reason: "replica 127.0.0.1:7411: connection refused".to_string(),
        });
        assert_eq!(
            from_bytes::<QueryOutcome>(&to_bytes(&unavailable)).unwrap(),
            unavailable
        );

        let cache = CacheStats {
            hits: 10,
            misses: 3,
            insertions: 5,
            rejected: 2,
            evictions: 1,
            len: 4,
        };
        assert_eq!(from_bytes::<CacheStats>(&to_bytes(&cache)).unwrap(), cache);

        let engine = EngineStats {
            num_vertices: 15,
            num_landmarks: 3,
            threads: 4,
            view_backed: true,
            requests: 100,
            batches: 7,
            errors: 1,
            planner: crate::plan::PlannerStats {
                dedup_hits: 12,
                labels_memoized: 34,
                fwd_levels_reused: 56,
            },
            cache: Some(cache),
        };
        assert_eq!(
            from_bytes::<EngineStats>(&to_bytes(&engine)).unwrap(),
            engine
        );
        let uncached = EngineStats {
            cache: None,
            ..engine
        };
        assert_eq!(
            from_bytes::<EngineStats>(&to_bytes(&uncached)).unwrap(),
            uncached
        );
    }

    #[test]
    fn vec_and_string_roundtrip() {
        let batch = vec![
            QueryRequest::distance(1, 2),
            QueryRequest::sketch(3, 4).uncached(),
        ];
        assert_eq!(
            from_bytes::<Vec<QueryRequest>>(&to_bytes(&batch)).unwrap(),
            batch
        );
        let text = "γράφος".to_string();
        assert_eq!(from_bytes::<String>(&to_bytes(&text)).unwrap(), text);
        assert_eq!(
            from_bytes::<String>(&to_bytes(&String::new())).unwrap(),
            String::new()
        );
    }

    /// Every truncation of every encoding decodes to a typed error —
    /// never a panic, never a bogus success.
    #[test]
    fn truncations_yield_typed_errors() {
        let index = index();
        let mut ws = QueryWorkspace::new();
        let outcome = execute_on(
            &index,
            &mut ws,
            &QueryRequest::path_graph(6, 11).with_stats(),
        );
        let bytes = to_bytes(&outcome);
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<QueryOutcome>(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Trailing garbage after a full value is also rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            from_bytes::<QueryOutcome>(&padded),
            Err(WireError::Trailing { extra: 1 })
        );
    }

    #[test]
    fn min_encoded_lens_are_sound_lower_bounds() {
        use qbs_graph::PathGraph;
        assert_eq!(
            to_bytes(&QueryRequest::distance(0, 0)).len(),
            QueryRequest::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&PathGraph::trivial(0)).len(),
            PathGraph::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&Sketch::unreachable(0, 0)).len(),
            Sketch::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&SearchStats::default()).len(),
            SearchStats::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&QueryOutcome::Distance(0)).len(),
            QueryOutcome::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&CacheStats::default()).len(),
            CacheStats::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&EngineStats::default()).len(),
            EngineStats::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&RequestError::Unavailable {
                reason: String::new()
            })
            .len(),
            RequestError::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&ReplicaStats::default()).len(),
            ReplicaStats::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&RouterStats::default()).len(),
            RouterStats::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&HistogramSnapshot::default()).len(),
            HistogramSnapshot::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&MetricsSnapshot::default()).len(),
            MetricsSnapshot::MIN_ENCODED_LEN
        );
        assert_eq!(
            to_bytes(&SketchHop {
                landmark_idx: 0,
                distance: 0
            })
            .len(),
            SketchHop::MIN_ENCODED_LEN
        );

        // A hostile count inside a large (64 MiB) buffer is rejected by
        // the per-element bound before the vector is allocated: 60M
        // claimed requests × 10 bytes minimum ≫ the bytes present.
        let mut hostile = 60_000_000u32.to_le_bytes().to_vec();
        hostile.resize(64 << 20, 0);
        assert!(matches!(
            from_bytes::<Vec<QueryRequest>>(&hostile),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_lengths_cannot_allocate() {
        // A sequence claiming u32::MAX elements fails on the remaining-byte
        // check before any allocation happens.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = from_bytes::<Vec<QueryRequest>>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err}");
    }

    #[test]
    fn bad_tags_are_typed() {
        assert!(matches!(
            from_bytes::<QueryMode>(&[9]),
            Err(WireError::BadTag {
                what: "query mode",
                tag: 9
            })
        ));
        assert!(matches!(
            from_bytes::<QueryOptions>(&[0xF0]),
            Err(WireError::BadTag { .. })
        ));
        let mut bad_utf8 = 1u32.to_le_bytes().to_vec();
        bad_utf8.push(0xFF);
        assert_eq!(
            from_bytes::<String>(&bad_utf8),
            Err(WireError::Invalid("utf-8 string"))
        );
        let err = WireError::Truncated {
            what: "x",
            needed: 4,
            remaining: 1,
        };
        assert!(err.to_string().contains("truncated"));
        assert!(WireError::Invalid("utf-8 string")
            .to_string()
            .contains("utf-8"));
    }

    #[test]
    fn router_stats_roundtrip_and_reject_truncation() {
        let stats = RouterStats {
            batches_routed: 100,
            subbatches: 260,
            retries: 3,
            ejections: 1,
            unavailable_slots: 2,
            replicas: vec![
                ReplicaStats {
                    addr: "127.0.0.1:7411".to_string(),
                    healthy: true,
                    requests: 4000,
                    batches: 130,
                    retries: 0,
                    ejections: 0,
                    in_flight: 64,
                    consecutive_failures: 0,
                    failures: 0,
                },
                ReplicaStats {
                    addr: "127.0.0.1:7412".to_string(),
                    healthy: false,
                    requests: 3800,
                    batches: 127,
                    retries: 3,
                    ejections: 1,
                    in_flight: 0,
                    consecutive_failures: 5,
                    failures: 5,
                },
            ],
        };
        let bytes = to_bytes(&stats);
        assert_eq!(from_bytes::<RouterStats>(&bytes).unwrap(), stats);
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<RouterStats>(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let rendered = stats.to_string();
        assert!(rendered.contains("127.0.0.1:7412"));
        assert!(rendered.contains("ejected"));
        assert!(rendered.contains("healthy"));
        // Derived per-replica error rate: 5 failures over 127 + 5 attempts.
        assert!(rendered.contains("3.8% errors"), "{rendered}");
        assert!(rendered.contains("0.0% errors"), "{rendered}");
    }

    #[test]
    fn metrics_snapshot_roundtrip_and_corruption_sweeps() {
        use crate::obs::{LatencyHistogram, Metrics};
        let m = Metrics::new();
        let h = LatencyHistogram::new();
        for ns in [90, 1_500, 22_000, 1_000_000, 40_000_000] {
            h.record_ns(ns);
        }
        let mut snap = m.snapshot();
        snap.slow_queries = 3;
        snap.hists[0] = h.snapshot();
        let bytes = to_bytes(&snap);
        assert_eq!(from_bytes::<MetricsSnapshot>(&bytes).unwrap(), snap);

        // Every truncation is a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<MetricsSnapshot>(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Every single-bit flip either decodes to some value or fails with
        // a typed error — corrupted counters must never panic or abort.
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                let _ = from_bytes::<MetricsSnapshot>(&flipped);
            }
        }
        // A hostile bucket count is bounded by the remaining bytes before
        // any allocation happens.
        let mut hostile = 3u64.to_le_bytes().to_vec();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes::<MetricsSnapshot>(&hostile),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn request_ids_roundtrip_and_skip_the_reserved_zero() {
        for id in [RequestId(1), RequestId(7), RequestId(u32::MAX)] {
            assert_eq!(from_bytes::<RequestId>(&to_bytes(&id)).unwrap(), id);
        }
        assert_eq!(to_bytes(&RequestId(5)), 5u32.to_le_bytes());
        assert!(RequestId::CONNECTION.is_connection_scoped());
        assert!(!RequestId(1).is_connection_scoped());
        assert_eq!(RequestId(1).next(), RequestId(2));
        // Wrapping past u32::MAX never produces the reserved zero.
        assert_eq!(RequestId(u32::MAX).next(), RequestId(1));
        assert_eq!(RequestId(3).to_string(), "#3");
        assert!(matches!(
            from_bytes::<RequestId>(&[0, 0]),
            Err(WireError::Truncated { .. })
        ));
    }
}
