//! Reusable, epoch-stamped per-query scratch state.
//!
//! A [`QueryWorkspace`] owns every piece of mutable state the online query
//! path needs — the two bidirectional-search sides, the visited sets and
//! stacks of the reverse/recover walks, the label buffers fed to the
//! sketcher, and a scratch vertex filter for landmark-endpoint queries.
//! All per-vertex structures are epoch-stamped
//! ([`qbs_graph::workspace`]), so preparing the workspace for the next
//! query is O(1): a handful of `clear()`s on small vectors plus one epoch
//! bump per field, never an `O(|V|)` allocation or memset.
//!
//! The intended usage pattern is one long-lived workspace per worker
//! thread:
//!
//! ```
//! use qbs_core::{QbsConfig, QbsIndex, QueryWorkspace};
//! use qbs_graph::fixtures::figure4_graph;
//!
//! let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
//! let mut ws = QueryWorkspace::new();
//! for (u, v) in [(6, 11), (4, 12), (7, 9)] {
//!     let answer = index.query_with(&mut ws, u, v).unwrap();
//!     assert_eq!(answer.path_graph, index.query(u, v).unwrap());
//! }
//! assert_eq!(ws.queries_served(), 3);
//! ```
//!
//! Results are bit-identical to the allocation-per-query path (the
//! differential tests in `tests/workspace_differential.rs` assert this
//! across generator families and hundreds of mixed queries).

use qbs_graph::view::NeighborAccess;
use qbs_graph::workspace::{DistanceField, VisitedSet};
use qbs_graph::{Distance, VertexFilter, VertexId};

use crate::search::SearchStats;

/// One side (forward or backward) of the guided bidirectional search, with
/// all storage reusable across queries.
#[derive(Debug, Default)]
pub(crate) struct SideState {
    /// Epoch-stamped BFS depths.
    pub(crate) depth: DistanceField,
    /// `levels[d]` lists the vertices settled at depth `d`. Inner vectors
    /// keep their capacity across queries; `active_levels` tracks how many
    /// were touched by the previous query so `begin` clears only those.
    pub(crate) levels: Vec<Vec<VertexId>>,
    active_levels: usize,
    /// Number of settled vertices (`|P|` in Algorithm 4).
    pub(crate) settled: usize,
    /// Current level (`d_u` / `d_v` in Algorithm 4).
    pub(crate) level: Distance,
    /// Origin of the live state, if any — what [`SideState::resume`]
    /// compares against to keep a forward BFS alive across consecutive
    /// same-source queries.
    origin: Option<VertexId>,
}

impl SideState {
    /// Prepares the side for a new search from `origin` on a graph with `n`
    /// vertex slots.
    pub(crate) fn begin(&mut self, n: usize, origin: VertexId) {
        self.depth.reset(n);
        for level in &mut self.levels[..self.active_levels] {
            level.clear();
        }
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(origin);
        self.active_levels = 1;
        self.settled = 1;
        self.level = 0;
        self.depth.set(origin, 0);
        self.origin = Some(origin);
    }

    /// Keeps the live BFS state when it was already rooted at `origin` on a
    /// graph of the same size; otherwise falls back to [`SideState::begin`].
    /// Returns `true` when prior state was kept.
    ///
    /// Safe to reuse because BFS levels from a fixed origin on a fixed view
    /// are canonical: the caller only has to guarantee that the adjacency
    /// view is the same one the retained state was computed on (the planner
    /// uses this exclusively for non-landmark endpoints, where the
    /// sparsified view is always `G⁻` itself).
    pub(crate) fn resume(&mut self, n: usize, origin: VertexId) -> bool {
        if self.origin == Some(origin) && self.depth.capacity() >= n {
            true
        } else {
            self.begin(n, origin);
            false
        }
    }

    /// The vertices settled at the current level.
    pub(crate) fn frontier(&self) -> &[VertexId] {
        &self.levels[self.level as usize]
    }

    /// Expands the current frontier one level on the view; returns the
    /// number of newly settled vertices. Generic over the adjacency source
    /// so the same search runs on an owned CSR ([`FilteredGraph`]) and on a
    /// sparsified zero-copy store view alike.
    pub(crate) fn expand<V: NeighborAccess>(&mut self, view: &V, stats: &mut SearchStats) -> usize {
        let next_depth = self.level + 1;
        if self.levels.len() <= next_depth as usize {
            self.levels.push(Vec::new());
        }
        let depth = &mut self.depth;
        let (settled_levels, next_levels) = self.levels.split_at_mut(next_depth as usize);
        let current = &settled_levels[self.level as usize];
        let next = &mut next_levels[0];
        for &u in current {
            stats.vertices_settled += 1;
            view.for_each_neighbor(u, |w| {
                stats.edges_traversed += 1;
                if !depth.is_set(w) {
                    depth.set(w, next_depth);
                    next.push(w);
                }
            });
        }
        let added = next.len();
        self.settled += added;
        self.level = next_depth;
        self.active_levels = self.active_levels.max(next_depth as usize + 1);
        added
    }
}

/// Per-batch, epoch-stamped memo of effective labels: the batch execution
/// planner fetches each endpoint's label once per batch instead of once
/// per query the endpoint appears in.
///
/// Entry storage is an arena of reusable vectors indexed by a per-vertex
/// slot map, stamped like the other workspace fields so `begin_batch` is
/// O(1) amortised.
#[derive(Debug, Default)]
pub(crate) struct LabelMemo {
    stamps: Vec<u32>,
    slots: Vec<u32>,
    epoch: u32,
    entries: Vec<Vec<(usize, Distance)>>,
    used: usize,
    hits: u64,
}

impl LabelMemo {
    /// Starts a new batch: every previously memoized label becomes stale.
    pub(crate) fn begin_batch(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
            self.slots.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamps.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
        self.used = 0;
    }

    /// Returns the arena slot holding `v`'s effective label, filling it
    /// from the store on first sight within the current batch.
    pub(crate) fn ensure<S: crate::store::IndexStore>(&mut self, store: &S, v: VertexId) -> usize {
        let idx = v as usize;
        if self.stamps[idx] == self.epoch {
            self.hits += 1;
            return self.slots[idx] as usize;
        }
        if self.used == self.entries.len() {
            self.entries.push(Vec::new());
        }
        store.fill_effective_label(v, &mut self.entries[self.used]);
        self.stamps[idx] = self.epoch;
        self.slots[idx] = self.used as u32;
        self.used += 1;
        self.used - 1
    }

    /// The label stored at an [`ensure`](LabelMemo::ensure)-returned slot.
    pub(crate) fn entry(&self, slot: usize) -> &[(usize, Distance)] {
        &self.entries[slot]
    }

    /// Label fetches avoided so far (reads destructively).
    pub(crate) fn take_hits(&mut self) -> u64 {
        std::mem::take(&mut self.hits)
    }
}

/// Reusable scratch state for the online query path. See the module docs
/// for the epoch-stamping design and usage pattern.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    /// Forward search side (rooted at the query source).
    pub(crate) fwd: SideState,
    /// Backward search side (rooted at the query target).
    pub(crate) bwd: SideState,
    /// Long-lived forward side for the planner's shared-BFS distance
    /// groups: kept out of `fwd` so interleaved vanilla queries (other
    /// modes, landmark endpoints) cannot clobber the resumable state.
    pub(crate) shared_fwd: SideState,
    /// Per-batch effective-label memo (planner only).
    pub(crate) label_memo: LabelMemo,
    /// Visited set for the reverse-search walks.
    pub(crate) visited: VisitedSet,
    /// Vertex stack for the reverse-search and depth walks.
    pub(crate) stack: Vec<VertexId>,
    /// Visited set for the label/depth walks of the recover search.
    pub(crate) walk_visited: VisitedSet,
    /// `(vertex, remaining distance)` stack for label walks.
    pub(crate) walk_stack: Vec<(VertexId, Distance)>,
    /// Meeting vertices of the bidirectional search.
    pub(crate) meeting: Vec<VertexId>,
    /// Edge accumulator for the answer under construction.
    pub(crate) edges: Vec<(VertexId, VertexId)>,
    /// Scratch filter for the rare landmark-endpoint queries.
    pub(crate) scratch_filter: VertexFilter,
    /// Effective-label buffer for the query source.
    pub(crate) src_label: Vec<(usize, Distance)>,
    /// Effective-label buffer for the query target.
    pub(crate) tgt_label: Vec<(usize, Distance)>,
    /// Per-request stage-timing scratch (see [`crate::obs`]); flushed
    /// into the engine's metrics registry after each request.
    pub(crate) obs: crate::obs::ObsScratch,
    /// Number of queries answered through this workspace.
    queries_served: u64,
}

impl QueryWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace with the per-vertex structures pre-sized for a
    /// graph with `n` vertices, avoiding even the first-query growth.
    pub fn for_vertices(n: usize) -> Self {
        let mut ws = Self::new();
        ws.fwd.depth.reset(n);
        ws.bwd.depth.reset(n);
        ws.visited.reset(n);
        ws.walk_visited.reset(n);
        ws
    }

    /// Number of queries answered through this workspace since creation.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Records one served query (called by the search entry points).
    pub(crate) fn record_query(&mut self) {
        self.queries_served += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::fixtures::figure4_graph;
    use qbs_graph::{FilteredGraph, INFINITE_DISTANCE};

    #[test]
    fn side_state_reuses_level_buffers() {
        let graph = figure4_graph();
        let filter = VertexFilter::new(graph.num_vertices());
        let view = FilteredGraph::new(&graph, &filter);
        let mut side = SideState::default();
        let mut stats = SearchStats::default();

        side.begin(graph.num_vertices(), 6);
        assert_eq!(side.frontier(), &[6]);
        side.expand(&view, &mut stats);
        assert!(side.settled > 1);
        let deep_levels = side.active_levels;

        // A second search must not see any first-search state.
        side.begin(graph.num_vertices(), 11);
        assert_eq!(side.frontier(), &[11]);
        assert_eq!(side.settled, 1);
        assert_eq!(side.level, 0);
        assert_eq!(side.depth.get(6), INFINITE_DISTANCE);
        assert!(
            side.levels.len() >= deep_levels,
            "level buffers are retained"
        );
    }

    #[test]
    fn workspace_presizing_matches_lazy_growth() {
        let ws = QueryWorkspace::for_vertices(64);
        assert_eq!(ws.queries_served(), 0);
        assert!(ws.fwd.depth.capacity() >= 64);
        assert!(ws.walk_visited.capacity() >= 64);
    }
}
