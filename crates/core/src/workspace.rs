//! Reusable, epoch-stamped per-query scratch state.
//!
//! A [`QueryWorkspace`] owns every piece of mutable state the online query
//! path needs — the two bidirectional-search sides, the visited sets and
//! stacks of the reverse/recover walks, the label buffers fed to the
//! sketcher, and a scratch vertex filter for landmark-endpoint queries.
//! All per-vertex structures are epoch-stamped
//! ([`qbs_graph::workspace`]), so preparing the workspace for the next
//! query is O(1): a handful of `clear()`s on small vectors plus one epoch
//! bump per field, never an `O(|V|)` allocation or memset.
//!
//! The intended usage pattern is one long-lived workspace per worker
//! thread:
//!
//! ```
//! use qbs_core::{QbsConfig, QbsIndex, QueryWorkspace};
//! use qbs_graph::fixtures::figure4_graph;
//!
//! let index = QbsIndex::build(figure4_graph(), QbsConfig::with_landmark_count(3));
//! let mut ws = QueryWorkspace::new();
//! for (u, v) in [(6, 11), (4, 12), (7, 9)] {
//!     let answer = index.query_with(&mut ws, u, v).unwrap();
//!     assert_eq!(answer.path_graph, index.query(u, v).unwrap());
//! }
//! assert_eq!(ws.queries_served(), 3);
//! ```
//!
//! Results are bit-identical to the allocation-per-query path (the
//! differential tests in `tests/workspace_differential.rs` assert this
//! across generator families and hundreds of mixed queries).

use qbs_graph::view::NeighborAccess;
use qbs_graph::workspace::{DistanceField, VisitedSet};
use qbs_graph::{Distance, VertexFilter, VertexId};

use crate::search::SearchStats;

/// One side (forward or backward) of the guided bidirectional search, with
/// all storage reusable across queries.
#[derive(Debug, Default)]
pub(crate) struct SideState {
    /// Epoch-stamped BFS depths.
    pub(crate) depth: DistanceField,
    /// `levels[d]` lists the vertices settled at depth `d`. Inner vectors
    /// keep their capacity across queries; `active_levels` tracks how many
    /// were touched by the previous query so `begin` clears only those.
    pub(crate) levels: Vec<Vec<VertexId>>,
    active_levels: usize,
    /// Number of settled vertices (`|P|` in Algorithm 4).
    pub(crate) settled: usize,
    /// Current level (`d_u` / `d_v` in Algorithm 4).
    pub(crate) level: Distance,
}

impl SideState {
    /// Prepares the side for a new search from `origin` on a graph with `n`
    /// vertex slots.
    pub(crate) fn begin(&mut self, n: usize, origin: VertexId) {
        self.depth.reset(n);
        for level in &mut self.levels[..self.active_levels] {
            level.clear();
        }
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(origin);
        self.active_levels = 1;
        self.settled = 1;
        self.level = 0;
        self.depth.set(origin, 0);
    }

    /// The vertices settled at the current level.
    pub(crate) fn frontier(&self) -> &[VertexId] {
        &self.levels[self.level as usize]
    }

    /// Expands the current frontier one level on the view; returns the
    /// number of newly settled vertices. Generic over the adjacency source
    /// so the same search runs on an owned CSR ([`FilteredGraph`]) and on a
    /// sparsified zero-copy store view alike.
    pub(crate) fn expand<V: NeighborAccess>(&mut self, view: &V, stats: &mut SearchStats) -> usize {
        let next_depth = self.level + 1;
        if self.levels.len() <= next_depth as usize {
            self.levels.push(Vec::new());
        }
        let depth = &mut self.depth;
        let (settled_levels, next_levels) = self.levels.split_at_mut(next_depth as usize);
        let current = &settled_levels[self.level as usize];
        let next = &mut next_levels[0];
        for &u in current {
            stats.vertices_settled += 1;
            view.for_each_neighbor(u, |w| {
                stats.edges_traversed += 1;
                if !depth.is_set(w) {
                    depth.set(w, next_depth);
                    next.push(w);
                }
            });
        }
        let added = next.len();
        self.settled += added;
        self.level = next_depth;
        self.active_levels = self.active_levels.max(next_depth as usize + 1);
        added
    }
}

/// Reusable scratch state for the online query path. See the module docs
/// for the epoch-stamping design and usage pattern.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    /// Forward search side (rooted at the query source).
    pub(crate) fwd: SideState,
    /// Backward search side (rooted at the query target).
    pub(crate) bwd: SideState,
    /// Visited set for the reverse-search walks.
    pub(crate) visited: VisitedSet,
    /// Vertex stack for the reverse-search and depth walks.
    pub(crate) stack: Vec<VertexId>,
    /// Visited set for the label/depth walks of the recover search.
    pub(crate) walk_visited: VisitedSet,
    /// `(vertex, remaining distance)` stack for label walks.
    pub(crate) walk_stack: Vec<(VertexId, Distance)>,
    /// Meeting vertices of the bidirectional search.
    pub(crate) meeting: Vec<VertexId>,
    /// Edge accumulator for the answer under construction.
    pub(crate) edges: Vec<(VertexId, VertexId)>,
    /// Scratch filter for the rare landmark-endpoint queries.
    pub(crate) scratch_filter: VertexFilter,
    /// Effective-label buffer for the query source.
    pub(crate) src_label: Vec<(usize, Distance)>,
    /// Effective-label buffer for the query target.
    pub(crate) tgt_label: Vec<(usize, Distance)>,
    /// Number of queries answered through this workspace.
    queries_served: u64,
}

impl QueryWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace with the per-vertex structures pre-sized for a
    /// graph with `n` vertices, avoiding even the first-query growth.
    pub fn for_vertices(n: usize) -> Self {
        let mut ws = Self::new();
        ws.fwd.depth.reset(n);
        ws.bwd.depth.reset(n);
        ws.visited.reset(n);
        ws.walk_visited.reset(n);
        ws
    }

    /// Number of queries answered through this workspace since creation.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Records one served query (called by the search entry points).
    pub(crate) fn record_query(&mut self) {
        self.queries_served += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_graph::fixtures::figure4_graph;
    use qbs_graph::{FilteredGraph, INFINITE_DISTANCE};

    #[test]
    fn side_state_reuses_level_buffers() {
        let graph = figure4_graph();
        let filter = VertexFilter::new(graph.num_vertices());
        let view = FilteredGraph::new(&graph, &filter);
        let mut side = SideState::default();
        let mut stats = SearchStats::default();

        side.begin(graph.num_vertices(), 6);
        assert_eq!(side.frontier(), &[6]);
        side.expand(&view, &mut stats);
        assert!(side.settled > 1);
        let deep_levels = side.active_levels;

        // A second search must not see any first-search state.
        side.begin(graph.num_vertices(), 11);
        assert_eq!(side.frontier(), &[11]);
        assert_eq!(side.settled, 1);
        assert_eq!(side.level, 0);
        assert_eq!(side.depth.get(6), INFINITE_DISTANCE);
        assert!(
            side.levels.len() >= deep_levels,
            "level buffers are retained"
        );
    }

    #[test]
    fn workspace_presizing_matches_lazy_growth() {
        let ws = QueryWorkspace::for_vertices(64);
        assert_eq!(ws.queries_served(), 0);
        assert!(ws.fwd.depth.capacity() >= 64);
        assert!(ws.walk_visited.capacity() >= 64);
    }
}
