//! Differential coverage of the batch execution planner: for every
//! generator family (shuffled-uniform, duplicated, source-clustered),
//! `submit(batch)` with the planner enabled must be **bit-identical** to
//! running the same requests one at a time on a fresh workspace, and to
//! the planner-disabled fan-out — on the owned index, an mmap-backed
//! `ViewStore`, and the compact `CompactStore`, with the answer cache
//! cold and warm.

use proptest::prelude::*;

use qbs_core::request::{QueryOutcome, QueryRequest};
use qbs_core::serialize::{self, MapMode};
use qbs_core::store::IndexStore;
use qbs_core::{CacheConfig, CompactStore, QbsConfig, QbsIndex, QueryEngine, QueryWorkspace};
use qbs_gen::prelude::*;
use qbs_graph::{Graph, VertexId};

/// Deterministic mixing for the in-test shuffles — keeps the test free of
/// any RNG dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The three batch generator families the planner must stay transparent
/// on. Every family mixes query modes and splices one poisoned pair into
/// the middle so the per-slot error path is always exercised.
fn family_batch(family: u64, graph: &Graph, count: usize, seed: u64) -> Vec<QueryRequest> {
    let n = graph.num_vertices();
    let pairs = QueryWorkload::sample(graph, count.max(4), seed)
        .pairs()
        .to_vec();
    let mut state = seed ^ 0xBADC_0FFE;
    let mut requests: Vec<QueryRequest> = match family % 3 {
        // Shuffled uniform: distinct pairs in adversarial (shuffled) order.
        0 => {
            let mut reqs: Vec<QueryRequest> = pairs
                .iter()
                .take(count)
                .enumerate()
                .map(|(i, &(u, v))| match i % 5 {
                    0..=2 => QueryRequest::distance(u, v),
                    3 => QueryRequest::path_graph(u, v),
                    _ => QueryRequest::sketch(u, v),
                })
                .collect();
            for i in (1..reqs.len()).rev() {
                let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
                reqs.swap(i, j);
            }
            reqs
        }
        // Duplicated: a handful of distinct pairs repeated many times,
        // alternating orientation — the coalescer's home turf.
        1 => {
            let distinct: Vec<_> = pairs.iter().take((count / 4).max(1)).copied().collect();
            (0..count)
                .map(|i| {
                    let (u, v) = distinct[i % distinct.len()];
                    let (u, v) = if i % 2 == 0 { (u, v) } else { (v, u) };
                    if i % 7 == 3 {
                        QueryRequest::path_graph(u, v)
                    } else {
                        QueryRequest::distance(u, v)
                    }
                })
                .collect()
        }
        // Source-clustered: a few hot sources fan out to many targets —
        // the shared-forward-BFS's home turf.
        _ => {
            let hot: Vec<VertexId> = pairs.iter().take(3).map(|&(u, _)| u).collect();
            (0..count)
                .map(|i| {
                    let s = hot[i % hot.len()];
                    let mut t = pairs[(splitmix(&mut state) % pairs.len() as u64) as usize].1;
                    if t == s {
                        t = pairs[i % pairs.len()].0;
                    }
                    if t == s {
                        t = if s == 0 { 1 } else { 0 };
                    }
                    // Half the cluster queries arrive target-first: the
                    // planner must still root the group at the hot vertex.
                    if i % 2 == 0 {
                        QueryRequest::distance(s, t)
                    } else {
                        QueryRequest::distance(t, s)
                    }
                })
                .collect()
        }
    };
    let poison = n as VertexId;
    requests.insert(requests.len() / 2, QueryRequest::distance(poison, 0));
    requests.insert(requests.len() / 4, QueryRequest::path_graph(0, poison));
    requests
}

/// One-at-a-time reference: a fresh engine-free execution per request.
fn one_at_a_time<S: IndexStore>(store: &S, requests: &[QueryRequest]) -> Vec<QueryOutcome> {
    let mut ws = QueryWorkspace::new();
    requests
        .iter()
        .map(|req| qbs_core::execute_on(store, &mut ws, req))
        .collect()
}

/// Planner-on and planner-off submits, cold and warm, must all match the
/// one-at-a-time reference bit for bit.
fn assert_planner_transparent<S: IndexStore>(store: &S, requests: &[QueryRequest], label: &str) {
    let reference = one_at_a_time(store, requests);

    for threads in [1usize, 3] {
        let planned = QueryEngine::with_threads(store, threads).expect("engine");
        let vanilla = QueryEngine::with_threads(store, threads)
            .expect("engine")
            .with_planner(false);
        assert_eq!(
            planned.submit(requests),
            reference,
            "{label}: planner-on diverged from one-at-a-time ({threads} threads)"
        );
        assert_eq!(
            vanilla.submit(requests),
            reference,
            "{label}: planner-off diverged from one-at-a-time ({threads} threads)"
        );
    }

    // Warm-cache pass: the first submit fills the cache, the second must
    // serve bit-identical answers out of it through the planner.
    let cached = QueryEngine::with_threads(store, 2)
        .expect("engine")
        .with_answer_cache(CacheConfig::default().admit_above(0));
    assert_eq!(cached.submit(requests), reference, "{label}: cold cached");
    assert_eq!(cached.submit(requests), reference, "{label}: warm cached");
    let stats = cached.cache_stats().expect("cache attached");
    assert!(
        stats.hits > 0,
        "{label}: warm pass hit the cache: {stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 18, ..ProptestConfig::default() })]

    #[test]
    fn planned_submit_is_bit_identical_across_families_and_backends(
        family in 0u64..3,
        vertices in 30usize..90,
        landmarks in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
            vertices,
            edges_per_vertex: 2,
            seed,
        });
        let owned = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(landmarks));
        let requests = family_batch(family, &graph, 48, seed ^ 0xF00D);

        // Owned backend.
        assert_planner_transparent(&owned, &requests, "owned");

        // Mmap view backend.
        let dir = std::env::temp_dir().join(format!(
            "qbs_batch_planner_{}_{}",
            std::process::id(),
            seed
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("case_{family}_{vertices}_{landmarks}_{seed}.qbs2"));
        serialize::save_to_file(&owned, &path).expect("save");
        let view = serialize::open_store_from_file(&path, MapMode::Mmap).expect("map");
        assert_planner_transparent(&view, &requests, "view");

        // Compact backend.
        let compact = CompactStore::new(owned.as_compact_view().expect("compact view"));
        assert_planner_transparent(&compact, &requests, "compact");

        // The three backends agree with each other, too.
        let owned_outcomes = QueryEngine::with_threads(&owned, 2).expect("engine").submit(&requests);
        prop_assert_eq!(
            &owned_outcomes,
            &QueryEngine::with_threads(&view, 2).expect("engine").submit(&requests)
        );
        prop_assert_eq!(
            &owned_outcomes,
            &QueryEngine::with_threads(&compact, 2).expect("engine").submit(&requests)
        );

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }
}

/// Deterministic counter semantics on the paper's running example:
/// duplicates are coalesced (and counted once per duplicate slot), labels
/// of a hot source are memoized, and same-source runs reuse forward-BFS
/// levels — while the answers stay exactly the vanilla ones.
#[test]
fn planner_counters_report_dedup_memoization_and_level_reuse() {
    let owned = QbsIndex::build(
        qbs_graph::fixtures::figure4_graph(),
        QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
    );
    // Source 6 is hot (appears in both orientations); (6, 11) repeats.
    let requests = vec![
        QueryRequest::distance(6, 11),
        QueryRequest::distance(11, 6),
        QueryRequest::distance(6, 11),
        QueryRequest::distance(6, 12),
        QueryRequest::distance(6, 13),
        QueryRequest::distance(4, 6),
        QueryRequest::sketch(7, 9),
    ];
    let engine = QueryEngine::with_threads(&owned, 1).expect("engine");
    let outcomes = engine.submit(&requests);
    assert_eq!(outcomes, one_at_a_time(&owned, &requests));

    let stats = engine.planner_stats();
    // (6,11), (11,6), (6,11) fold into one job: two duplicate slots.
    assert_eq!(stats.dedup_hits, 2, "{stats:?}");
    // Source 6 anchors a four-job run; its label is fetched once and
    // memoized three times (the distinct targets never repeat).
    assert!(stats.labels_memoized >= 3, "{stats:?}");
    // Queries after the first in the run resume the retained forward BFS.
    assert!(stats.fwd_levels_reused > 0, "{stats:?}");
}

/// Duplicate slots keep per-slot request accounting but the cache sees
/// each distinct key once: one miss + one insertion cold, one hit warm —
/// the documented duplicate-request stats rule.
#[test]
fn duplicate_slots_count_cache_traffic_once_per_distinct_key() {
    let owned = QbsIndex::build(
        qbs_graph::fixtures::figure4_graph(),
        QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
    );
    let engine = QueryEngine::with_threads(&owned, 1)
        .expect("engine")
        .with_answer_cache(CacheConfig::default().admit_above(0));
    let requests = vec![
        QueryRequest::distance(6, 11),
        QueryRequest::distance(11, 6),
        QueryRequest::distance(6, 11),
        QueryRequest::distance(6, 11),
    ];
    engine.submit(&requests);
    let cold = engine.cache_stats().expect("cache");
    assert_eq!(
        (cold.hits, cold.misses, cold.insertions),
        (0, 1, 1),
        "four duplicate slots, one distinct key: {cold:?}"
    );
    engine.submit(&requests);
    let warm = engine.cache_stats().expect("cache");
    assert_eq!(
        (warm.hits, warm.misses, warm.insertions),
        (1, 1, 1),
        "warm pass looks the key up once: {warm:?}"
    );
}
