//! Integration tests of the `qbs-index-v2` flat binary format: the golden
//! fixture, cross-version guards, corruption guards, a generator-family
//! identity property, and the differential guarantee that queries answered
//! through a loaded view are bit-identical to the freshly built index.

use proptest::prelude::*;

use qbs_core::{serialize, QbsConfig, QbsIndex, QueryEngine, QueryRequest};
use qbs_gen::prelude::*;
use qbs_graph::fixtures::figure4_graph;
use qbs_graph::Graph;

/// Path of the checked-in golden fixture (relative to the crate root).
fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("figure4.qbs2")
}

/// The index every golden-fixture test is pinned to: the paper's Figure 4
/// running example with the explicit landmark set {1, 2, 3}.
fn figure4_index() -> QbsIndex {
    QbsIndex::build(
        figure4_graph(),
        QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
    )
}

/// Regenerates the golden fixture. Run manually after an intentional format
/// change (and update `docs/index-format.md` accordingly):
///
/// ```text
/// cargo test -p qbs-core --test format_v2 -- --ignored regenerate_golden_fixture
/// ```
#[test]
#[ignore = "writes the golden fixture; run explicitly after a format change"]
fn regenerate_golden_fixture() {
    let bytes = figure4_index().to_v2_bytes().expect("serialize");
    std::fs::create_dir_all(fixture_path().parent().unwrap()).expect("mkdir");
    std::fs::write(fixture_path(), bytes).expect("write fixture");
}

#[test]
fn golden_fixture_is_byte_exact() {
    let expected = std::fs::read(fixture_path())
        .expect("golden fixture missing; run the ignored regenerate_golden_fixture test");
    let actual = figure4_index().to_v2_bytes().expect("serialize");
    assert_eq!(
        actual, expected,
        "the v2 writer no longer reproduces the checked-in fixture byte-for-byte; \
         if the format change is intentional, regenerate the fixture and update \
         docs/index-format.md"
    );
}

#[test]
fn golden_fixture_loads_and_answers_figure4_queries() {
    let restored = serialize::load_from_file(fixture_path()).expect("load fixture");
    let fresh = figure4_index();
    assert_eq!(restored.landmarks(), &[1, 2, 3]);
    assert_eq!(restored.labelling(), fresh.labelling());
    assert_eq!(restored.meta_graph(), fresh.meta_graph());
    // Figure 6(f): SPG(6, 11) has distance 5 and 13 edges.
    let answer = restored.query(6, 11).unwrap();
    assert_eq!(answer.distance(), 5);
    assert_eq!(answer.num_edges(), 13);
}

#[test]
fn v1_files_still_load_and_carry_a_migration_path() {
    let dir = std::env::temp_dir().join("qbs_format_v2_migration");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let v1_path = dir.join("figure4.v1.qbs");
    let index = figure4_index();
    serialize::save_to_file_with(&index, &v1_path, serialize::IndexFormat::Json).expect("save");

    // Auto-upgrade on load: the dispatching loader reads v1 transparently.
    let loaded = serialize::load_from_file(&v1_path).expect("v1 load");
    assert_eq!(loaded.query(6, 11).unwrap(), index.query(6, 11).unwrap());

    // The v2-only entry points name the migration path instead of failing
    // with a parse error.
    let v1_bytes = std::fs::read(&v1_path).expect("read");
    let err = serialize::from_bytes_v2(&v1_bytes).unwrap_err().to_string();
    assert!(err.contains("v1 JSON"), "{err}");
    assert!(err.contains("migrate") || err.contains("re-save"), "{err}");
    let err = serialize::load_view_from_file(&v1_path, serialize::MapMode::Read)
        .unwrap_err()
        .to_string();
    assert!(err.contains("re-save"), "{err}");
}

#[test]
fn truncated_and_bit_flipped_fixtures_are_corrupt_never_panic() {
    let bytes = std::fs::read(fixture_path()).expect("fixture");

    for len in 0..bytes.len() {
        let result = std::panic::catch_unwind(|| serialize::from_bytes_v2(&bytes[..len]));
        match result {
            Ok(outcome) => assert!(
                outcome.is_err(),
                "truncation to {len} bytes must be rejected"
            ),
            Err(_) => panic!("truncation to {len} bytes caused a panic"),
        }
    }

    for pos in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= bit;
            let result = std::panic::catch_unwind(|| serialize::from_bytes_v2(&corrupt));
            match result {
                Ok(outcome) => {
                    let err = outcome.expect_err("every bit flip breaks the checksum");
                    assert!(
                        matches!(err, qbs_core::QbsError::Corrupt(_)),
                        "bit flip at {pos} surfaced as {err:?}, expected Corrupt"
                    );
                }
                Err(_) => panic!("bit flip at byte {pos} (mask {bit:#x}) caused a panic"),
            }
        }
    }
}

/// One graph per generator family, sized by the proptest case.
fn family_graph(family: u64, vertices: usize, seed: u64) -> Graph {
    match family % 4 {
        0 => barabasi_albert::generate(&BarabasiAlbertConfig {
            vertices,
            edges_per_vertex: 2,
            seed,
        }),
        1 => erdos_renyi::generate(&ErdosRenyiConfig {
            vertices,
            edges: vertices * 2,
            seed,
        }),
        2 => watts_strogatz::generate(&WattsStrogatzConfig {
            vertices,
            neighbors: 2,
            rewire_probability: 0.2,
            seed,
        }),
        _ => power_law::generate(&PowerLawConfig {
            vertices,
            edges: vertices * 2,
            exponent: 2.5,
            seed,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    // The writer/reader pair is an identity on every generator family:
    // decode(encode(index)) reproduces all components, and re-encoding the
    // decoded index reproduces the exact bytes.
    #[test]
    fn to_bytes_v2_from_bytes_v2_is_identity(
        family in 0u64..4,
        vertices in 24usize..120,
        landmarks in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let graph = family_graph(family, vertices, seed);
        let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(landmarks));
        let bytes = index.to_v2_bytes().expect("serialize");
        let restored = serialize::from_bytes_v2(&bytes).expect("deserialize");
        prop_assert_eq!(index.landmarks(), restored.landmarks());
        prop_assert_eq!(index.labelling(), restored.labelling());
        prop_assert_eq!(index.meta_graph(), restored.meta_graph());
        prop_assert_eq!(index.graph(), restored.graph());
        let rebytes = restored.to_v2_bytes().expect("re-serialize");
        prop_assert_eq!(bytes, rebytes, "encode ∘ decode ∘ encode is not stable");
    }
}

/// The acceptance-criterion differential: every query answered through a
/// view-loaded index is bit-identical to the freshly built index, across
/// single queries, distance queries, and the batch engine.
#[test]
fn queries_through_from_view_are_bit_identical() {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 4_000,
        edges_per_vertex: 3,
        seed: 99,
    });
    let pairs = QueryWorkload::sample(&graph, 300, 17).pairs().to_vec();
    let built = QbsIndex::build(graph, QbsConfig::with_landmark_count(12));

    let view = built.as_view();
    let loaded = QbsIndex::from_view(&view);

    assert_eq!(built.landmarks(), loaded.landmarks());
    assert_eq!(built.labelling(), loaded.labelling());
    assert_eq!(built.meta_graph(), loaded.meta_graph());
    assert_eq!(built.graph(), loaded.graph());

    for &(u, v) in &pairs {
        let a = built.query_with_stats(u, v).expect("built query");
        let b = loaded.query_with_stats(u, v).expect("loaded query");
        assert_eq!(a.path_graph, b.path_graph, "SPG({u}, {v}) diverged");
        assert_eq!(a.sketch, b.sketch, "sketch({u}, {v}) diverged");
        assert_eq!(a.stats, b.stats, "search stats({u}, {v}) diverged");
        assert_eq!(
            built.distance(u, v).expect("built distance"),
            loaded.distance(u, v).expect("loaded distance"),
            "distance({u}, {v}) diverged"
        );
    }

    // The batch engine sees the same answers on both indexes.
    let engine_a = QueryEngine::with_threads(&built, 2).expect("engine");
    let engine_b = QueryEngine::with_threads(&loaded, 2).expect("engine");
    let requests: Vec<QueryRequest> = pairs
        .iter()
        .map(|&(u, v)| QueryRequest::path_graph(u, v))
        .collect();
    let batch_a = engine_a.submit(&requests);
    let batch_b = engine_b.submit(&requests);
    for ((a, b), &(u, v)) in batch_a.iter().zip(&batch_b).zip(&pairs) {
        assert_eq!(
            a.path_graph().expect("in range"),
            b.path_graph().expect("in range"),
            "batch SPG({u}, {v}) diverged"
        );
    }
}

/// Zero-copy view accessors agree with the materialised structures on a
/// non-trivial generated graph.
#[test]
fn view_accessors_match_materialised_index() {
    let graph = erdos_renyi::generate(&ErdosRenyiConfig {
        vertices: 500,
        edges: 1_000,
        seed: 5,
    });
    let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(8));
    let view = index.as_view();
    assert_eq!(view.num_vertices(), index.graph().num_vertices());
    assert_eq!(view.num_landmarks(), index.landmarks().len());
    assert_eq!(
        view.landmarks().collect::<Vec<_>>(),
        index.landmarks().to_vec()
    );
    for v in index.graph().vertices() {
        assert_eq!(
            view.graph_neighbors(v).collect::<Vec<_>>(),
            index.graph().neighbors(v),
            "adjacency of {v}"
        );
        assert_eq!(
            view.label_entries(v).collect::<Vec<_>>(),
            index.labelling().entries(v).collect::<Vec<_>>(),
            "labels of {v}"
        );
    }
    assert_eq!(
        view.meta_edges().collect::<Vec<_>>(),
        index.meta_graph().edges().to_vec()
    );
    assert_eq!(
        view.num_delta_edges(),
        index.meta_graph().delta_total_edges()
    );
}
