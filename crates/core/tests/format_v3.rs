//! Integration tests of the `qbs-index-v3` compact binary format: the golden
//! fixture, cross-version guards, corruption guards, an encode ∘ decode
//! identity property over both width profiles, and the differential
//! guarantee that queries answered through a [`CompactStore`] — owned or
//! memory-mapped — are bit-identical to the freshly built index.

use proptest::prelude::*;

use qbs_core::{
    serialize, CompactStore, CompactView, MapMode, Qbs, QbsConfig, QbsIndex, QueryRequest, ViewBuf,
};
use qbs_gen::prelude::*;
use qbs_graph::fixtures::figure4_graph;
use qbs_graph::{Graph, GraphBuilder};

/// Path of the checked-in golden fixture (relative to the crate root).
fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("figure4.qbs3")
}

/// The index every golden-fixture test is pinned to: the paper's Figure 4
/// running example with the explicit landmark set {1, 2, 3}.
fn figure4_index() -> QbsIndex {
    QbsIndex::build(
        figure4_graph(),
        QbsConfig::with_explicit_landmarks(vec![1, 2, 3]),
    )
}

/// A path graph long enough to push the maximum label distance past 255,
/// forcing the encoder onto the two-byte distance profile.
fn long_path_graph(vertices: usize) -> Graph {
    let mut builder = GraphBuilder::new();
    for v in 1..vertices as u32 {
        builder.add_edge(v - 1, v);
    }
    builder.build()
}

/// Regenerates the golden fixture. Run manually after an intentional format
/// change (and update `docs/index-format.md` accordingly):
///
/// ```text
/// cargo test -p qbs-core --test format_v3 -- --ignored regenerate_golden_fixture
/// ```
#[test]
#[ignore = "writes the golden fixture; run explicitly after a format change"]
fn regenerate_golden_fixture() {
    let bytes = figure4_index().to_v3_bytes().expect("serialize");
    std::fs::create_dir_all(fixture_path().parent().unwrap()).expect("mkdir");
    std::fs::write(fixture_path(), bytes).expect("write fixture");
}

#[test]
fn golden_fixture_is_byte_exact() {
    let expected = std::fs::read(fixture_path())
        .expect("golden fixture missing; run the ignored regenerate_golden_fixture test");
    let actual = figure4_index().to_v3_bytes().expect("serialize");
    assert_eq!(
        actual, expected,
        "the v3 writer no longer reproduces the checked-in fixture byte-for-byte; \
         if the format change is intentional, regenerate the fixture and update \
         docs/index-format.md"
    );
}

#[test]
fn golden_fixture_loads_and_answers_figure4_queries() {
    let restored = serialize::load_from_file(fixture_path()).expect("load fixture");
    let fresh = figure4_index();
    assert_eq!(restored.landmarks(), &[1, 2, 3]);
    assert_eq!(restored.labelling(), fresh.labelling());
    assert_eq!(restored.meta_graph(), fresh.meta_graph());
    // Figure 6(f): SPG(6, 11) has distance 5 and 13 edges.
    let answer = restored.query(6, 11).unwrap();
    assert_eq!(answer.distance(), 5);
    assert_eq!(answer.num_edges(), 13);
}

#[test]
fn figure4_fixture_uses_the_narrow_width_profile() {
    let bytes = std::fs::read(fixture_path()).expect("fixture");
    let view = CompactView::parse(ViewBuf::Heap(bytes)).expect("parse");
    assert_eq!(view.dist_width(), 1, "tiny graph distances fit one byte");
    assert_eq!(view.offset_width(), 4, "tiny sections fit u32 offsets");
    let max = view.max_label_distance();
    assert!(max > 0 && max < 256, "recorded max {max}");
}

#[test]
fn long_paths_widen_the_distance_column() {
    let index = QbsIndex::build(long_path_graph(600), QbsConfig::with_landmark_count(2));
    let view = index.as_compact_view().expect("compact view");
    assert!(
        view.max_label_distance() > 255,
        "a 600-vertex path must produce labels past one byte, got {}",
        view.max_label_distance()
    );
    assert_eq!(view.dist_width(), 2, "distances must widen to two bytes");
    // The widened file still decodes to the identical index.
    let restored = QbsIndex::from_compact_view(&view);
    assert_eq!(index.labelling(), restored.labelling());
    assert_eq!(index.meta_graph(), restored.meta_graph());
    assert_eq!(index.graph(), restored.graph());
}

#[test]
fn cross_version_entry_points_name_the_conversion_path() {
    let index = figure4_index();
    let v2 = index.to_v2_bytes().expect("v2");
    let v3 = index.to_v3_bytes().expect("v3");

    // Wide bytes through the v3 door: points at `qbs convert`.
    let err = serialize::from_bytes_v3(&v2).unwrap_err().to_string();
    assert!(err.contains("wide"), "{err}");
    assert!(err.contains("qbs convert"), "{err}");

    // Compact bytes through the v2 door: names the compact entry points.
    let err = serialize::from_bytes_v2(&v3).unwrap_err().to_string();
    assert!(err.contains("compact"), "{err}");
    assert!(err.contains("from_bytes_v3"), "{err}");

    // The dispatching loader takes both without ceremony.
    let a = serialize::from_bytes_v2(&v2).expect("v2 load");
    let b = serialize::from_bytes_v3(&v3).expect("v3 load");
    assert_eq!(a.labelling(), b.labelling());
    assert_eq!(a.graph(), b.graph());
}

#[test]
fn truncated_and_bit_flipped_fixtures_are_corrupt_never_panic() {
    let bytes = std::fs::read(fixture_path()).expect("fixture");

    for len in 0..bytes.len() {
        let result = std::panic::catch_unwind(|| serialize::from_bytes_v3(&bytes[..len]));
        match result {
            Ok(outcome) => assert!(
                outcome.is_err(),
                "truncation to {len} bytes must be rejected"
            ),
            Err(_) => panic!("truncation to {len} bytes caused a panic"),
        }
    }

    for pos in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= bit;
            let result = std::panic::catch_unwind(|| serialize::from_bytes_v3(&corrupt));
            match result {
                Ok(outcome) => {
                    let err = outcome.expect_err("every bit flip breaks the checksum");
                    assert!(
                        matches!(err, qbs_core::QbsError::Corrupt(_)),
                        "bit flip at {pos} surfaced as {err:?}, expected Corrupt"
                    );
                }
                Err(_) => panic!("bit flip at byte {pos} (mask {bit:#x}) caused a panic"),
            }
        }
    }
}

#[test]
fn distances_past_the_header_maximum_are_rejected() {
    // Raise the distance byte of a label entry past the header's recorded
    // maximum without touching the header: the decode-time tripwire (not
    // just the checksum) must name the inconsistency.
    let index = figure4_index();
    let bytes = index.to_v3_bytes().expect("serialize");
    let view = CompactView::parse(ViewBuf::Heap(bytes)).expect("parse");
    let max = view.max_label_distance();
    assert!(max < 255, "fixture max must leave headroom for the test");
    // Find a byte inside the LabelEntries section whose bump changes a
    // decoded distance beyond `max`; brute-force over the section and keep
    // the flips that produce the targeted error.
    let section = view
        .sections()
        .iter()
        .find(|s| s.kind == qbs_core::format::SectionKind::LabelEntries)
        .copied()
        .expect("label section");
    let checksum_offset = view
        .sections()
        .iter()
        .find(|s| s.kind == qbs_core::format::SectionKind::Checksum)
        .expect("checksum section")
        .offset as usize;
    let original = view.buf().as_slice().to_vec();
    let mut saw_tripwire = false;
    for pos in section.offset as usize..(section.offset + section.len) as usize {
        let mut corrupt = original.clone();
        corrupt[pos] = 0x7F; // large one-byte value, also a valid final varint byte
        if corrupt[pos] == original[pos] {
            continue;
        }
        // Re-seal the checksum so only the structural guard can object.
        let fresh = qbs_core::format::checksum64(&corrupt[..checksum_offset]);
        corrupt[checksum_offset..checksum_offset + 8].copy_from_slice(&fresh.to_le_bytes());
        let parsed = CompactView::parse(ViewBuf::Heap(corrupt));
        if let Err(err) = parsed {
            let msg = err.to_string();
            if msg.contains("exceeds the header's recorded maximum") {
                saw_tripwire = true;
                break;
            }
        }
    }
    assert!(
        saw_tripwire,
        "no label-section byte flip triggered the max-distance tripwire"
    );
}

/// One graph per generator family, sized by the proptest case. Families 0–3
/// match the v2 suite; family 4 is a long path whose labels overflow one
/// byte, exercising the two-byte distance profile.
fn family_graph(family: u64, vertices: usize, seed: u64) -> Graph {
    match family % 5 {
        0 => barabasi_albert::generate(&BarabasiAlbertConfig {
            vertices,
            edges_per_vertex: 2,
            seed,
        }),
        1 => erdos_renyi::generate(&ErdosRenyiConfig {
            vertices,
            edges: vertices * 2,
            seed,
        }),
        2 => watts_strogatz::generate(&WattsStrogatzConfig {
            vertices,
            neighbors: 2,
            rewire_probability: 0.2,
            seed,
        }),
        3 => power_law::generate(&PowerLawConfig {
            vertices,
            edges: vertices * 2,
            exponent: 2.5,
            seed,
        }),
        _ => long_path_graph(vertices * 5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    // The writer/reader pair is an identity on every generator family and
    // both width profiles: decode(encode(index)) reproduces all components,
    // and re-encoding the decoded index reproduces the exact bytes.
    #[test]
    fn to_bytes_v3_from_bytes_v3_is_identity(
        family in 0u64..5,
        vertices in 24usize..120,
        landmarks in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let graph = family_graph(family, vertices, seed);
        let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(landmarks));
        let bytes = index.to_v3_bytes().expect("serialize");
        let restored = serialize::from_bytes_v3(&bytes).expect("deserialize");
        prop_assert_eq!(index.landmarks(), restored.landmarks());
        prop_assert_eq!(index.labelling(), restored.labelling());
        prop_assert_eq!(index.meta_graph(), restored.meta_graph());
        prop_assert_eq!(index.graph(), restored.graph());
        let rebytes = restored.to_v3_bytes().expect("re-serialize");
        prop_assert_eq!(bytes, rebytes, "encode ∘ decode ∘ encode is not stable");
    }
}

/// The acceptance-criterion differential: every query answered through a
/// [`CompactStore`] — owned heap bytes or a memory-mapped file — is
/// bit-identical to the freshly built index, across single queries,
/// distances, sketches, mixed batches, and cached re-execution.
#[test]
fn queries_through_compact_store_are_bit_identical() {
    let graph = barabasi_albert::generate(&BarabasiAlbertConfig {
        vertices: 4_000,
        edges_per_vertex: 3,
        seed: 99,
    });
    let pairs = QueryWorkload::sample(&graph, 300, 17).pairs().to_vec();
    let built = QbsIndex::build(graph, QbsConfig::with_landmark_count(12));

    // Owned compact store over heap bytes.
    let owned_view = built.as_compact_view().expect("compact view");
    let compact = Qbs::from_compact_store(CompactStore::new(owned_view));

    // Memory-mapped compact store over a real file.
    let dir = std::env::temp_dir().join(format!(
        "qbs_format_v3_diff_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("diff.qbs3");
    std::fs::write(&path, built.to_v3_bytes().expect("serialize")).expect("write");
    let mapped = Qbs::open(&path, MapMode::Mmap).expect("open mmap");
    assert_eq!(mapped.backend().name(), "compact");

    let baseline = Qbs::from_index(built);

    for &(u, v) in &pairs {
        let a = baseline.query_with_stats(u, v).expect("baseline query");
        for qbs in [&compact, &mapped] {
            let b = qbs.query_with_stats(u, v).expect("compact query");
            assert_eq!(a.path_graph, b.path_graph, "SPG({u}, {v}) diverged");
            assert_eq!(a.sketch, b.sketch, "sketch({u}, {v}) diverged");
            assert_eq!(a.stats, b.stats, "search stats({u}, {v}) diverged");
            assert_eq!(
                baseline.distance(u, v).expect("baseline distance"),
                qbs.distance(u, v).expect("compact distance"),
                "distance({u}, {v}) diverged"
            );
        }
    }

    // Mixed batches through the session engine, plus a cached re-run: the
    // second submission is answered from the LRU cache and must still be
    // outcome-identical.
    let requests: Vec<QueryRequest> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| match i % 3 {
            0 => QueryRequest::distance(u, v),
            1 => QueryRequest::path_graph(u, v).with_stats(),
            _ => QueryRequest::sketch(u, v),
        })
        .collect();
    let cached_baseline = baseline.with_cache(qbs_core::CacheConfig::default());
    let cached_compact = compact.with_cache(qbs_core::CacheConfig::default());
    let expected = cached_baseline.submit(&requests);
    for qbs in [&cached_compact, &mapped] {
        let got = qbs.submit(&requests);
        assert_eq!(expected, got, "batch outcomes diverged");
    }
    let rerun = cached_compact.submit(&requests);
    assert_eq!(expected, rerun, "cache-served outcomes diverged");
    assert!(
        cached_compact
            .cache_stats()
            .map(|s| s.hits > 0)
            .unwrap_or(false),
        "the re-run was expected to hit the cache"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Zero-copy compact accessors agree with the materialised structures on a
/// non-trivial generated graph.
#[test]
fn compact_view_accessors_match_materialised_index() {
    let graph = erdos_renyi::generate(&ErdosRenyiConfig {
        vertices: 500,
        edges: 1_000,
        seed: 5,
    });
    let index = QbsIndex::build(graph, QbsConfig::with_landmark_count(8));
    let view = index.as_compact_view().expect("compact view");
    let wide = index.as_view();
    assert_eq!(view.num_vertices(), index.graph().num_vertices());
    assert_eq!(view.num_landmarks(), index.landmarks().len());
    assert_eq!(
        view.landmarks().collect::<Vec<_>>(),
        index.landmarks().to_vec()
    );
    for v in index.graph().vertices() {
        assert_eq!(
            view.graph_neighbors(v).collect::<Vec<_>>(),
            index.graph().neighbors(v),
            "adjacency of {v}"
        );
        assert_eq!(
            view.label_entries(v).collect::<Vec<_>>(),
            index.labelling().entries(v).collect::<Vec<_>>(),
            "labels of {v}"
        );
    }
    assert_eq!(
        view.meta_edges().collect::<Vec<_>>(),
        index.meta_graph().edges().to_vec()
    );
    // Δ rows keep the exact order the wide view serves, edge for edge.
    for k in 0..view.num_meta_edges() {
        assert_eq!(
            view.delta_edges(k).collect::<Vec<_>>(),
            wide.delta_edges(k).collect::<Vec<_>>(),
            "delta row {k}"
        );
    }
}
