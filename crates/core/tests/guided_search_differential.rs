//! Differential tests of the full QbS pipeline against the ground-truth
//! oracle on catalog stand-ins, structured graphs and random graphs, across
//! landmark strategies and counts.

use qbs_baselines::{GroundTruth, SpgEngine};
use qbs_core::{LandmarkStrategy, QbsConfig, QbsIndex};
use qbs_gen::catalog::{Catalog, DatasetId, Scale};
use qbs_gen::prelude::*;
use qbs_gen::structured;
use qbs_graph::{Graph, INFINITE_DISTANCE};

fn check(graph: &Graph, config: QbsConfig, queries: usize, seed: u64, tag: &str) {
    let index = QbsIndex::build(graph.clone(), config);
    let truth = GroundTruth::new(graph.clone());
    let workload = QueryWorkload::sample(graph, queries, seed);
    for &(u, v) in workload.pairs() {
        let answer = index.query_with_stats(u, v).unwrap();
        let expected = truth.query(u, v);
        assert_eq!(answer.path_graph, expected, "{tag}: query ({u},{v})");
        // The per-query statistics must be internally consistent.
        let stats = answer.stats;
        assert_eq!(
            stats.distance,
            expected.distance(),
            "{tag}: distance ({u},{v})"
        );
        if stats.upper_bound != INFINITE_DISTANCE && expected.is_reachable() {
            assert!(
                stats.upper_bound >= stats.distance,
                "{tag}: d⊤ < d on ({u},{v})"
            );
        }
        if stats.sparsified_distance != INFINITE_DISTANCE {
            assert!(
                stats.sparsified_distance >= stats.distance,
                "{tag}: d_G⁻ < d on ({u},{v})"
            );
        }
    }
}

#[test]
fn qbs_is_exact_on_hub_dominated_standins() {
    for id in [DatasetId::Youtube, DatasetId::Twitter, DatasetId::Baidu] {
        let spec = *Catalog::paper_table1().get(id).unwrap();
        let graph = spec.generate(Scale::Tiny);
        check(&graph, QbsConfig::with_landmark_count(20), 30, 1, id.name());
    }
}

#[test]
fn qbs_is_exact_on_even_degree_and_community_standins() {
    for id in [
        DatasetId::Friendster,
        DatasetId::LiveJournal,
        DatasetId::Dblp,
    ] {
        let spec = *Catalog::paper_table1().get(id).unwrap();
        let graph = spec.generate(Scale::Tiny);
        check(&graph, QbsConfig::with_landmark_count(20), 30, 2, id.name());
    }
}

#[test]
fn qbs_is_exact_with_random_landmarks() {
    let spec = *Catalog::paper_table1().get(DatasetId::Skitter).unwrap();
    let graph = spec.generate(Scale::Tiny);
    for seed in 0..4u64 {
        check(
            &graph,
            QbsConfig {
                landmarks: LandmarkStrategy::Random { count: 15, seed },
                ..QbsConfig::default()
            },
            25,
            seed,
            "random landmarks",
        );
    }
}

#[test]
fn qbs_is_exact_with_tiny_and_huge_landmark_sets() {
    let graph = power_law::generate(&PowerLawConfig {
        vertices: 400,
        edges: 1600,
        exponent: 2.3,
        seed: 5,
    });
    for count in [1usize, 2, 3, 50, 200, 400] {
        check(
            &graph,
            QbsConfig::with_landmark_count(count),
            25,
            count as u64,
            "landmark sweep",
        );
    }
}

#[test]
fn qbs_is_exact_on_structured_extremes() {
    // Graphs with maximal path multiplicity (hypercube, grid) and graphs
    // with a unique path per pair (tree, path).
    let cases = vec![
        structured::hypercube(7),
        structured::grid(15, 15),
        structured::binary_tree(255),
        structured::path(200),
        structured::cycle(99),
        structured::barbell(15, 8),
    ];
    for (i, graph) in cases.into_iter().enumerate() {
        check(
            &graph,
            QbsConfig::with_landmark_count(12),
            25,
            i as u64,
            "structured",
        );
    }
}

#[test]
fn qbs_is_exact_on_watts_strogatz_small_worlds() {
    for p in [0.0, 0.05, 0.3, 1.0] {
        let graph = watts_strogatz::generate(&WattsStrogatzConfig {
            vertices: 500,
            neighbors: 3,
            rewire_probability: p,
            seed: 11,
        });
        let graph = qbs_graph::components::largest_component(&graph).0;
        check(
            &graph,
            QbsConfig::with_landmark_count(10),
            25,
            3,
            "watts-strogatz",
        );
    }
}

#[test]
fn coverage_and_sketch_are_consistent_with_answers() {
    // Whenever the classifier says "all through landmarks", removing the
    // landmarks must actually disconnect or lengthen the pair.
    let spec = *Catalog::paper_table1().get(DatasetId::WikiTalk).unwrap();
    let graph = spec.generate(Scale::Tiny);
    let index = QbsIndex::build(graph.clone(), QbsConfig::with_landmark_count(20));
    let filter = qbs_graph::VertexFilter::from_vertices(
        graph.num_vertices(),
        index.landmarks().iter().copied(),
    );
    let workload = QueryWorkload::sample_connected(&graph, 120, 9);
    for &(u, v) in workload.pairs() {
        if index.is_landmark(u) || index.is_landmark(v) {
            continue;
        }
        let class = qbs_core::coverage::classify_pair(&index, u, v);
        let d = index.query(u, v).unwrap().distance();
        let view = qbs_graph::FilteredGraph::new(&graph, &filter);
        let sparsified = qbs_graph::bibfs::bidirectional_distance(&view, u, v).distance;
        match class {
            qbs_core::coverage::PairCoverage::AllThroughLandmarks => {
                assert!(sparsified > d, "({u},{v}) should need a landmark");
            }
            qbs_core::coverage::PairCoverage::SomeThroughLandmarks
            | qbs_core::coverage::PairCoverage::NoneThroughLandmarks => {
                assert_eq!(sparsified, d, "({u},{v}) has a landmark-free shortest path");
            }
            qbs_core::coverage::PairCoverage::NotApplicable => {}
        }
    }
}
